//! Vectorized lane-array execution tier.
//!
//! Third engine beside the tree-walk oracle and the bytecode engine:
//! batchable segments run *instruction-major over chunked lane-arrays*. The
//! register file is struct-of-arrays (`bits`/`kinds`, reg-major), threads
//! are processed in fixed-width chunks of [`LANES`], and each chunk executes
//! the segment's pre-fused [`LanePlan`] (see `bytecode::build_lane_plan`)
//! with branch-free inner loops over contiguous `u64` rows the compiler can
//! autovectorize. `Predicated` segments carry a per-lane `resume` mask
//! through the same loops; non-batchable segments fall back to the scalar
//! [`run_seg`] path, so every kernel the bytecode engine runs, this engine
//! runs with bit-identical `BlockStats`, memory effects and errors.
//!
//! Chunk-major order (each chunk finishes the whole plan before the next
//! chunk starts) is observationally equivalent to the oracle's thread-major
//! order under `seg_batchable`'s hazard rules: loads only see segment-entry
//! state, each slot has at most one store site (so stores from different
//! lanes land ascending at distinct or last-writer-wins-identical indices
//! exactly as the oracle's ascending thread loop), and atomics commute.
//! Faults preserve the lowest-thread rule: a faulting lane retires itself
//! and every lane above, lower lanes finish the plan and may overwrite the
//! pending error with one the oracle hits first, and later chunks never
//! start once an error is pending.

use crate::bytecode::{BatchKind, LaneOp, LanePlan, PhaseOp, Program, Reg, SlotKind};
use crate::engine::{
    cert_wrap, count_op, load_value, oob, raw_load, raw_store, run_seg, slot_info, store_value,
    GlobalMem, RacyView,
};
use crate::interp::{
    apply_atomic, axis_of, binop_faults, eval_binop_total, eval_intrinsic, eval_unop, Arg,
    ExecError,
};
use crate::memory::MemPool;
use crate::stats::{intrinsic_weight, BlockStats};
use cucc_ir::{BinOp, Kernel, LaunchConfig, Scalar, Value, ValueKind};
use std::ops::Range;

/// Lane-chunk width: one chunk of threads runs the whole plan before the
/// next chunk starts. 16 × 8-byte rows keep a chunk's working set inside two
/// cache lines per register while giving AVX2/AVX-512 full vectors.
pub const LANES: usize = 16;

const DEAD: u32 = u32::MAX;

#[inline]
fn pack(v: Value) -> (u64, u8) {
    match v {
        Value::I64(i) => (i as u64, 0),
        Value::F64(f) => (f.to_bits(), 1),
    }
}

#[inline]
fn unpack(bits: u64, kind: u8) -> Value {
    if kind == 0 {
        Value::I64(bits as i64)
    } else {
        Value::F64(f64::from_bits(bits))
    }
}

/// Branch-free truthiness on the packed representation: ints are true when
/// nonzero; floats when not ±0.0 (shifting out the sign bit — NaN stays
/// true), matching `Value::is_true`.
#[inline]
fn truthy(bits: u64, kind: u8) -> bool {
    if kind == 0 {
        bits != 0
    } else {
        (bits << 1) != 0
    }
}

#[inline]
fn as_index(bits: u64, kind: u8) -> i64 {
    if kind == 0 {
        bits as i64
    } else {
        f64::from_bits(bits) as i64
    }
}

/// `Some(kind)` when every lane of the row holds the same value kind — the
/// gate for the branch-free all-float / all-int fast loops. A full chunk
/// (`LANES` = 16 lanes) is one 16-byte compare.
#[inline]
fn uniform(kinds: &[u8]) -> Option<u8> {
    let k = kinds[0];
    if let Ok(arr) = <&[u8; LANES]>::try_from(kinds) {
        let splat = u128::from(k) * (u128::MAX / 0xff);
        if u128::from_ne_bytes(*arr) == splat {
            Some(k)
        } else {
            None
        }
    } else if kinds.iter().all(|&x| x == k) {
        Some(k)
    } else {
        None
    }
}

/// Infallible int binary op on i64 lanes — exact mirror of
/// `eval_binop_total`'s int path. Callers pre-check `Div`/`Rem` divisors.
#[inline]
fn ibin(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::LAnd => i64::from(a != 0 && b != 0),
        BinOp::LOr => i64::from(a != 0 || b != 0),
    }
}

/// Float arithmetic ops that have a branch-free all-float lane loop (same
/// result as `eval_binop_total`'s float path).
#[inline]
fn fbin_arith(op: BinOp, a: f64, b: f64) -> Option<f64> {
    match op {
        BinOp::Add => Some(a + b),
        BinOp::Sub => Some(a - b),
        BinOp::Mul => Some(a * b),
        BinOp::Div => Some(a / b),
        _ => None,
    }
}

#[inline]
fn fcmp(op: BinOp, a: f64, b: f64) -> Option<i64> {
    match op {
        BinOp::Lt => Some(i64::from(a < b)),
        BinOp::Le => Some(i64::from(a <= b)),
        BinOp::Gt => Some(i64::from(a > b)),
        BinOp::Ge => Some(i64::from(a >= b)),
        BinOp::Eq => Some(i64::from(a == b)),
        BinOp::Ne => Some(i64::from(a != b)),
        _ => None,
    }
}

/// Arrange a muladd's operands given the loaded value `v` and its operand
/// position (`0` = a, `1` = b, `2` = c of `a*b + c`).
#[inline]
fn arrange(x: Value, y: Value, v: Value, pos: u8) -> (Value, Value, Value) {
    match pos {
        0 => (v, x, y),
        1 => (x, v, y),
        _ => (x, y, v),
    }
}

/// `Value::as_f64` on the packed representation.
#[inline]
fn lane_f64(bits: u64, kind: u8) -> f64 {
    if kind == 0 {
        bits as i64 as f64
    } else {
        f64::from_bits(bits)
    }
}

/// Bounds check mirroring `raw_load`/`raw_store`: `Some(byte offset)` when
/// `index * sz .. + sz` fits in `len`.
#[inline]
fn elem_off(index: i64, sz: usize, len: usize) -> Option<usize> {
    if index < 0 {
        return None;
    }
    let off = (index as usize).checked_mul(sz)?;
    if off.checked_add(sz)? > len {
        return None;
    }
    Some(off)
}

/// Bounds-checked gather of `nl` lanes from a raw global buffer straight
/// into packed lane bits — `pack ∘ decode ∘ raw_load` per lane with the
/// element-type dispatch hoisted out of the loop. `Err(i)` is the first
/// faulting lane; lanes below `i` are already committed to `out`.
#[inline]
fn gather(
    ptr: *const u8,
    len: usize,
    elem: Scalar,
    ix: &[i64; LANES],
    nl: usize,
    out: &mut [u64; LANES],
) -> Result<(), usize> {
    let nl = nl.min(LANES);
    let sz = elem.size();
    macro_rules! per_lane {
        ($t:ty, $conv:expr) => {
            for i in 0..nl {
                let Some(off) = elem_off(ix[i], sz, len) else {
                    return Err(i);
                };
                // SAFETY: `off + sz <= len` per `elem_off`; the caller's
                // `(ptr, len)` view contract is `GlobalMem::raw`'s.
                let raw = unsafe { std::ptr::read_unaligned(ptr.add(off) as *const $t) };
                out[i] = $conv(<$t>::from_le(raw));
            }
        };
    }
    match elem {
        Scalar::U8 => per_lane!(u8, |v| v as u64),
        Scalar::I8 => per_lane!(u8, |v| v as i8 as i64 as u64),
        Scalar::I32 => per_lane!(u32, |v| v as i32 as i64 as u64),
        Scalar::U32 => per_lane!(u32, |v| v as u64),
        Scalar::I64 => per_lane!(u64, |v| v),
        Scalar::F32 => per_lane!(u32, |v| (f32::from_bits(v) as f64).to_bits()),
        Scalar::F64 => per_lane!(u64, |v| v),
    }
    Ok(())
}

/// Bounds-checked scatter of `nl` packed lanes into a raw global buffer —
/// `raw_store ∘ unpack` per lane (same C narrowing as `encode`), dispatch
/// hoisted. `Err(i)` is the first faulting lane; lanes below committed.
#[inline]
fn scatter(
    ptr: *mut u8,
    len: usize,
    elem: Scalar,
    ix: &[i64; LANES],
    vb: &[u64],
    vk: &[u8],
    nl: usize,
) -> Result<(), usize> {
    let sz = elem.size();
    macro_rules! per_lane {
        ($t:ty, $conv:expr) => {
            for i in 0..nl {
                let Some(off) = elem_off(ix[i], sz, len) else {
                    return Err(i);
                };
                let enc: $t = $conv(vb[i], vk[i]);
                // SAFETY: bounds checked by `elem_off`; view contract as in
                // `gather`.
                unsafe { std::ptr::write_unaligned(ptr.add(off) as *mut $t, enc.to_le()) };
            }
        };
    }
    #[inline]
    fn vi(b: u64, k: u8) -> i64 {
        if k == 0 {
            b as i64
        } else {
            f64::from_bits(b) as i64
        }
    }
    match elem {
        Scalar::U8 => per_lane!(u8, |b, k| vi(b, k) as u8),
        Scalar::I8 => per_lane!(u8, |b, k| vi(b, k) as i8 as u8),
        Scalar::I32 => per_lane!(u32, |b, k| vi(b, k) as i32 as u32),
        Scalar::U32 => per_lane!(u32, |b, k| vi(b, k) as u32),
        Scalar::I64 => per_lane!(u64, |b, k| vi(b, k) as u64),
        Scalar::F32 => per_lane!(u32, |b, k| (lane_f64(b, k) as f32).to_bits()),
        Scalar::F64 => per_lane!(u64, |b, k| lane_f64(b, k).to_bits()),
    }
    Ok(())
}

/// Certificate-elided counterpart of [`gather`]: no per-lane bounds check.
///
/// SAFETY: in addition to the `(ptr, len)` view contract of [`gather`],
/// every `ix[i]` for `i < nl` must be in bounds — exactly what a
/// [`crate::bytecode::CertMode::Elide`] certificate asserts for the op. A
/// wrong certificate is UB here in release builds; debug builds still
/// catch it via `debug_assert!`.
#[inline]
unsafe fn gather_unchecked(
    ptr: *const u8,
    len: usize,
    elem: Scalar,
    ix: &[i64; LANES],
    nl: usize,
    out: &mut [u64; LANES],
) {
    let nl = nl.min(LANES);
    let sz = elem.size();
    macro_rules! per_lane {
        ($t:ty, $conv:expr) => {
            for i in 0..nl {
                debug_assert!(
                    elem_off(ix[i], sz, len).is_some(),
                    "bounds certificate violated: index {}, len {} bytes",
                    ix[i],
                    len
                );
                let off = ix[i] as usize * sz;
                let raw = std::ptr::read_unaligned(ptr.add(off) as *const $t);
                out[i] = $conv(<$t>::from_le(raw));
            }
        };
    }
    match elem {
        Scalar::U8 => per_lane!(u8, |v| v as u64),
        Scalar::I8 => per_lane!(u8, |v| v as i8 as i64 as u64),
        Scalar::I32 => per_lane!(u32, |v| v as i32 as i64 as u64),
        Scalar::U32 => per_lane!(u32, |v| v as u64),
        Scalar::I64 => per_lane!(u64, |v| v),
        Scalar::F32 => per_lane!(u32, |v| (f32::from_bits(v) as f64).to_bits()),
        Scalar::F64 => per_lane!(u64, |v| v),
    }
}

/// Certificate-elided counterpart of [`scatter`]; same SAFETY contract as
/// [`gather_unchecked`].
#[inline]
unsafe fn scatter_unchecked(
    ptr: *mut u8,
    len: usize,
    elem: Scalar,
    ix: &[i64; LANES],
    vb: &[u64],
    vk: &[u8],
    nl: usize,
) {
    let sz = elem.size();
    macro_rules! per_lane {
        ($t:ty, $conv:expr) => {
            for i in 0..nl {
                debug_assert!(
                    elem_off(ix[i], sz, len).is_some(),
                    "bounds certificate violated: index {}, len {} bytes",
                    ix[i],
                    len
                );
                let off = ix[i] as usize * sz;
                let enc: $t = $conv(vb[i], vk[i]);
                std::ptr::write_unaligned(ptr.add(off) as *mut $t, enc.to_le());
            }
        };
    }
    #[inline]
    fn vi(b: u64, k: u8) -> i64 {
        if k == 0 {
            b as i64
        } else {
            f64::from_bits(b) as i64
        }
    }
    match elem {
        Scalar::U8 => per_lane!(u8, |b, k| vi(b, k) as u8),
        Scalar::I8 => per_lane!(u8, |b, k| vi(b, k) as i8 as u8),
        Scalar::I32 => per_lane!(u32, |b, k| vi(b, k) as i32 as u32),
        Scalar::U32 => per_lane!(u32, |b, k| vi(b, k) as u32),
        Scalar::I64 => per_lane!(u64, |b, k| vi(b, k) as u64),
        Scalar::F32 => per_lane!(u32, |b, k| (lane_f64(b, k) as f32).to_bits()),
        Scalar::F64 => per_lane!(u64, |b, k| lane_f64(b, k).to_bits()),
    }
}

/// `#[inline(never)]` disassembly probes over the lane gather/scatter
/// paths, so tests (and humans with `objdump`) can inspect exactly the
/// code the lane loops run without hunting through inlined callers.
///
/// The interesting property is that **no `panic_bounds_check` survives**
/// in either flavour: the global-memory bounds check is `elem_off`'s
/// `Option` (a fault return, never a panic), and the `out[i]` / `vb[i]` /
/// `vk[i]` indexing of the `[u64; LANES]` temporaries is dominated by
/// `nl <= LANES`, which the optimizer proves from the `nl.min(LANES)`
/// restatement. `tests/asm_probe.rs` disassembles these symbols in
/// release builds and fails if a bounds-check panic reappears.
#[doc(hidden)]
pub mod probe {
    use super::{gather, gather_unchecked, scatter, scatter_unchecked, LANES};
    use cucc_ir::Scalar;

    /// Checked per-lane gather ([`super::gather`]).
    #[inline(never)]
    pub fn gather_checked(
        ptr: *const u8,
        len: usize,
        elem: Scalar,
        ix: &[i64; LANES],
        nl: usize,
        out: &mut [u64; LANES],
    ) -> Result<(), usize> {
        gather(ptr, len, elem, ix, nl, out)
    }

    /// Certificate-elided gather ([`super::gather_unchecked`]).
    ///
    /// # Safety
    /// Same contract as [`super::gather_unchecked`]: every `ix[i]` for
    /// `i < nl` must be in bounds for the `(ptr, len)` view.
    #[inline(never)]
    pub unsafe fn gather_elided(
        ptr: *const u8,
        len: usize,
        elem: Scalar,
        ix: &[i64; LANES],
        nl: usize,
        out: &mut [u64; LANES],
    ) {
        gather_unchecked(ptr, len, elem, ix, nl, out)
    }

    /// Checked per-lane scatter ([`super::scatter`]).
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_checked(
        ptr: *mut u8,
        len: usize,
        elem: Scalar,
        ix: &[i64; LANES],
        vb: &[u64],
        vk: &[u8],
        nl: usize,
    ) -> Result<(), usize> {
        scatter(ptr, len, elem, ix, vb, vk, nl)
    }

    /// Certificate-elided scatter ([`super::scatter_unchecked`]).
    ///
    /// # Safety
    /// Same contract as [`super::scatter_unchecked`].
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn scatter_elided(
        ptr: *mut u8,
        len: usize,
        elem: Scalar,
        ix: &[i64; LANES],
        vb: &[u64],
        vk: &[u8],
        nl: usize,
    ) {
        scatter_unchecked(ptr, len, elem, ix, vb, vk, nl)
    }
}

/// Gather through the checked or the certificate-elided path. `elide` is
/// the op's [`crate::bytecode::CertMode::Elide`] bit, hoisted by the
/// caller; when set, the per-lane bounds checks vanish and the call cannot
/// fault.
#[inline]
fn gather_cert(
    ptr: *const u8,
    len: usize,
    elem: Scalar,
    ix: &[i64; LANES],
    nl: usize,
    out: &mut [u64; LANES],
    elide: bool,
) -> Result<(), usize> {
    if elide {
        // SAFETY: the certificate proves every lane index in bounds.
        unsafe { gather_unchecked(ptr, len, elem, ix, nl, out) };
        Ok(())
    } else {
        gather(ptr, len, elem, ix, nl, out)
    }
}

/// Scatter counterpart of [`gather_cert`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn scatter_cert(
    ptr: *mut u8,
    len: usize,
    elem: Scalar,
    ix: &[i64; LANES],
    vb: &[u64],
    vk: &[u8],
    nl: usize,
    elide: bool,
) -> Result<(), usize> {
    if elide {
        // SAFETY: the certificate proves every lane index in bounds.
        unsafe { scatter_unchecked(ptr, len, elem, ix, vb, vk, nl) };
        Ok(())
    } else {
        scatter(ptr, len, elem, ix, vb, vk, nl)
    }
}

/// A full chunk fast-path fault: chunk-relative lane index plus the error.
/// Lanes below the index committed the op; the lane and everything above
/// retire.
type LaneFault = (usize, ExecError);

/// Reusable per-run lane-array execution state: the SoA register file for
/// every thread, plus shared/local images — the lane-tier counterpart of
/// `engine::BlockEngine`, allocated once per `run_*` call and reset per
/// block.
pub(crate) struct LaneEngine<'p> {
    prog: &'p Program,
    nthreads: usize,
    num_locals: usize,
    /// Reg-major packed register values: register `r`, thread `t` lives at
    /// `bits[r * nthreads + t]`.
    bits: Vec<u64>,
    /// Value kind per register per thread (`0` = int, `1` = float),
    /// same layout as `bits`.
    kinds: Vec<u8>,
    returned: Vec<bool>,
    tids: Vec<(u32, u32, u32)>,
    shared: Vec<Vec<u8>>,
    /// Thread-major local arrays: `locals[t * num_locals + l]`.
    locals: Vec<Vec<u8>>,
    block: (u32, u32, u32),
    stats: BlockStats,
    /// AoS staging buffer for the scalar fallback (`run_seg` windows).
    scratch: Vec<Value>,
}

impl<'p> LaneEngine<'p> {
    pub(crate) fn new(prog: &'p Program) -> LaneEngine<'p> {
        let nthreads = prog.launch.threads_per_block() as usize;
        let num_regs = prog.num_regs as usize;
        let num_locals = prog.local_sizes.len();
        let tids: Vec<(u32, u32, u32)> = (0..nthreads)
            .map(|t| prog.launch.block.delinearize(t as u64))
            .collect();
        let mut eng = LaneEngine {
            prog,
            nthreads,
            num_locals,
            bits: vec![0; num_regs * nthreads],
            kinds: vec![0; num_regs * nthreads],
            returned: vec![false; nthreads],
            tids,
            shared: prog.shared_sizes.iter().map(|&sz| vec![0u8; sz]).collect(),
            locals: (0..nthreads)
                .flat_map(|_| prog.local_sizes.iter().map(|&sz| vec![0u8; sz]))
                .collect(),
            block: (0, 0, 0),
            stats: BlockStats::default(),
            scratch: vec![Value::I64(0); num_regs],
        };
        // Launch-invariant rows are splatted once and survive every block:
        // nothing writes them and `reset` skips them.
        let base = prog.const_base as usize;
        for (k, c) in prog.const_pool.iter().enumerate() {
            let (b, kd) = pack(*c);
            let r = base + k;
            eng.bits[r * nthreads..(r + 1) * nthreads].fill(b);
            eng.kinds[r * nthreads..(r + 1) * nthreads].fill(kd);
        }
        let tid_base = base + prog.const_pool.len();
        for (k, axis) in prog.tid_pool.iter().enumerate() {
            let r = tid_base + k;
            for t in 0..nthreads {
                eng.bits[r * nthreads + t] = axis_of(eng.tids[t], *axis) as u64;
            }
        }
        eng
    }

    fn reset(&mut self) {
        // Variable registers carry cross-statement state; temporaries are
        // written before read, so only the leading `num_vars` rows (and the
        // `I64(0)` kind) need clearing.
        let nv = self.prog.num_vars as usize * self.nthreads;
        self.bits[..nv].fill(0);
        self.kinds[..nv].fill(0);
        self.returned.fill(false);
        for s in &mut self.shared {
            s.fill(0);
        }
        for l in &mut self.locals {
            l.fill(0);
        }
    }

    #[inline]
    fn get(&self, r: Reg, t: usize) -> Value {
        let i = r as usize * self.nthreads + t;
        unpack(self.bits[i], self.kinds[i])
    }

    #[inline]
    fn set(&mut self, r: Reg, t: usize, v: Value) {
        let (b, k) = pack(v);
        let i = r as usize * self.nthreads + t;
        self.bits[i] = b;
        self.kinds[i] = k;
    }

    /// Copy one register's chunk row into stack arrays (lanes past `nl` are
    /// zero-padded and never read).
    #[inline]
    fn load_row(&self, r: Reg, c0: usize, nl: usize) -> ([u64; LANES], [u8; LANES]) {
        let base = r as usize * self.nthreads + c0;
        let mut b = [0u64; LANES];
        let mut k = [0u8; LANES];
        b[..nl].copy_from_slice(&self.bits[base..base + nl]);
        k[..nl].copy_from_slice(&self.kinds[base..base + nl]);
        (b, k)
    }

    /// Write the first `nl` lanes of `out` to a register row with a uniform
    /// value kind.
    #[inline]
    fn store_row(&mut self, r: Reg, c0: usize, nl: usize, out: &[u64; LANES], kind: u8) {
        let base = r as usize * self.nthreads + c0;
        self.bits[base..base + nl].copy_from_slice(&out[..nl]);
        self.kinds[base..base + nl].fill(kind);
    }

    #[inline]
    fn store_row_mixed(
        &mut self,
        r: Reg,
        c0: usize,
        nl: usize,
        out: &[u64; LANES],
        kinds: &[u8; LANES],
    ) {
        let base = r as usize * self.nthreads + c0;
        self.bits[base..base + nl].copy_from_slice(&out[..nl]);
        self.kinds[base..base + nl].copy_from_slice(&kinds[..nl]);
    }

    /// Gather a register row as memory indices (`Value::as_i64` per lane).
    #[inline]
    fn idx_row(&self, r: Reg, c0: usize, nl: usize) -> [i64; LANES] {
        let base = r as usize * self.nthreads + c0;
        let bs = &self.bits[base..base + nl];
        let ks = &self.kinds[base..base + nl];
        let mut ix = [0i64; LANES];
        if uniform(ks) == Some(0) {
            for i in 0..nl {
                ix[i] = bs[i] as i64;
            }
        } else {
            for i in 0..nl {
                ix[i] = as_index(bs[i], ks[i]);
            }
        }
        ix
    }

    /// Direct borrow of one register's chunk row (no copy) — bits and kinds.
    #[inline]
    fn row(&self, r: Reg, c0: usize, nl: usize) -> (&[u64], &[u8]) {
        let base = r as usize * self.nthreads + c0;
        (&self.bits[base..base + nl], &self.kinds[base..base + nl])
    }

    /// Broadcast a uniform loop variable to every thread's row.
    fn set_var_all(&mut self, r: Reg, v: Value) {
        let (b, k) = pack(v);
        let base = r as usize * self.nthreads;
        self.bits[base..base + self.nthreads].fill(b);
        self.kinds[base..base + self.nthreads].fill(k);
    }

    /// Execute one block; global-memory effects land in `mem`.
    pub(crate) fn run_block<M: GlobalMem>(
        &mut self,
        mem: &mut M,
        block_linear: u64,
    ) -> Result<BlockStats, ExecError> {
        self.reset();
        self.block = self.prog.launch.grid.delinearize(block_linear);
        self.stats = BlockStats {
            blocks: 1,
            active_threads: self.nthreads as u64,
            ..BlockStats::default()
        };
        let prog = self.prog;
        self.exec_ops(&prog.phases, mem)?;
        Ok(self.stats)
    }

    fn exec_ops<M: GlobalMem>(&mut self, ops: &[PhaseOp], mem: &mut M) -> Result<(), ExecError> {
        let prog = self.prog;
        for op in ops {
            match op {
                PhaseOp::Seg {
                    start,
                    end,
                    batch,
                    plan,
                } => {
                    if *batch != BatchKind::No && self.nthreads > 1 {
                        let pi = *plan as usize;
                        self.run_plan(&prog.lane_plans[pi], prog.plan_cert_masks(pi), mem)?;
                    } else {
                        for t in 0..self.nthreads {
                            if !self.returned[t] {
                                self.seg_scalar(t, *start, *end, mem)?;
                            }
                        }
                    }
                }
                PhaseOp::Barrier => {
                    self.stats.barriers += 1;
                }
                PhaseOp::UniformFor {
                    var,
                    bounds,
                    sreg,
                    ereg,
                    streg,
                    body,
                } => {
                    // Bounds evaluate once, on thread 0 (oracle semantics).
                    self.seg_scalar(0, bounds.0, bounds.1, mem)?;
                    let s = self.get(*sreg, 0).as_i64();
                    let e = self.get(*ereg, 0).as_i64();
                    let st = self.get(*streg, 0).as_i64();
                    if st == 0 {
                        return Err(ExecError::DivergentBarrier);
                    }
                    let mut v = s;
                    while (st > 0 && v < e) || (st < 0 && v > e) {
                        self.set_var_all(*var, Value::I64(v));
                        self.exec_ops(body, mem)?;
                        v += st;
                    }
                    self.set_var_all(*var, Value::I64(v));
                }
                PhaseOp::UniformIf {
                    cond,
                    creg,
                    then_ops,
                    else_ops,
                } => {
                    self.seg_scalar(0, cond.0, cond.1, mem)?;
                    let taken = self.get(*creg, 0).is_true();
                    self.exec_ops(if taken { then_ops } else { else_ops }, mem)?;
                }
            }
        }
        Ok(())
    }

    /// Scalar fallback for non-batchable segments and uniform snippets:
    /// stage thread `t`'s registers into an AoS window and run the shared
    /// thread-major interpreter loop, then scatter the results back.
    fn seg_scalar<M: GlobalMem>(
        &mut self,
        t: usize,
        start: u32,
        end: u32,
        mem: &mut M,
    ) -> Result<(), ExecError> {
        let n = self.nthreads;
        let nl = self.num_locals;
        let prog = self.prog;
        let num_regs = prog.num_regs as usize;
        let mut scratch = std::mem::take(&mut self.scratch);
        for (r, s) in scratch.iter_mut().enumerate() {
            *s = unpack(self.bits[r * n + t], self.kinds[r * n + t]);
        }
        let res = run_seg(
            prog,
            &mut scratch,
            &mut self.shared,
            &mut self.locals[t * nl..(t + 1) * nl],
            &mut self.returned[t],
            &mut self.stats,
            self.block,
            self.tids[t],
            start,
            end,
            mem,
        );
        for (r, s) in scratch.iter().enumerate().take(num_regs) {
            let (b, k) = pack(*s);
            self.bits[r * n + t] = b;
            self.kinds[r * n + t] = k;
        }
        self.scratch = scratch;
        res
    }

    /// Run a batchable segment's fused plan, chunk-major: each [`LANES`]-wide
    /// chunk executes the whole plan before the next chunk starts. Once a
    /// chunk leaves an error pending, later chunks never start (the oracle
    /// never runs those threads).
    fn run_plan<M: GlobalMem>(
        &mut self,
        plan: &LanePlan,
        certs: (Option<&[bool]>, Option<&[bool]>),
        mem: &mut M,
    ) -> Result<(), ExecError> {
        let n = self.nthreads;
        let mut pending: Option<ExecError> = None;
        let mut c0 = 0;
        while c0 < n {
            let nl = LANES.min(n - c0);
            self.chunk(plan, certs, c0, nl, &mut pending, mem);
            if pending.is_some() {
                break;
            }
            c0 += nl;
        }
        match pending {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Execute one lane chunk (`c0 .. c0+nl`) through the whole plan.
    ///
    /// Predication mirrors `seg_batched`: lane `i` executes the op at index
    /// `ip` iff `resume[i] <= ip`; forward jumps raise the target, `Return`
    /// or a fault retires the lane (`DEAD`). While every lane is live and
    /// converged (`!divergent`) the chunk runs the branch-free full-width
    /// fast paths and takes uniform branches by moving `ip` directly; a
    /// partially-taken branch flips it into masked per-lane execution, and
    /// full re-convergence (every resume target caught up) flips it back.
    ///
    /// Faults keep the lowest-thread rule: the faulting lane and everything
    /// above retire, lower lanes continue and may overwrite `pending` with
    /// an error the oracle (which runs them to completion *first*) reports.
    fn chunk<M: GlobalMem>(
        &mut self,
        plan: &LanePlan,
        certs: (Option<&[bool]>, Option<&[bool]>),
        c0: usize,
        nl: usize,
        pending: &mut Option<ExecError>,
        mem: &mut M,
    ) {
        let (emask, vmask) = certs;
        let nl = nl.min(LANES);
        let ops = &plan.ops;
        let nops = ops.len() as u32;
        let mut resume = [0u32; LANES];
        let mut divergent = false;
        for (i, r) in resume.iter_mut().enumerate().take(nl) {
            if self.returned[c0 + i] {
                *r = DEAD;
                divergent = true;
            }
        }
        let mut ip: u32 = 0;
        while ip < nops {
            let op = &ops[ip as usize];
            if !divergent {
                match op {
                    LaneOp::Jump { target } => {
                        ip = *target;
                        continue;
                    }
                    LaneOp::Return => {
                        for i in 0..nl {
                            self.returned[c0 + i] = true;
                        }
                        return;
                    }
                    LaneOp::JumpIfFalse {
                        cond,
                        target,
                        int_ops,
                    }
                    | LaneOp::JumpIfTrue {
                        cond,
                        target,
                        int_ops,
                    } => {
                        let jump_if = matches!(op, LaneOp::JumpIfTrue { .. });
                        self.stats.int_ops += nl as u64 * u64::from(*int_ops);
                        let (cb, ck) = self.row(*cond, c0, nl);
                        let mut jump = [false; LANES];
                        let mut njump = 0usize;
                        for i in 0..nl {
                            jump[i] = truthy(cb[i], ck[i]) == jump_if;
                            njump += usize::from(jump[i]);
                        }
                        ip =
                            self.branch(&jump, njump, nl, &mut resume, &mut divergent, ip, *target);
                        continue;
                    }
                    LaneOp::CmpBranch {
                        op: bop,
                        lhs,
                        rhs,
                        target,
                        int_ops,
                        jump_if,
                    } => {
                        let (lb, lk) = self.row(*lhs, c0, nl);
                        let (rb, rk) = self.row(*rhs, c0, nl);
                        let mut jump = [false; LANES];
                        let mut njump = 0usize;
                        let (iops, fops);
                        // Comparisons never fault; result is I64(0/1).
                        match (uniform(lk), uniform(rk)) {
                            (Some(0), Some(0)) => {
                                for i in 0..nl {
                                    jump[i] =
                                        (ibin(*bop, lb[i] as i64, rb[i] as i64) != 0) == *jump_if;
                                    njump += usize::from(jump[i]);
                                }
                                (iops, fops) = (nl as u64, 0);
                            }
                            (Some(1), Some(1)) if fcmp(*bop, 0.0, 0.0).is_some() => {
                                for i in 0..nl {
                                    let c =
                                        fcmp(*bop, f64::from_bits(lb[i]), f64::from_bits(rb[i]));
                                    jump[i] = (c.unwrap() != 0) == *jump_if;
                                    njump += usize::from(jump[i]);
                                }
                                (iops, fops) = (0, nl as u64);
                            }
                            _ => {
                                let (mut io, mut fo) = (0u64, 0u64);
                                for i in 0..nl {
                                    let l = unpack(lb[i], lk[i]);
                                    let r = unpack(rb[i], rk[i]);
                                    let float = l.kind() == ValueKind::Float
                                        || r.kind() == ValueKind::Float;
                                    if float {
                                        fo += 1;
                                    } else {
                                        io += 1;
                                    }
                                    jump[i] =
                                        eval_binop_total(*bop, l, r, float).is_true() == *jump_if;
                                    njump += usize::from(jump[i]);
                                }
                                (iops, fops) = (io, fo);
                            }
                        }
                        self.stats.int_ops += iops + nl as u64 * u64::from(*int_ops);
                        self.stats.float_ops += fops;
                        ip =
                            self.branch(&jump, njump, nl, &mut resume, &mut divergent, ip, *target);
                        continue;
                    }
                    _ => {
                        let elide = emask.is_some_and(|m| m[ip as usize]);
                        match self.op_full(op, elide, c0, nl, mem) {
                            Ok(()) => {}
                            Err((lane, e)) => {
                                // Lanes below the fault committed this op and
                                // stay runnable; the faulting lane and above
                                // retire (the oracle never runs them).
                                for r in &mut resume[..lane] {
                                    *r = 0;
                                }
                                for r in &mut resume[lane..nl] {
                                    *r = DEAD;
                                }
                                *pending =
                                    Some(cert_wrap(e, vmask.is_some_and(|m| m[ip as usize])));
                                divergent = true;
                            }
                        }
                    }
                }
                ip += 1;
                continue;
            }
            // Masked execution: recompute the active set, re-converge when
            // every live lane has caught up.
            let mut nact = 0usize;
            let mut ndead = 0usize;
            for &r in &resume[..nl] {
                nact += usize::from(r <= ip);
                ndead += usize::from(r == DEAD);
            }
            if ndead == nl {
                return;
            }
            if nact == nl {
                divergent = false;
                continue;
            }
            if nact == 0 {
                ip += 1;
                continue;
            }
            match op {
                LaneOp::Jump { target } => {
                    for r in &mut resume[..nl] {
                        if *r <= ip {
                            *r = *target;
                        }
                    }
                }
                LaneOp::Return => {
                    for (i, r) in resume[..nl].iter_mut().enumerate() {
                        if *r <= ip {
                            self.returned[c0 + i] = true;
                            *r = DEAD;
                        }
                    }
                }
                LaneOp::JumpIfFalse {
                    cond,
                    target,
                    int_ops,
                }
                | LaneOp::JumpIfTrue {
                    cond,
                    target,
                    int_ops,
                } => {
                    let jump_if = matches!(op, LaneOp::JumpIfTrue { .. });
                    self.stats.int_ops += nact as u64 * u64::from(*int_ops);
                    for (i, r) in resume.iter_mut().enumerate().take(nl) {
                        if *r <= ip && (self.get(*cond, c0 + i).is_true() == jump_if) {
                            *r = *target;
                        }
                    }
                }
                LaneOp::CmpBranch {
                    op: bop,
                    lhs,
                    rhs,
                    target,
                    int_ops,
                    jump_if,
                } => {
                    let (mut iops, mut fops) = (0u64, 0u64);
                    for (i, res) in resume.iter_mut().enumerate().take(nl) {
                        if *res <= ip {
                            let l = self.get(*lhs, c0 + i);
                            let r = self.get(*rhs, c0 + i);
                            let float =
                                l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                            if float {
                                fops += 1;
                            } else {
                                iops += 1;
                            }
                            if eval_binop_total(*bop, l, r, float).is_true() == *jump_if {
                                *res = *target;
                            }
                        }
                    }
                    self.stats.int_ops += iops + nact as u64 * u64::from(*int_ops);
                    self.stats.float_ops += fops;
                }
                _ => {
                    for i in 0..nl {
                        if resume[i] <= ip {
                            if let Err(e) = self.lane_step(op, c0 + i, mem) {
                                // Lower lanes already ran this op; this lane
                                // and everything above retire.
                                for r in &mut resume[i..nl] {
                                    *r = DEAD;
                                }
                                *pending =
                                    Some(cert_wrap(e, vmask.is_some_and(|m| m[ip as usize])));
                                break;
                            }
                        }
                    }
                }
            }
            ip += 1;
        }
    }

    /// Resolve a full-width branch: taken by every lane → move `ip` (stay
    /// converged), taken by none → fall through, split → raise the jumping
    /// lanes' resume targets and go divergent.
    #[allow(clippy::too_many_arguments)]
    fn branch(
        &mut self,
        jump: &[bool; LANES],
        njump: usize,
        nl: usize,
        resume: &mut [u32; LANES],
        divergent: &mut bool,
        ip: u32,
        target: u32,
    ) -> u32 {
        if njump == nl {
            target
        } else if njump == 0 {
            ip + 1
        } else {
            for i in 0..nl {
                if jump[i] {
                    resume[i] = target;
                }
            }
            *divergent = true;
            ip + 1
        }
    }

    /// Execute a data op for every lane of a fully-active chunk.
    ///
    /// This is the engine's hot loop: operand rows are copied into stack
    /// arrays, the common uniform-kind cases run branch-free loops over raw
    /// `u64`/`i64`/`f64` lanes (float muladds keep the two separate
    /// roundings of the oracle — never `mul_add`), and memory
    /// superinstructions hoist the slot lookup and buffer pointer out of
    /// the per-lane loop. Anything rare falls through to [`Self::lane_step`]
    /// per lane. On a fault, lanes below the returned index have committed
    /// the op; the caller retires the rest.
    fn op_full<M: GlobalMem>(
        &mut self,
        op: &LaneOp,
        elide: bool,
        c0: usize,
        nl: usize,
        mem: &mut M,
    ) -> Result<(), LaneFault> {
        // `nl <= LANES` always holds; restating it lets the optimizer drop
        // the bounds checks on `[u64; LANES]` temporaries in the lane loops
        // (verified by the disassembly probes in `tests/asm_probe.rs`).
        let nl = nl.min(LANES);
        let n64 = nl as u64;
        let prog = self.prog;
        match op {
            LaneOp::Const {
                dst,
                v,
                int_ops,
                float_ops,
            } => {
                let (b, k) = pack(*v);
                self.store_row(*dst, c0, nl, &[b; LANES], k);
                self.stats.int_ops += n64 * u64::from(*int_ops);
                self.stats.float_ops += n64 * u64::from(*float_ops);
            }
            LaneOp::Tid { dst, axis } => {
                let mut out = [0u64; LANES];
                for (i, o) in out.iter_mut().enumerate().take(nl) {
                    *o = axis_of(self.tids[c0 + i], *axis) as u64;
                }
                self.store_row(*dst, c0, nl, &out, 0);
            }
            LaneOp::Bid { dst, axis } => {
                let v = axis_of(self.block, *axis) as u64;
                self.store_row(*dst, c0, nl, &[v; LANES], 0);
            }
            LaneOp::Copy { dst, src } => {
                let n = self.nthreads;
                let (sb, db) = (*src as usize * n + c0, *dst as usize * n + c0);
                self.bits.copy_within(sb..sb + nl, db);
                self.kinds.copy_within(sb..sb + nl, db);
            }
            LaneOp::Test { dst, src } => {
                let (b, k) = self.row(*src, c0, nl);
                let mut out = [0u64; LANES];
                for i in 0..nl {
                    out[i] = u64::from(truthy(b[i], k[i]));
                }
                self.store_row(*dst, c0, nl, &out, 0);
            }
            LaneOp::Unary { dst, op, src } => {
                let (b, k) = self.load_row(*src, c0, nl);
                let mut out = [0u64; LANES];
                let mut ok = [0u8; LANES];
                for i in 0..nl {
                    let a = unpack(b[i], k[i]);
                    count_op(&mut self.stats, a.kind());
                    let (ob, okd) = pack(eval_unop(*op, a));
                    out[i] = ob;
                    ok[i] = okd;
                }
                self.store_row_mixed(*dst, c0, nl, &out, &ok);
            }
            LaneOp::Cast { dst, ty, src } => {
                let (b, k) = self.load_row(*src, c0, nl);
                let mut out = [0u64; LANES];
                for i in 0..nl {
                    out[i] = pack(unpack(b[i], k[i]).convert_to(*ty)).0;
                }
                let okind = match ty.kind() {
                    ValueKind::Int => {
                        self.stats.int_ops += n64;
                        0
                    }
                    ValueKind::Float => {
                        self.stats.float_ops += n64;
                        1
                    }
                };
                self.store_row(*dst, c0, nl, &out, okind);
            }
            LaneOp::Intrin1 { dst, f, a } => {
                let (b, k) = self.load_row(*a, c0, nl);
                let mut out = [0u64; LANES];
                let mut ok = [0u8; LANES];
                for i in 0..nl {
                    let (ob, okd) = pack(eval_intrinsic(*f, &[unpack(b[i], k[i])]));
                    out[i] = ob;
                    ok[i] = okd;
                }
                self.stats.float_ops += n64 * intrinsic_weight(*f);
                self.store_row_mixed(*dst, c0, nl, &out, &ok);
            }
            LaneOp::Intrin2 { dst, f, a, b } => {
                let (ab, ak) = self.load_row(*a, c0, nl);
                let (bb, bk) = self.load_row(*b, c0, nl);
                let mut out = [0u64; LANES];
                let mut ok = [0u8; LANES];
                for i in 0..nl {
                    let (ob, okd) = pack(eval_intrinsic(
                        *f,
                        &[unpack(ab[i], ak[i]), unpack(bb[i], bk[i])],
                    ));
                    out[i] = ob;
                    ok[i] = okd;
                }
                self.stats.float_ops += n64 * intrinsic_weight(*f);
                self.store_row_mixed(*dst, c0, nl, &out, &ok);
            }
            LaneOp::Binary { dst, op, lhs, rhs } => {
                let (lb, lk) = self.row(*lhs, c0, nl);
                let (rb, rk) = self.row(*rhs, c0, nl);
                let mut out = [0u64; LANES];
                match (uniform(lk), uniform(rk)) {
                    (Some(1), Some(1)) if fbin_arith(*op, 0.0, 0.0).is_some() => {
                        for i in 0..nl {
                            let a = f64::from_bits(lb[i]);
                            let b = f64::from_bits(rb[i]);
                            out[i] = fbin_arith(*op, a, b).unwrap().to_bits();
                        }
                        self.stats.float_ops += n64;
                        self.store_row(*dst, c0, nl, &out, 1);
                    }
                    (Some(1), Some(1)) if fcmp(*op, 0.0, 0.0).is_some() => {
                        for i in 0..nl {
                            let a = f64::from_bits(lb[i]);
                            let b = f64::from_bits(rb[i]);
                            out[i] = fcmp(*op, a, b).unwrap() as u64;
                        }
                        self.stats.float_ops += n64;
                        self.store_row(*dst, c0, nl, &out, 0);
                    }
                    (Some(0), Some(0)) => {
                        if matches!(op, BinOp::Div | BinOp::Rem) {
                            let mut fault = None;
                            for i in 0..nl {
                                if rb[i] == 0 {
                                    fault = Some(i);
                                    break;
                                }
                                out[i] = ibin(*op, lb[i] as i64, rb[i] as i64) as u64;
                            }
                            if let Some(i) = fault {
                                // Lanes below already computed: commit them
                                // before reporting the fault.
                                self.stats.int_ops += i as u64 + 1;
                                let row = *dst as usize * self.nthreads + c0;
                                self.bits[row..row + i].copy_from_slice(&out[..i]);
                                self.kinds[row..row + i].fill(0);
                                return Err((i, ExecError::DivByZero));
                            }
                        } else {
                            for i in 0..nl {
                                out[i] = ibin(*op, lb[i] as i64, rb[i] as i64) as u64;
                            }
                        }
                        self.stats.int_ops += n64;
                        self.store_row(*dst, c0, nl, &out, 0);
                    }
                    _ => {
                        let mut ok = [0u8; LANES];
                        let (mut io, mut fo) = (0u64, 0u64);
                        let mut fault = None;
                        for i in 0..nl {
                            let l = unpack(lb[i], lk[i]);
                            let r = unpack(rb[i], rk[i]);
                            let float =
                                l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                            if float {
                                fo += 1;
                            } else {
                                io += 1;
                            }
                            if binop_faults(*op, r, float) {
                                fault = Some(i);
                                break;
                            }
                            let (ob, okd) = pack(eval_binop_total(*op, l, r, float));
                            out[i] = ob;
                            ok[i] = okd;
                        }
                        self.stats.int_ops += io;
                        self.stats.float_ops += fo;
                        if let Some(i) = fault {
                            self.store_row_mixed(*dst, c0, i, &out, &ok);
                            return Err((i, ExecError::DivByZero));
                        }
                        self.store_row_mixed(*dst, c0, nl, &out, &ok);
                    }
                }
            }
            LaneOp::MulAdd { dst, a, b, c } => {
                let (ab, ak) = self.row(*a, c0, nl);
                let (bb, bk) = self.row(*b, c0, nl);
                let (cb, ck) = self.row(*c, c0, nl);
                let kinds = (uniform(ak), uniform(bk), uniform(ck));
                let mut out = [0u64; LANES];
                match kinds {
                    (Some(1), Some(1), Some(1)) => {
                        // Fixed-width body for full chunks so the trip count
                        // is a compile-time constant the autovectorizer can
                        // unroll into whole vectors.
                        if let (Ok(ab), Ok(bb), Ok(cb)) = (
                            <&[u64; LANES]>::try_from(ab),
                            <&[u64; LANES]>::try_from(bb),
                            <&[u64; LANES]>::try_from(cb),
                        ) {
                            for i in 0..LANES {
                                let m = f64::from_bits(ab[i]) * f64::from_bits(bb[i]);
                                out[i] = (m + f64::from_bits(cb[i])).to_bits();
                            }
                        } else {
                            for i in 0..nl {
                                let m = f64::from_bits(ab[i]) * f64::from_bits(bb[i]);
                                out[i] = (m + f64::from_bits(cb[i])).to_bits();
                            }
                        }
                        self.stats.float_ops += 2 * n64;
                        self.store_row(*dst, c0, nl, &out, 1);
                    }
                    (Some(0), Some(0), Some(0)) => {
                        for i in 0..nl {
                            let m = (ab[i] as i64).wrapping_mul(bb[i] as i64);
                            out[i] = m.wrapping_add(cb[i] as i64) as u64;
                        }
                        self.stats.int_ops += 2 * n64;
                        self.store_row(*dst, c0, nl, &out, 0);
                    }
                    _ => {
                        let (ab, ak) = self.load_row(*a, c0, nl);
                        let (bb, bk) = self.load_row(*b, c0, nl);
                        let (cb, ck) = self.load_row(*c, c0, nl);
                        let mut ok = [0u8; LANES];
                        for i in 0..nl {
                            let v = self.muladd(
                                unpack(ab[i], ak[i]),
                                unpack(bb[i], bk[i]),
                                unpack(cb[i], ck[i]),
                            );
                            let (ob, okd) = pack(v);
                            out[i] = ob;
                            ok[i] = okd;
                        }
                        self.store_row_mixed(*dst, c0, nl, &out, &ok);
                    }
                }
            }
            LaneOp::Load { dst, slot, idx } => {
                let info = slot_info(prog, *slot);
                let sz = info.elem.size() as u64;
                let ix = self.idx_row(*idx, c0, nl);
                let okind = match info.elem.kind() {
                    ValueKind::Int => 0,
                    ValueKind::Float => 1,
                };
                let mut out = [0u64; LANES];
                match info.kind {
                    SlotKind::Global { buf } => {
                        let (ptr, len) = mem.raw(buf);
                        if let Err(i) = gather_cert(ptr, len, info.elem, &ix, nl, &mut out, elide) {
                            self.store_row(*dst, c0, i, &out, okind);
                            return Err((i, oob(info, ix[i], mem)));
                        }
                        self.stats.global_read_bytes += n64 * sz;
                        self.stats.global_loads += n64;
                    }
                    SlotKind::Shared { idx: si } => {
                        let sh = &self.shared[si as usize];
                        let (sp, slen) = (sh.as_ptr(), sh.len());
                        if let Err(i) = gather_cert(sp, slen, info.elem, &ix, nl, &mut out, elide) {
                            self.store_row(*dst, c0, i, &out, okind);
                            return Err((i, oob(info, ix[i], mem)));
                        }
                        self.stats.shared_bytes += n64 * sz;
                    }
                    SlotKind::Local { .. } => return self.full_fallback(op, c0, nl, mem),
                }
                self.stats.int_ops += n64; // address computation
                self.store_row(*dst, c0, nl, &out, okind);
            }
            LaneOp::Store { slot, idx, val } => {
                let info = slot_info(prog, *slot);
                let sz = info.elem.size() as u64;
                let ix = self.idx_row(*idx, c0, nl);
                match info.kind {
                    SlotKind::Global { buf } => {
                        let (ptr, len) = mem.raw(buf);
                        let (vb, vk) = self.row(*val, c0, nl);
                        if let Err(i) = scatter_cert(ptr, len, info.elem, &ix, vb, vk, nl, elide) {
                            return Err((i, oob(info, ix[i], mem)));
                        }
                        self.stats.global_write_bytes += n64 * sz;
                        self.stats.global_stores += n64;
                    }
                    SlotKind::Shared { idx: si } => {
                        let pv = *val as usize * self.nthreads + c0;
                        let (vb, vk) = (&self.bits[pv..pv + nl], &self.kinds[pv..pv + nl]);
                        let sh = &mut self.shared[si as usize];
                        if let Err(i) = scatter_cert(
                            sh.as_mut_ptr(),
                            sh.len(),
                            info.elem,
                            &ix,
                            vb,
                            vk,
                            nl,
                            elide,
                        ) {
                            return Err((i, oob(info, ix[i], mem)));
                        }
                        self.stats.shared_bytes += n64 * sz;
                    }
                    SlotKind::Local { .. } => return self.full_fallback(op, c0, nl, mem),
                }
                self.stats.int_ops += n64; // address computation
            }
            LaneOp::LoadStore {
                sslot,
                sidx,
                dslot,
                didx,
            } => {
                let sinfo = slot_info(prog, *sslot);
                let dinfo = slot_info(prog, *dslot);
                let six = self.idx_row(*sidx, c0, nl);
                let dix = self.idx_row(*didx, c0, nl);
                let ssz = sinfo.elem.size() as u64;
                let dsz = dinfo.elem.size() as u64;
                // `seg_batchable` forbids stores to a loaded slot, so the
                // source and destination images never alias; raw pointers /
                // disjoint slices are taken per slot kind up front.
                match (&sinfo.kind, &dinfo.kind) {
                    (SlotKind::Global { buf: sb }, SlotKind::Global { buf: db }) => {
                        let (sp, slen) = mem.raw(*sb);
                        let (dp, dlen) = mem.raw(*db);
                        let mut v = [0u64; LANES];
                        // Gather everything first, then scatter what loaded:
                        // a store fault on a lower lane precedes a load fault
                        // on a higher one in the oracle's per-thread order.
                        let lf = gather_cert(sp, slen, sinfo.elem, &six, nl, &mut v, elide).err();
                        let m = lf.unwrap_or(nl);
                        let vk = [u8::from(sinfo.elem.kind() == ValueKind::Float); LANES];
                        let sf =
                            scatter_cert(dp, dlen, dinfo.elem, &dix, &v[..m], &vk[..m], m, elide)
                                .err();
                        if let Some(j) = sf {
                            return Err((j, oob(dinfo, dix[j], mem)));
                        }
                        if let Some(i) = lf {
                            return Err((i, oob(sinfo, six[i], mem)));
                        }
                        self.stats.global_read_bytes += n64 * ssz;
                        self.stats.global_loads += n64;
                        self.stats.global_write_bytes += n64 * dsz;
                        self.stats.global_stores += n64;
                    }
                    (SlotKind::Global { buf: sb }, SlotKind::Shared { idx: di }) => {
                        let (sp, slen) = mem.raw(*sb);
                        let mut v = [0u64; LANES];
                        let lf = gather_cert(sp, slen, sinfo.elem, &six, nl, &mut v, elide).err();
                        let m = lf.unwrap_or(nl);
                        let vk = [u8::from(sinfo.elem.kind() == ValueKind::Float); LANES];
                        let sh = &mut self.shared[*di as usize];
                        let sf = scatter_cert(
                            sh.as_mut_ptr(),
                            sh.len(),
                            dinfo.elem,
                            &dix,
                            &v[..m],
                            &vk[..m],
                            m,
                            elide,
                        )
                        .err();
                        if let Some(j) = sf {
                            return Err((j, oob(dinfo, dix[j], mem)));
                        }
                        if let Some(i) = lf {
                            return Err((i, oob(sinfo, six[i], mem)));
                        }
                        self.stats.global_read_bytes += n64 * ssz;
                        self.stats.global_loads += n64;
                        self.stats.shared_bytes += n64 * dsz;
                    }
                    (SlotKind::Shared { idx: si }, SlotKind::Global { buf: db }) => {
                        let (dp, dlen) = mem.raw(*db);
                        let sh = &self.shared[*si as usize];
                        let mut v = [0u64; LANES];
                        let lf =
                            gather_cert(sh.as_ptr(), sh.len(), sinfo.elem, &six, nl, &mut v, elide)
                                .err();
                        let m = lf.unwrap_or(nl);
                        let vk = [u8::from(sinfo.elem.kind() == ValueKind::Float); LANES];
                        let sf =
                            scatter_cert(dp, dlen, dinfo.elem, &dix, &v[..m], &vk[..m], m, elide)
                                .err();
                        if let Some(j) = sf {
                            return Err((j, oob(dinfo, dix[j], mem)));
                        }
                        if let Some(i) = lf {
                            return Err((i, oob(sinfo, six[i], mem)));
                        }
                        self.stats.shared_bytes += n64 * ssz;
                        self.stats.global_write_bytes += n64 * dsz;
                        self.stats.global_stores += n64;
                    }
                    _ => return self.full_fallback(op, c0, nl, mem),
                }
                self.stats.int_ops += 2 * n64; // two address computations
            }
            LaneOp::LoadMulAdd {
                dst,
                x,
                y,
                slot,
                idx,
                pos,
            } => {
                let info = slot_info(prog, *slot);
                let SlotKind::Global { buf } = info.kind else {
                    return self.full_fallback(op, c0, nl, mem);
                };
                let sz = info.elem.size() as u64;
                let ix = self.idx_row(*idx, c0, nl);
                let (ptr, len) = mem.raw(buf);
                let mut out = [0u64; LANES];
                let all_float = {
                    let (_, xk) = self.row(*x, c0, nl);
                    let (_, yk) = self.row(*y, c0, nl);
                    info.elem.kind() == ValueKind::Float
                        && uniform(xk) == Some(1)
                        && uniform(yk) == Some(1)
                };
                if all_float {
                    let mut vb = [0u64; LANES];
                    let lf = gather_cert(ptr, len, info.elem, &ix, nl, &mut vb, elide).err();
                    let m = lf.unwrap_or(nl);
                    let (xb, _) = self.row(*x, c0, nl);
                    let (yb, _) = self.row(*y, c0, nl);
                    for i in 0..m {
                        let v = f64::from_bits(vb[i]);
                        let (a, b, c) = match pos {
                            0 => (v, f64::from_bits(xb[i]), f64::from_bits(yb[i])),
                            1 => (f64::from_bits(xb[i]), v, f64::from_bits(yb[i])),
                            _ => (f64::from_bits(xb[i]), f64::from_bits(yb[i]), v),
                        };
                        out[i] = (a * b + c).to_bits();
                    }
                    if let Some(i) = lf {
                        self.store_row(*dst, c0, i, &out, 1);
                        return Err((i, oob(info, ix[i], mem)));
                    }
                    self.stats.float_ops += 2 * n64;
                    self.store_row(*dst, c0, nl, &out, 1);
                } else {
                    let (xb, xk) = self.load_row(*x, c0, nl);
                    let (yb, yk) = self.load_row(*y, c0, nl);
                    let mut ok = [0u8; LANES];
                    for i in 0..nl {
                        let Some(v) = raw_load(ptr, len, info.elem, ix[i]) else {
                            self.store_row_mixed(*dst, c0, i, &out, &ok);
                            return Err((i, oob(info, ix[i], mem)));
                        };
                        let (a, b, c) =
                            arrange(unpack(xb[i], xk[i]), unpack(yb[i], yk[i]), v, *pos);
                        let (ob, okd) = pack(self.muladd(a, b, c));
                        out[i] = ob;
                        ok[i] = okd;
                    }
                    self.store_row_mixed(*dst, c0, nl, &out, &ok);
                }
                self.stats.global_read_bytes += n64 * sz;
                self.stats.global_loads += n64;
                self.stats.int_ops += n64; // address computation
            }
            LaneOp::MulAddStore { a, b, c, slot, idx } => {
                let info = slot_info(prog, *slot);
                let SlotKind::Global { buf } = info.kind else {
                    return self.full_fallback(op, c0, nl, mem);
                };
                let sz = info.elem.size() as u64;
                let ix = self.idx_row(*idx, c0, nl);
                let (ptr, len) = mem.raw(buf);
                let all_float = {
                    let (_, ak) = self.row(*a, c0, nl);
                    let (_, bk) = self.row(*b, c0, nl);
                    let (_, ck) = self.row(*c, c0, nl);
                    uniform(ak) == Some(1) && uniform(bk) == Some(1) && uniform(ck) == Some(1)
                };
                if all_float {
                    let (ab, _) = self.row(*a, c0, nl);
                    let (bb, _) = self.row(*b, c0, nl);
                    let (cb, _) = self.row(*c, c0, nl);
                    let mut out = [0u64; LANES];
                    for i in 0..nl {
                        let m = f64::from_bits(ab[i]) * f64::from_bits(bb[i]);
                        out[i] = (m + f64::from_bits(cb[i])).to_bits();
                    }
                    let vk = [1u8; LANES];
                    if let Err(i) = scatter_cert(ptr, len, info.elem, &ix, &out, &vk, nl, elide) {
                        self.stats.float_ops += 2 * (i as u64 + 1);
                        return Err((i, oob(info, ix[i], mem)));
                    }
                    self.stats.float_ops += 2 * n64;
                } else {
                    let (ab, ak) = self.load_row(*a, c0, nl);
                    let (bb, bk) = self.load_row(*b, c0, nl);
                    let (cb, ck) = self.load_row(*c, c0, nl);
                    for i in 0..nl {
                        let v = self.muladd(
                            unpack(ab[i], ak[i]),
                            unpack(bb[i], bk[i]),
                            unpack(cb[i], ck[i]),
                        );
                        if !raw_store(ptr, len, info.elem, ix[i], v) {
                            return Err((i, oob(info, ix[i], mem)));
                        }
                    }
                }
                self.stats.global_write_bytes += n64 * sz;
                self.stats.global_stores += n64;
                self.stats.int_ops += n64; // address computation
            }
            LaneOp::LoadMulAddStore {
                x,
                y,
                pos,
                lslot,
                lidx,
                dslot,
                didx,
            } => {
                let linfo = slot_info(prog, *lslot);
                let dinfo = slot_info(prog, *dslot);
                let (SlotKind::Global { buf: lb }, SlotKind::Global { buf: db }) =
                    (&linfo.kind, &dinfo.kind)
                else {
                    return self.full_fallback(op, c0, nl, mem);
                };
                let lsz = linfo.elem.size() as u64;
                let dsz = dinfo.elem.size() as u64;
                let lix = self.idx_row(*lidx, c0, nl);
                let dix = self.idx_row(*didx, c0, nl);
                let (lp, llen) = mem.raw(*lb);
                let (dp, dlen) = mem.raw(*db);
                let all_float = {
                    let (_, xk) = self.row(*x, c0, nl);
                    let (_, yk) = self.row(*y, c0, nl);
                    linfo.elem.kind() == ValueKind::Float
                        && uniform(xk) == Some(1)
                        && uniform(yk) == Some(1)
                };
                if all_float {
                    let mut vb = [0u64; LANES];
                    // Gather, compute, scatter; a store fault on a lower lane
                    // precedes a load fault on a higher one (oracle order).
                    let lf = gather_cert(lp, llen, linfo.elem, &lix, nl, &mut vb, elide).err();
                    let m = lf.unwrap_or(nl);
                    let mut out = [0u64; LANES];
                    {
                        let (xb, _) = self.row(*x, c0, nl);
                        let (yb, _) = self.row(*y, c0, nl);
                        for i in 0..m {
                            let v = f64::from_bits(vb[i]);
                            let (a, b, c) = match pos {
                                0 => (v, f64::from_bits(xb[i]), f64::from_bits(yb[i])),
                                1 => (f64::from_bits(xb[i]), v, f64::from_bits(yb[i])),
                                _ => (f64::from_bits(xb[i]), f64::from_bits(yb[i]), v),
                            };
                            out[i] = (a * b + c).to_bits();
                        }
                    }
                    let vk = [1u8; LANES];
                    let sf =
                        scatter_cert(dp, dlen, dinfo.elem, &dix, &out[..m], &vk[..m], m, elide)
                            .err();
                    if let Some(j) = sf {
                        return Err((j, oob(dinfo, dix[j], mem)));
                    }
                    if let Some(i) = lf {
                        return Err((i, oob(linfo, lix[i], mem)));
                    }
                    self.stats.float_ops += 2 * n64;
                } else {
                    let (xb, xk) = self.load_row(*x, c0, nl);
                    let (yb, yk) = self.load_row(*y, c0, nl);
                    for i in 0..nl {
                        let Some(v) = raw_load(lp, llen, linfo.elem, lix[i]) else {
                            return Err((i, oob(linfo, lix[i], mem)));
                        };
                        let (a, b, c) =
                            arrange(unpack(xb[i], xk[i]), unpack(yb[i], yk[i]), v, *pos);
                        let r = self.muladd(a, b, c);
                        if !raw_store(dp, dlen, dinfo.elem, dix[i], r) {
                            return Err((i, oob(dinfo, dix[i], mem)));
                        }
                    }
                }
                self.stats.global_read_bytes += n64 * lsz;
                self.stats.global_loads += n64;
                self.stats.global_write_bytes += n64 * dsz;
                self.stats.global_stores += n64;
                self.stats.int_ops += 2 * n64; // two address computations
            }
            // Rare in batchable segments: per-lane scalar execution with the
            // slot lookup still amortized by `lane_step`'s shared code.
            LaneOp::LoadBin { .. } | LaneOp::BinStore { .. } | LaneOp::AtomicRmw { .. } => {
                return self.full_fallback(op, c0, nl, mem)
            }
            LaneOp::Jump { .. }
            | LaneOp::JumpIfFalse { .. }
            | LaneOp::JumpIfTrue { .. }
            | LaneOp::CmpBranch { .. }
            | LaneOp::Return => unreachable!("control flow is handled by `chunk`"),
        }
        Ok(())
    }

    /// Per-lane scalar execution of a full-width chunk for ops without a
    /// vector fast path.
    fn full_fallback<M: GlobalMem>(
        &mut self,
        op: &LaneOp,
        c0: usize,
        nl: usize,
        mem: &mut M,
    ) -> Result<(), LaneFault> {
        for i in 0..nl {
            if let Err(e) = self.lane_step(op, c0 + i, mem) {
                return Err((i, e));
            }
        }
        Ok(())
    }

    /// Mul-then-add with the oracle's exact kind promotion and per-component
    /// charging (two separate roundings in the float case).
    #[inline]
    fn muladd(&mut self, av: Value, bv: Value, cv: Value) -> Value {
        let f1 = av.kind() == ValueKind::Float || bv.kind() == ValueKind::Float;
        let m = eval_binop_total(BinOp::Mul, av, bv, f1);
        let f2 = m.kind() == ValueKind::Float || cv.kind() == ValueKind::Float;
        self.stats.int_ops += u64::from(!f1) + u64::from(!f2);
        self.stats.float_ops += u64::from(f1) + u64::from(f2);
        eval_binop_total(BinOp::Add, m, cv, f2)
    }

    /// Execute one data op for a single lane — the masked-mode workhorse
    /// and the fallback for ops without a full-width fast path. Mirrors
    /// `run_seg`'s per-instruction semantics and charging exactly; fused
    /// ops execute their components in program order, so faults surface in
    /// the order the oracle hits them.
    fn lane_step<M: GlobalMem>(
        &mut self,
        op: &LaneOp,
        t: usize,
        mem: &mut M,
    ) -> Result<(), ExecError> {
        let prog = self.prog;
        let nloc = self.num_locals;
        match op {
            LaneOp::Const {
                dst,
                v,
                int_ops,
                float_ops,
            } => {
                self.stats.int_ops += u64::from(*int_ops);
                self.stats.float_ops += u64::from(*float_ops);
                self.set(*dst, t, *v);
            }
            LaneOp::Tid { dst, axis } => {
                let v = Value::I64(axis_of(self.tids[t], *axis) as i64);
                self.set(*dst, t, v);
            }
            LaneOp::Bid { dst, axis } => {
                let v = Value::I64(axis_of(self.block, *axis) as i64);
                self.set(*dst, t, v);
            }
            LaneOp::Copy { dst, src } => {
                let v = self.get(*src, t);
                self.set(*dst, t, v);
            }
            LaneOp::Unary { dst, op, src } => {
                let a = self.get(*src, t);
                count_op(&mut self.stats, a.kind());
                self.set(*dst, t, eval_unop(*op, a));
            }
            LaneOp::Binary { dst, op, lhs, rhs } => {
                let l = self.get(*lhs, t);
                let r = self.get(*rhs, t);
                let float = l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                if float {
                    self.stats.float_ops += 1;
                } else {
                    self.stats.int_ops += 1;
                }
                if binop_faults(*op, r, float) {
                    return Err(ExecError::DivByZero);
                }
                self.set(*dst, t, eval_binop_total(*op, l, r, float));
            }
            LaneOp::MulAdd { dst, a, b, c } => {
                let (av, bv, cv) = (self.get(*a, t), self.get(*b, t), self.get(*c, t));
                let v = self.muladd(av, bv, cv);
                self.set(*dst, t, v);
            }
            LaneOp::Cast { dst, ty, src } => {
                let v = self.get(*src, t);
                count_op(&mut self.stats, ty.kind());
                self.set(*dst, t, v.convert_to(*ty));
            }
            LaneOp::Intrin1 { dst, f, a } => {
                let av = self.get(*a, t);
                self.stats.float_ops += intrinsic_weight(*f);
                self.set(*dst, t, eval_intrinsic(*f, &[av]));
            }
            LaneOp::Intrin2 { dst, f, a, b } => {
                let (av, bv) = (self.get(*a, t), self.get(*b, t));
                self.stats.float_ops += intrinsic_weight(*f);
                self.set(*dst, t, eval_intrinsic(*f, &[av, bv]));
            }
            LaneOp::Test { dst, src } => {
                let v = Value::I64(i64::from(self.get(*src, t).is_true()));
                self.set(*dst, t, v);
            }
            LaneOp::Load { dst, slot, idx } => {
                let index = self.get(*idx, t).as_i64();
                let info = slot_info(prog, *slot);
                let v = load_value(
                    info,
                    &self.shared,
                    &self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    mem,
                )?;
                self.set(*dst, t, v);
            }
            LaneOp::Store { slot, idx, val } => {
                let index = self.get(*idx, t).as_i64();
                let v = self.get(*val, t);
                let info = slot_info(prog, *slot);
                store_value(
                    info,
                    &mut self.shared,
                    &mut self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    v,
                    mem,
                )?;
            }
            LaneOp::AtomicRmw { op, slot, idx, val } => {
                let index = self.get(*idx, t).as_i64();
                let v = self.get(*val, t);
                let info = slot_info(prog, *slot);
                let old = load_value(
                    info,
                    &self.shared,
                    &self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    mem,
                )?;
                let new = apply_atomic(*op, old, v);
                store_value(
                    info,
                    &mut self.shared,
                    &mut self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    new,
                    mem,
                )?;
                if matches!(info.kind, SlotKind::Global { .. }) {
                    self.stats.global_atomics += 1;
                }
            }
            LaneOp::LoadBin {
                dst,
                op,
                slot,
                idx,
                other,
                load_lhs,
            } => {
                let index = self.get(*idx, t).as_i64();
                let info = slot_info(prog, *slot);
                let v = load_value(
                    info,
                    &self.shared,
                    &self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    mem,
                )?;
                let o = self.get(*other, t);
                let (l, r) = if *load_lhs { (v, o) } else { (o, v) };
                let float = l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                if float {
                    self.stats.float_ops += 1;
                } else {
                    self.stats.int_ops += 1;
                }
                // Fusion excludes `Div`/`Rem`, so the op is total.
                self.set(*dst, t, eval_binop_total(*op, l, r, float));
            }
            LaneOp::BinStore {
                op,
                lhs,
                rhs,
                slot,
                idx,
            } => {
                let l = self.get(*lhs, t);
                let r = self.get(*rhs, t);
                let float = l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                if float {
                    self.stats.float_ops += 1;
                } else {
                    self.stats.int_ops += 1;
                }
                let v = eval_binop_total(*op, l, r, float);
                let index = self.get(*idx, t).as_i64();
                let info = slot_info(prog, *slot);
                store_value(
                    info,
                    &mut self.shared,
                    &mut self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    v,
                    mem,
                )?;
            }
            LaneOp::LoadStore {
                sslot,
                sidx,
                dslot,
                didx,
            } => {
                let sindex = self.get(*sidx, t).as_i64();
                let sinfo = slot_info(prog, *sslot);
                let v = load_value(
                    sinfo,
                    &self.shared,
                    &self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    sindex,
                    mem,
                )?;
                let dindex = self.get(*didx, t).as_i64();
                let dinfo = slot_info(prog, *dslot);
                store_value(
                    dinfo,
                    &mut self.shared,
                    &mut self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    dindex,
                    v,
                    mem,
                )?;
            }
            LaneOp::LoadMulAdd {
                dst,
                x,
                y,
                slot,
                idx,
                pos,
            } => {
                let index = self.get(*idx, t).as_i64();
                let info = slot_info(prog, *slot);
                let v = load_value(
                    info,
                    &self.shared,
                    &self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    mem,
                )?;
                let (a, b, c) = arrange(self.get(*x, t), self.get(*y, t), v, *pos);
                let r = self.muladd(a, b, c);
                self.set(*dst, t, r);
            }
            LaneOp::MulAddStore { a, b, c, slot, idx } => {
                let (av, bv, cv) = (self.get(*a, t), self.get(*b, t), self.get(*c, t));
                let v = self.muladd(av, bv, cv);
                let index = self.get(*idx, t).as_i64();
                let info = slot_info(prog, *slot);
                store_value(
                    info,
                    &mut self.shared,
                    &mut self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    index,
                    v,
                    mem,
                )?;
            }
            LaneOp::LoadMulAddStore {
                x,
                y,
                pos,
                lslot,
                lidx,
                dslot,
                didx,
            } => {
                let lindex = self.get(*lidx, t).as_i64();
                let linfo = slot_info(prog, *lslot);
                let v = load_value(
                    linfo,
                    &self.shared,
                    &self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    lindex,
                    mem,
                )?;
                let (a, b, c) = arrange(self.get(*x, t), self.get(*y, t), v, *pos);
                let r = self.muladd(a, b, c);
                let dindex = self.get(*didx, t).as_i64();
                let dinfo = slot_info(prog, *dslot);
                store_value(
                    dinfo,
                    &mut self.shared,
                    &mut self.locals[t * nloc..(t + 1) * nloc],
                    &mut self.stats,
                    dindex,
                    r,
                    mem,
                )?;
            }
            LaneOp::Jump { .. }
            | LaneOp::JumpIfFalse { .. }
            | LaneOp::JumpIfTrue { .. }
            | LaneOp::CmpBranch { .. }
            | LaneOp::Return => unreachable!("control flow is handled by `chunk`"),
        }
        Ok(())
    }
}

/// Execute a contiguous block range serially with the vectorized lane-array
/// engine (ascending linear index — the tree-walk oracle's order, so memory
/// effects match bit-for-bit even for racy kernels).
pub fn run_range_simd(
    prog: &Program,
    pool: &mut MemPool,
    blocks: Range<u64>,
) -> Result<BlockStats, ExecError> {
    let mut eng = LaneEngine::new(prog);
    let mut total = BlockStats::default();
    for b in blocks {
        total += eng.run_block(pool, b)?;
    }
    Ok(total)
}

/// Lane-array counterpart of `run_range_parallel`: chunk the block range
/// across up to `workers` scoped threads, each running its own
/// [`LaneEngine`] over a shared `RacyView`. Falls back to [`run_range_simd`]
/// when one worker suffices or the program is `Program::serial_only`
/// (global atomics).
pub fn run_range_parallel_simd(
    prog: &Program,
    pool: &mut MemPool,
    blocks: Range<u64>,
    workers: usize,
) -> Result<BlockStats, ExecError> {
    let nblocks = blocks.end.saturating_sub(blocks.start);
    let workers = workers.min(nblocks.min(usize::MAX as u64) as usize);
    if workers <= 1 || prog.serial_only() {
        return run_range_simd(prog, pool, blocks);
    }
    let view = RacyView::new(pool);
    let chunks: Vec<Range<u64>> = (0..workers as u64)
        .map(|i| {
            let lo = blocks.start + i * nblocks / workers as u64;
            let hi = blocks.start + (i + 1) * nblocks / workers as u64;
            lo..hi
        })
        .filter(|r| !r.is_empty())
        .collect();
    let results: Vec<Result<BlockStats, ExecError>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|r| {
                let mut v = view.clone();
                s.spawn(move || {
                    let mut eng = LaneEngine::new(prog);
                    let mut total = BlockStats::default();
                    for b in r {
                        total += eng.run_block(&mut v, b)?;
                    }
                    Ok(total)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("lane engine worker panicked"))
            .collect()
    });
    let mut total = BlockStats::default();
    for r in results {
        total += r?;
    }
    Ok(total)
}

/// Compile `kernel` for `launch` and execute every block with the
/// vectorized lane-array engine — the drop-in counterpart of
/// `crate::interp::execute_launch` and `execute_launch_bytecode`.
pub fn execute_launch_simd(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &mut MemPool,
) -> Result<BlockStats, ExecError> {
    let prog = Program::compile(kernel, launch, args)?;
    run_range_simd(&prog, pool, 0..launch.num_blocks())
}
