//! The kernel interpreter.
//!
//! [`execute_block`] runs one GPU block: all its threads execute the kernel
//! body, split into *phases* at `__syncthreads()` barriers (each phase runs
//! every thread to the barrier before any thread continues past it — the
//! classic MCUDA/CuPBoP loop-fission semantics). [`execute_launch`] runs a
//! whole grid sequentially, which is the functional reference used as the
//! correctness oracle. [`profile_launch`] samples representative blocks and
//! extrapolates their [`BlockStats`] to the full launch.

use crate::memory::{decode, encode, BufferId, MemPool};
use crate::stats::{intrinsic_weight, BlockStats};
use cucc_ir::{
    AtomicOp, BinOp, Expr, Intrinsic, Kernel, LaunchConfig, MemRef, Param, Stmt, UnOp, Value,
    ValueKind,
};
use std::fmt;

/// A kernel launch argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// Scalar argument (converted to the parameter's declared type).
    Scalar(Value),
    /// Global-memory buffer argument.
    Buffer(BufferId),
}

impl Arg {
    /// Shorthand for an `i64`-typed scalar argument.
    pub fn int(v: i64) -> Arg {
        Arg::Scalar(Value::I64(v))
    }

    /// Shorthand for a float scalar argument.
    pub fn float(v: f64) -> Arg {
        Arg::Scalar(Value::F64(v))
    }
}

/// Runtime failure during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Launch supplied the wrong number of arguments.
    ArgCount { expected: usize, got: usize },
    /// Buffer passed for scalar parameter or vice versa.
    ArgKind { param: String },
    /// Memory access outside an allocation.
    OutOfBounds {
        mem: String,
        index: i64,
        len_elems: usize,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// A barrier-carrying loop or branch had thread-divergent control
    /// (should be prevented by validation).
    DivergentBarrier,
    /// A bounds check failed on an access the range analysis certified
    /// in-bounds (only under `CertMode::Validate`): the certificate itself
    /// is wrong, which the soundness suite treats as a hard failure.
    CertificateViolation {
        mem: String,
        index: i64,
        len_elems: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ArgCount { expected, got } => {
                write!(f, "kernel expects {expected} arguments, got {got}")
            }
            ExecError::ArgKind { param } => {
                write!(f, "argument kind mismatch for parameter `{param}`")
            }
            ExecError::OutOfBounds {
                mem,
                index,
                len_elems,
            } => write!(
                f,
                "out-of-bounds access to `{mem}`: index {index}, length {len_elems}"
            ),
            ExecError::DivByZero => write!(f, "integer division by zero"),
            ExecError::DivergentBarrier => {
                write!(f, "thread-divergent control flow around __syncthreads()")
            }
            ExecError::CertificateViolation {
                mem,
                index,
                len_elems,
            } => write!(
                f,
                "bounds certificate violated on `{mem}`: index {index}, length {len_elems} \
                 (range analysis certified this access in-bounds)"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// One recorded global-memory write (or atomic update).
///
/// Traced execution feeds the dynamic *write interval* oracle of the
/// Allgather-distributable analysis (paper §6.1): the write interval of a
/// block is the union of the byte ranges its threads write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    /// Index of the buffer parameter written (`ParamId` value).
    pub param: u32,
    /// Byte offset of the write within the buffer.
    pub byte_off: u64,
    /// Number of bytes written.
    pub bytes: u32,
    /// True when the write was an atomic read-modify-write.
    pub atomic: bool,
}

/// Per-thread interpreter state.
struct Env {
    vars: Vec<Value>,
    locals: Vec<Vec<u8>>,
    returned: bool,
    tid: (u32, u32, u32),
}

/// Reusable per-launch execution state: thread environments and the shared
/// memory image, allocated once and reset per block so that multi-block
/// runs stop paying per-block allocation cost.
struct BlockArena {
    envs: Vec<Env>,
    shared: Vec<Vec<u8>>,
}

impl BlockArena {
    fn new(kernel: &Kernel, launch: LaunchConfig) -> BlockArena {
        let nthreads = launch.threads_per_block() as usize;
        BlockArena {
            envs: (0..nthreads)
                .map(|t| Env {
                    vars: vec![Value::I64(0); kernel.num_vars()],
                    locals: kernel
                        .locals
                        .iter()
                        .map(|a| vec![0u8; a.size_bytes()])
                        .collect(),
                    returned: false,
                    tid: launch.block.delinearize(t as u64),
                })
                .collect(),
            shared: kernel
                .shared
                .iter()
                .map(|a| vec![0u8; a.size_bytes()])
                .collect(),
        }
    }

    /// Restore the freshly-allocated state (zero vars/locals/shared, no
    /// thread returned). Thread ids are block-invariant and stay.
    fn reset(&mut self) {
        for env in &mut self.envs {
            env.vars.fill(Value::I64(0));
            for l in &mut env.locals {
                l.fill(0);
            }
            env.returned = false;
        }
        for s in &mut self.shared {
            s.fill(0);
        }
    }
}

struct Interp<'a> {
    kernel: &'a Kernel,
    launch: LaunchConfig,
    block: (u32, u32, u32),
    args: &'a [Arg],
    pool: &'a mut MemPool,
    shared: &'a mut [Vec<u8>],
    stats: BlockStats,
    trace: Option<&'a mut Vec<WriteRecord>>,
}

/// Execute a single block (identified by its linear index, x-fastest) and
/// return its dynamic statistics. Global memory effects land in `pool`.
pub fn execute_block(
    kernel: &Kernel,
    launch: LaunchConfig,
    block_linear: u64,
    args: &[Arg],
    pool: &mut MemPool,
) -> Result<BlockStats, ExecError> {
    execute_block_inner(kernel, launch, block_linear, args, pool, None)
}

/// Like [`execute_block`], but records every global-memory write into
/// `trace`.
pub fn execute_block_traced(
    kernel: &Kernel,
    launch: LaunchConfig,
    block_linear: u64,
    args: &[Arg],
    pool: &mut MemPool,
    trace: &mut Vec<WriteRecord>,
) -> Result<BlockStats, ExecError> {
    execute_block_inner(kernel, launch, block_linear, args, pool, Some(trace))
}

fn execute_block_inner(
    kernel: &Kernel,
    launch: LaunchConfig,
    block_linear: u64,
    args: &[Arg],
    pool: &mut MemPool,
    trace: Option<&mut Vec<WriteRecord>>,
) -> Result<BlockStats, ExecError> {
    check_args(kernel, args)?;
    let mut arena = BlockArena::new(kernel, launch);
    run_block_prepared(kernel, launch, block_linear, args, pool, &mut arena, trace)
}

/// Run one block out of a pre-checked, pre-allocated arena. `check_args`
/// must have been called once for the launch; the arena is reset here.
fn run_block_prepared(
    kernel: &Kernel,
    launch: LaunchConfig,
    block_linear: u64,
    args: &[Arg],
    pool: &mut MemPool,
    arena: &mut BlockArena,
    trace: Option<&mut Vec<WriteRecord>>,
) -> Result<BlockStats, ExecError> {
    arena.reset();
    let BlockArena { envs, shared } = arena;
    let mut interp = Interp {
        kernel,
        launch,
        block: launch.grid.delinearize(block_linear),
        args,
        pool,
        shared,
        stats: BlockStats {
            blocks: 1,
            active_threads: envs.len() as u64,
            ..BlockStats::default()
        },
        trace,
    };
    interp.run_phased(&kernel.body, envs)?;
    Ok(interp.stats)
}

/// Execute every block of the launch sequentially (ascending linear block
/// index). This is the functional GPU reference semantics: the CUDA model
/// guarantees no particular block order, so any fixed order is a valid
/// execution.
pub fn execute_launch(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &mut MemPool,
) -> Result<BlockStats, ExecError> {
    execute_block_range(kernel, launch, 0..launch.num_blocks(), args, pool)
}

/// Execute a contiguous range of blocks sequentially (ascending), with
/// argument checking and environment allocation hoisted out of the per-block
/// loop. [`execute_launch`] and the cluster's tree-walk path build on this.
pub fn execute_block_range(
    kernel: &Kernel,
    launch: LaunchConfig,
    blocks: std::ops::Range<u64>,
    args: &[Arg],
    pool: &mut MemPool,
) -> Result<BlockStats, ExecError> {
    check_args(kernel, args)?;
    let mut arena = BlockArena::new(kernel, launch);
    let mut total = BlockStats::default();
    for b in blocks {
        total += run_block_prepared(kernel, launch, b, args, pool, &mut arena, None)?;
    }
    Ok(total)
}

/// Extrapolated launch statistics from sampled blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchProfile {
    /// Average statistics of one non-tail block.
    pub per_block: BlockStats,
    /// Statistics of the last block (tail blocks often do less work under
    /// bound-check guards).
    pub tail_block: BlockStats,
    /// Number of blocks in the launch.
    pub num_blocks: u64,
    /// Whole-launch extrapolation: `per_block × (n−1) + tail`.
    pub total: BlockStats,
}

/// Sample up to `samples` evenly spaced blocks plus the tail block on a
/// scratch copy of memory, and extrapolate to the full launch.
///
/// SPMD symmetry makes this accurate for the paper's kernels: all non-tail
/// blocks execute the same instruction mix.
pub fn profile_launch(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &MemPool,
    samples: usize,
) -> Result<LaunchProfile, ExecError> {
    let nb = launch.num_blocks();
    let mut scratch = pool.clone();
    check_args(kernel, args)?;
    let mut arena = BlockArena::new(kernel, launch);
    let tail = run_block_prepared(kernel, launch, nb - 1, args, &mut scratch, &mut arena, None)?;
    let body_blocks = nb - 1;
    let per_block = if body_blocks == 0 {
        BlockStats::default()
    } else {
        let k = (samples.max(1) as u64).min(body_blocks);
        let mut acc = BlockStats::default();
        for i in 0..k {
            let b = i * body_blocks / k;
            acc += run_block_prepared(kernel, launch, b, args, &mut scratch, &mut arena, None)?;
        }
        // Average the samples; keep integer math exact by rounding.
        BlockStats {
            int_ops: acc.int_ops / k,
            float_ops: acc.float_ops / k,
            global_read_bytes: acc.global_read_bytes / k,
            global_write_bytes: acc.global_write_bytes / k,
            global_loads: acc.global_loads / k,
            global_stores: acc.global_stores / k,
            shared_bytes: acc.shared_bytes / k,
            local_bytes: acc.local_bytes / k,
            global_atomics: acc.global_atomics / k,
            barriers: acc.barriers / k,
            active_threads: acc.active_threads / k,
            blocks: 1,
        }
    };
    let total = per_block.scaled(body_blocks) + tail;
    Ok(LaunchProfile {
        per_block,
        tail_block: tail,
        num_blocks: nb,
        total,
    })
}

pub(crate) fn check_args(kernel: &Kernel, args: &[Arg]) -> Result<(), ExecError> {
    if args.len() != kernel.params.len() {
        return Err(ExecError::ArgCount {
            expected: kernel.params.len(),
            got: args.len(),
        });
    }
    for (p, a) in kernel.params.iter().zip(args) {
        let ok = matches!(
            (p, a),
            (Param::Buffer { .. }, Arg::Buffer(_)) | (Param::Scalar { .. }, Arg::Scalar(_))
        );
        if !ok {
            return Err(ExecError::ArgKind {
                param: p.name().to_string(),
            });
        }
    }
    Ok(())
}

pub(crate) fn contains_barrier(s: &Stmt) -> bool {
    match s {
        Stmt::SyncThreads => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => then_body.iter().any(contains_barrier) || else_body.iter().any(contains_barrier),
        Stmt::For { body, .. } => body.iter().any(contains_barrier),
        _ => false,
    }
}

impl<'a> Interp<'a> {
    /// Run a statement list with barrier-phase semantics: maximal
    /// barrier-free runs execute thread-by-thread to completion; barriers
    /// and barrier-carrying compound statements are executed in lockstep.
    fn run_phased(&mut self, stmts: &[Stmt], envs: &mut [Env]) -> Result<(), ExecError> {
        let mut i = 0;
        while i < stmts.len() {
            if !contains_barrier(&stmts[i]) {
                let start = i;
                while i < stmts.len() && !contains_barrier(&stmts[i]) {
                    i += 1;
                }
                let run = &stmts[start..i];
                for env in envs.iter_mut() {
                    if !env.returned {
                        self.exec_run(run, env)?;
                    }
                }
                continue;
            }
            match &stmts[i] {
                Stmt::SyncThreads => {
                    self.stats.barriers += 1;
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    // Uniform loop (guaranteed by validation): bounds are
                    // evaluated once, with thread 0's environment.
                    let (s, e, st) = {
                        let env0 = &mut envs[0];
                        let s = self.eval(start, env0)?.as_i64();
                        let e = self.eval(end, env0)?.as_i64();
                        let st = self.eval(step, env0)?.as_i64();
                        (s, e, st)
                    };
                    if st == 0 {
                        return Err(ExecError::DivergentBarrier);
                    }
                    let mut v = s;
                    while (st > 0 && v < e) || (st < 0 && v > e) {
                        for env in envs.iter_mut() {
                            env.vars[var.index()] = Value::I64(v);
                        }
                        self.run_phased(body, envs)?;
                        v += st;
                    }
                    for env in envs.iter_mut() {
                        env.vars[var.index()] = Value::I64(v);
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    // Uniform branch around a barrier: decide once.
                    let taken = {
                        let env0 = &mut envs[0];
                        self.eval(cond, env0)?.is_true()
                    };
                    let body = if taken { then_body } else { else_body };
                    self.run_phased(body, envs)?;
                }
                _ => return Err(ExecError::DivergentBarrier),
            }
            i += 1;
        }
        Ok(())
    }

    /// Execute a barrier-free statement run for one thread.
    fn exec_run(&mut self, stmts: &[Stmt], env: &mut Env) -> Result<(), ExecError> {
        for s in stmts {
            if env.returned {
                return Ok(());
            }
            self.exec_stmt(s, env)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, env: &mut Env) -> Result<(), ExecError> {
        match s {
            Stmt::Assign { var, value } => {
                let v = self.eval(value, env)?;
                env.vars[var.index()] = v;
            }
            Stmt::Store { mem, index, value } => {
                let idx = self.eval(index, env)?.as_i64();
                let v = self.eval(value, env)?;
                self.store_mem(*mem, idx, v, env, false)?;
            }
            Stmt::AtomicRmw {
                op,
                mem,
                index,
                value,
            } => {
                let idx = self.eval(index, env)?.as_i64();
                let v = self.eval(value, env)?;
                let old = self.load_mem(*mem, idx, env)?;
                let new = apply_atomic(*op, old, v);
                self.store_mem(*mem, idx, new, env, true)?;
                if mem.space() == cucc_ir::MemSpace::Global {
                    self.stats.global_atomics += 1;
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.stats.int_ops += 1; // branch decision
                if self.eval(cond, env)?.is_true() {
                    self.exec_run(then_body, env)?;
                } else {
                    self.exec_run(else_body, env)?;
                }
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let s0 = self.eval(start, env)?.as_i64();
                let e = self.eval(end, env)?.as_i64();
                let st = self.eval(step, env)?.as_i64();
                if st == 0 {
                    // Validation rejects constant-zero steps; dynamic zero is
                    // treated as a divide-by-zero-class error.
                    return Err(ExecError::DivByZero);
                }
                let mut v = s0;
                while (st > 0 && v < e) || (st < 0 && v > e) {
                    env.vars[var.index()] = Value::I64(v);
                    self.exec_run(body, env)?;
                    if env.returned {
                        return Ok(());
                    }
                    self.stats.int_ops += 2; // induction update + test
                    v += st;
                }
                env.vars[var.index()] = Value::I64(v);
            }
            Stmt::SyncThreads => {
                // Reached only in barrier-free runs, i.e. never (the phased
                // driver intercepts barriers); keep as no-op for safety.
            }
            Stmt::Return => env.returned = true,
        }
        Ok(())
    }

    fn mem_len_elems(&self, mem: MemRef, env: &Env) -> usize {
        match mem {
            MemRef::Global(p) => {
                let Arg::Buffer(id) = self.args[p.index()] else {
                    unreachable!("checked by check_args");
                };
                self.pool.size_of(id) / self.kernel.elem_type(mem).size()
            }
            MemRef::Shared(i) => self.kernel.shared[i as usize].len,
            MemRef::Local(i) => {
                let _ = env;
                self.kernel.locals[i as usize].len
            }
        }
    }

    fn mem_name(&self, mem: MemRef) -> String {
        match mem {
            MemRef::Global(p) => self.kernel.params[p.index()].name().to_string(),
            MemRef::Shared(i) => self.kernel.shared[i as usize].name.clone(),
            MemRef::Local(i) => self.kernel.locals[i as usize].name.clone(),
        }
    }

    fn oob(&self, mem: MemRef, index: i64, env: &Env) -> ExecError {
        ExecError::OutOfBounds {
            mem: self.mem_name(mem),
            index,
            len_elems: self.mem_len_elems(mem, env),
        }
    }

    fn load_mem(&mut self, mem: MemRef, index: i64, env: &Env) -> Result<Value, ExecError> {
        let elem = self.kernel.elem_type(mem);
        let sz = elem.size() as u64;
        self.stats.int_ops += 1; // address computation
        match mem {
            MemRef::Global(p) => {
                let Arg::Buffer(id) = self.args[p.index()] else {
                    unreachable!();
                };
                self.stats.global_read_bytes += sz;
                self.stats.global_loads += 1;
                self.pool
                    .load(id, elem, index)
                    .ok_or_else(|| self.oob(mem, index, env))
            }
            MemRef::Shared(i) => {
                self.stats.shared_bytes += sz;
                slice_load(&self.shared[i as usize], elem, index)
                    .ok_or_else(|| self.oob(mem, index, env))
            }
            MemRef::Local(i) => {
                self.stats.local_bytes += sz;
                slice_load(&env.locals[i as usize], elem, index)
                    .ok_or_else(|| self.oob(mem, index, env))
            }
        }
    }

    fn store_mem(
        &mut self,
        mem: MemRef,
        index: i64,
        value: Value,
        env: &mut Env,
        atomic: bool,
    ) -> Result<(), ExecError> {
        let elem = self.kernel.elem_type(mem);
        let sz = elem.size() as u64;
        self.stats.int_ops += 1; // address computation
        match mem {
            MemRef::Global(p) => {
                let Arg::Buffer(id) = self.args[p.index()] else {
                    unreachable!();
                };
                self.stats.global_write_bytes += sz;
                self.stats.global_stores += 1;
                if self.pool.store(id, elem, index, value) {
                    if let Some(trace) = self.trace.as_deref_mut() {
                        trace.push(WriteRecord {
                            param: p.0,
                            byte_off: index as u64 * sz,
                            bytes: sz as u32,
                            atomic,
                        });
                    }
                    Ok(())
                } else {
                    Err(self.oob(mem, index, env))
                }
            }
            MemRef::Shared(i) => {
                self.stats.shared_bytes += sz;
                if slice_store(&mut self.shared[i as usize], elem, index, value) {
                    Ok(())
                } else {
                    Err(self.oob(mem, index, env))
                }
            }
            MemRef::Local(i) => {
                self.stats.local_bytes += sz;
                if slice_store(&mut env.locals[i as usize], elem, index, value) {
                    Ok(())
                } else {
                    Err(self.oob(mem, index, env))
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Result<Value, ExecError> {
        Ok(match e {
            Expr::IntConst(v) => Value::I64(*v),
            Expr::FloatConst(v) => Value::F64(*v),
            Expr::ThreadIdx(a) => Value::I64(axis_of(env.tid, *a) as i64),
            Expr::BlockIdx(a) => Value::I64(axis_of(self.block, *a) as i64),
            Expr::BlockDim(a) => Value::I64(self.launch.block.get(*a) as i64),
            Expr::GridDim(a) => Value::I64(self.launch.grid.get(*a) as i64),
            Expr::Param(p) => {
                let Arg::Scalar(v) = self.args[p.index()] else {
                    unreachable!("checked by check_args");
                };
                v.convert_to(self.kernel.params[p.index()].scalar())
            }
            Expr::Var(v) => env.vars[v.index()],
            Expr::Load { mem, index } => {
                let idx = self.eval(index, env)?.as_i64();
                self.load_mem(*mem, idx, env)?
            }
            Expr::Unary { op, arg } => {
                let a = self.eval(arg, env)?;
                self.count_op(a.kind());
                eval_unop(*op, a)
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators (needed so guarded loads
                // like `i < n && data[i]` never evaluate the load OOB).
                if *op == BinOp::LAnd {
                    let l = self.eval(lhs, env)?;
                    self.count_op(ValueKind::Int);
                    if !l.is_true() {
                        return Ok(Value::I64(0));
                    }
                    let r = self.eval(rhs, env)?;
                    return Ok(Value::I64(i64::from(r.is_true())));
                }
                if *op == BinOp::LOr {
                    let l = self.eval(lhs, env)?;
                    self.count_op(ValueKind::Int);
                    if l.is_true() {
                        return Ok(Value::I64(1));
                    }
                    let r = self.eval(rhs, env)?;
                    return Ok(Value::I64(i64::from(r.is_true())));
                }
                let l = self.eval(lhs, env)?;
                let r = self.eval(rhs, env)?;
                let float = l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                self.count_op(if float {
                    ValueKind::Float
                } else {
                    ValueKind::Int
                });
                eval_binop(*op, l, r, float)?
            }
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = self.eval(cond, env)?;
                self.count_op(ValueKind::Int);
                if c.is_true() {
                    self.eval(then_value, env)?
                } else {
                    self.eval(else_value, env)?
                }
            }
            Expr::Cast { ty, arg } => {
                let v = self.eval(arg, env)?;
                self.count_op(ty.kind());
                v.convert_to(*ty)
            }
            Expr::Call { f, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.stats.float_ops += intrinsic_weight(*f);
                eval_intrinsic(*f, &vals)
            }
        })
    }

    #[inline]
    fn count_op(&mut self, kind: ValueKind) {
        match kind {
            ValueKind::Int => self.stats.int_ops += 1,
            ValueKind::Float => self.stats.float_ops += 1,
        }
    }
}

#[inline]
pub(crate) fn axis_of(t: (u32, u32, u32), a: cucc_ir::Axis) -> u32 {
    match a {
        cucc_ir::Axis::X => t.0,
        cucc_ir::Axis::Y => t.1,
        cucc_ir::Axis::Z => t.2,
    }
}

/// Apply a unary operator with the interpreter's exact semantics (wrapping
/// integer negation, C truthiness for `!`).
#[inline]
pub(crate) fn eval_unop(op: UnOp, a: Value) -> Value {
    match op {
        UnOp::Neg => match a {
            Value::I64(v) => Value::I64(v.wrapping_neg()),
            Value::F64(v) => Value::F64(-v),
        },
        UnOp::Not => Value::I64(i64::from(!a.is_true())),
        UnOp::BitNot => Value::I64(!a.as_i64()),
    }
}

/// True when evaluating `op` on these operands would fail (integer divide
/// or remainder by zero) — the only fallible case of [`eval_binop_total`].
#[inline]
pub(crate) fn binop_faults(op: BinOp, r: Value, float: bool) -> bool {
    !float && matches!(op, BinOp::Div | BinOp::Rem) && r.as_i64() == 0
}

#[inline]
pub(crate) fn eval_binop(op: BinOp, l: Value, r: Value, float: bool) -> Result<Value, ExecError> {
    if binop_faults(op, r, float) {
        return Err(ExecError::DivByZero);
    }
    Ok(eval_binop_total(op, l, r, float))
}

/// Infallible binary-op core. Callers must rule out [`binop_faults`] first;
/// the int `Div`/`Rem` arms defensively yield 0 on a zero divisor so this
/// function can never panic.
#[inline]
pub(crate) fn eval_binop_total(op: BinOp, l: Value, r: Value, float: bool) -> Value {
    use BinOp::*;
    if float {
        let (a, b) = (l.as_f64(), r.as_f64());
        return match op {
            Add => Value::F64(a + b),
            Sub => Value::F64(a - b),
            Mul => Value::F64(a * b),
            Div => Value::F64(a / b),
            Lt => Value::I64(i64::from(a < b)),
            Le => Value::I64(i64::from(a <= b)),
            Gt => Value::I64(i64::from(a > b)),
            Ge => Value::I64(i64::from(a >= b)),
            Eq => Value::I64(i64::from(a == b)),
            Ne => Value::I64(i64::from(a != b)),
            // Integer-only operators with float operands are rejected by
            // validation; fall back to int semantics defensively.
            Rem | And | Or | Xor | Shl | Shr | LAnd | LOr => {
                eval_binop_total(op, Value::I64(l.as_i64()), Value::I64(r.as_i64()), false)
            }
        };
    }
    let (a, b) = (l.as_i64(), r.as_i64());
    match op {
        Add => Value::I64(a.wrapping_add(b)),
        Sub => Value::I64(a.wrapping_sub(b)),
        Mul => Value::I64(a.wrapping_mul(b)),
        Div => Value::I64(if b == 0 { 0 } else { a.wrapping_div(b) }),
        Rem => Value::I64(if b == 0 { 0 } else { a.wrapping_rem(b) }),
        Lt => Value::I64(i64::from(a < b)),
        Le => Value::I64(i64::from(a <= b)),
        Gt => Value::I64(i64::from(a > b)),
        Ge => Value::I64(i64::from(a >= b)),
        Eq => Value::I64(i64::from(a == b)),
        Ne => Value::I64(i64::from(a != b)),
        And => Value::I64(a & b),
        Or => Value::I64(a | b),
        Xor => Value::I64(a ^ b),
        Shl => Value::I64(a.wrapping_shl(b as u32 & 63)),
        Shr => Value::I64(a.wrapping_shr(b as u32 & 63)),
        LAnd => Value::I64(i64::from(a != 0 && b != 0)),
        LOr => Value::I64(i64::from(a != 0 || b != 0)),
    }
}

#[inline]
pub(crate) fn eval_intrinsic(f: Intrinsic, args: &[Value]) -> Value {
    use Intrinsic::*;
    match f {
        Min | Max | Abs => {
            let all_int = args.iter().all(|v| v.kind() == ValueKind::Int);
            if all_int {
                let a = args[0].as_i64();
                return Value::I64(match f {
                    Min => a.min(args[1].as_i64()),
                    Max => a.max(args[1].as_i64()),
                    Abs => a.abs(),
                    _ => unreachable!(),
                });
            }
        }
        _ => {}
    }
    let a = args[0].as_f64();
    Value::F64(match f {
        Exp => a.exp(),
        Log => a.ln(),
        Sqrt => a.sqrt(),
        Rsqrt => 1.0 / a.sqrt(),
        Sin => a.sin(),
        Cos => a.cos(),
        Tanh => a.tanh(),
        Erf => erf(a),
        Fabs | Abs => a.abs(),
        Floor => a.floor(),
        Ceil => a.ceil(),
        Pow => a.powf(args[1].as_f64()),
        Fmin | Min => a.min(args[1].as_f64()),
        Fmax | Max => a.max(args[1].as_f64()),
    })
}

/// Error function, Abramowitz & Stegun 7.1.26 (max abs error 1.5e-7 — the
/// same order as CUDA's single-precision `erff`).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[inline]
pub(crate) fn apply_atomic(op: AtomicOp, old: Value, v: Value) -> Value {
    let float = old.kind() == ValueKind::Float || v.kind() == ValueKind::Float;
    if float {
        let (a, b) = (old.as_f64(), v.as_f64());
        Value::F64(match op {
            AtomicOp::Add => a + b,
            AtomicOp::Min => a.min(b),
            AtomicOp::Max => a.max(b),
        })
    } else {
        let (a, b) = (old.as_i64(), v.as_i64());
        Value::I64(match op {
            AtomicOp::Add => a.wrapping_add(b),
            AtomicOp::Min => a.min(b),
            AtomicOp::Max => a.max(b),
        })
    }
}

#[inline]
pub(crate) fn slice_load(bytes: &[u8], elem: cucc_ir::Scalar, index: i64) -> Option<Value> {
    let sz = elem.size();
    if index < 0 {
        return None;
    }
    let off = (index as usize).checked_mul(sz)?;
    let slice = bytes.get(off..off + sz)?;
    Some(decode(elem, slice))
}

#[inline]
pub(crate) fn slice_store(
    bytes: &mut [u8],
    elem: cucc_ir::Scalar,
    index: i64,
    value: Value,
) -> bool {
    let sz = elem.size();
    if index < 0 {
        return false;
    }
    let Some(off) = (index as usize).checked_mul(sz) else {
        return false;
    };
    let Some(slice) = bytes.get_mut(off..off + sz) else {
        return false;
    };
    encode(elem, value, slice);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::{parse_kernel, Scalar};

    const LISTING1: &str = r#"
        __global__ void vec_copy(char* src, char* dest, int n) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            if (id < n)
                dest[id] = src[id];
        }
    "#;

    #[test]
    fn listing1_copies_with_tail_guard() {
        let k = parse_kernel(LISTING1).unwrap();
        cucc_ir::validate(&k).unwrap();
        let n = 1200usize;
        let mut pool = MemPool::new();
        let src = pool.alloc(n);
        let dest = pool.alloc(n);
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        pool.write_all(src, &data);
        let launch = LaunchConfig::cover1(n as u64, 256);
        let stats = execute_launch(
            &k,
            launch,
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(n as i64)],
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.bytes(dest), &data[..]);
        assert_eq!(stats.blocks, 5);
        assert_eq!(stats.global_write_bytes, n as u64);
        assert_eq!(stats.global_read_bytes, n as u64);
    }

    #[test]
    fn tail_block_writes_less() {
        let k = parse_kernel(LISTING1).unwrap();
        let n = 1200usize;
        let mut pool = MemPool::new();
        let src = pool.alloc(n);
        let dest = pool.alloc(n);
        let launch = LaunchConfig::cover1(n as u64, 256);
        let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(n as i64)];
        let full = execute_block(&k, launch, 0, &args, &mut pool).unwrap();
        let tail = execute_block(&k, launch, 4, &args, &mut pool).unwrap();
        assert_eq!(full.global_write_bytes, 256);
        assert_eq!(tail.global_write_bytes, 1200 - 4 * 256);
    }

    #[test]
    fn barrier_phases_order_shared_memory() {
        // Reverse within a block via shared memory: correctness requires all
        // writes to complete before any read — i.e. real barrier semantics.
        let src = r#"
            __global__ void reverse(int* data) {
                __shared__ int tile[64];
                tile[threadIdx.x] = data[blockIdx.x * blockDim.x + threadIdx.x];
                __syncthreads();
                data[blockIdx.x * blockDim.x + threadIdx.x] = tile[blockDim.x - 1 - threadIdx.x];
            }
        "#;
        let k = parse_kernel(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        let mut pool = MemPool::new();
        let data = pool.alloc_elems(Scalar::I32, 128);
        let init: Vec<i32> = (0..128).collect();
        pool.write_i32(data, &init);
        execute_launch(
            &k,
            LaunchConfig::new(2u32, 64u32),
            &[Arg::Buffer(data)],
            &mut pool,
        )
        .unwrap();
        let got = pool.read_i32(data);
        let want: Vec<i32> = (0..128)
            .map(|i| {
                let block = i / 64;
                let t = i % 64;
                block * 64 + (63 - t)
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn barrier_in_uniform_loop() {
        // Each iteration all threads shift a shared value; requires barrier
        // phases inside the loop body.
        let src = r#"
            __global__ void rotate(int* out, int rounds) {
                __shared__ int ring[32];
                ring[threadIdx.x] = threadIdx.x;
                __syncthreads();
                int v = 0;
                for (int r = 0; r < rounds; r++) {
                    v = ring[(threadIdx.x + 1) % 32];
                    __syncthreads();
                    ring[threadIdx.x] = v;
                    __syncthreads();
                }
                out[threadIdx.x] = ring[threadIdx.x];
            }
        "#;
        let k = parse_kernel(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, 32);
        execute_launch(
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[Arg::Buffer(out), Arg::int(3)],
            &mut pool,
        )
        .unwrap();
        let got = pool.read_i32(out);
        let want: Vec<i32> = (0..32).map(|t| (t + 3) % 32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn oob_reported_with_context() {
        let src = "__global__ void k(int* out) { out[threadIdx.x] = 1; }";
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, 4);
        let err = execute_launch(
            &k,
            LaunchConfig::new(1u32, 8u32),
            &[Arg::Buffer(out)],
            &mut pool,
        )
        .unwrap_err();
        match err {
            ExecError::OutOfBounds {
                mem,
                index,
                len_elems,
            } => {
                assert_eq!(mem, "out");
                assert_eq!(index, 4);
                assert_eq!(len_elems, 4);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn short_circuit_guards_oob() {
        let src = r#"
            __global__ void k(int* data, int* out, int n) {
                int id = threadIdx.x;
                if (id < n && data[id] > 0)
                    out[id] = data[id];
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let data = pool.alloc_elems(Scalar::I32, 4);
        let out = pool.alloc_elems(Scalar::I32, 4);
        pool.write_i32(data, &[5, -1, 7, 0]);
        // 8 threads, n = 4: threads 4..7 must not touch data[].
        execute_launch(
            &k,
            LaunchConfig::new(1u32, 8u32),
            &[Arg::Buffer(data), Arg::Buffer(out), Arg::int(4)],
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.read_i32(out), vec![5, 0, 7, 0]);
    }

    #[test]
    fn div_by_zero_caught() {
        let src = "__global__ void k(int* out, int d) { out[0] = 1 / d; }";
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, 1);
        let err = execute_launch(
            &k,
            LaunchConfig::new(1u32, 1u32),
            &[Arg::Buffer(out), Arg::int(0)],
            &mut pool,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::DivByZero);
    }

    #[test]
    fn atomics_accumulate() {
        let src = r#"
            __global__ void hist(int* bins, int* data, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) atomicAdd(&bins[data[id] % 4], 1);
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let bins = pool.alloc_elems(Scalar::I32, 4);
        let data = pool.alloc_elems(Scalar::I32, 100);
        let vals: Vec<i32> = (0..100).collect();
        pool.write_i32(data, &vals);
        let stats = execute_launch(
            &k,
            LaunchConfig::cover1(100, 32),
            &[Arg::Buffer(bins), Arg::Buffer(data), Arg::int(100)],
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.read_i32(bins), vec![25, 25, 25, 25]);
        assert_eq!(stats.global_atomics, 100);
    }

    #[test]
    fn return_terminates_thread() {
        let src = r#"
            __global__ void k(int* out) {
                int id = threadIdx.x;
                if (id >= 4) return;
                out[id] = id + 1;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, 4);
        execute_launch(
            &k,
            LaunchConfig::new(1u32, 16u32),
            &[Arg::Buffer(out)],
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.read_i32(out), vec![1, 2, 3, 4]);
    }

    #[test]
    fn profile_extrapolates() {
        let k = parse_kernel(LISTING1).unwrap();
        let n = 1200usize;
        let mut pool = MemPool::new();
        let src = pool.alloc(n);
        let dest = pool.alloc(n);
        let launch = LaunchConfig::cover1(n as u64, 256);
        let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(n as i64)];
        let before = pool.clone();
        let prof = profile_launch(&k, launch, &args, &pool, 3).unwrap();
        // Profiling must not disturb caller memory.
        assert_eq!(pool, before);
        assert_eq!(prof.num_blocks, 5);
        assert_eq!(prof.per_block.global_write_bytes, 256);
        assert_eq!(prof.tail_block.global_write_bytes, 176);
        assert_eq!(prof.total.global_write_bytes, 1200);
        // Extrapolation matches a full run for this symmetric kernel.
        let mut pool2 = pool.clone();
        let full = execute_launch(&k, launch, &args, &mut pool2).unwrap();
        assert_eq!(prof.total.global_write_bytes, full.global_write_bytes);
        assert_eq!(prof.total.int_ops, full.int_ops);
    }

    #[test]
    fn intrinsics_evaluate() {
        let src = r#"
            __global__ void k(double* out, double x) {
                out[0] = expf(x);
                out[1] = sqrtf(x);
                out[2] = fmaxf(x, 2.0);
                out[3] = erff(x);
                out[4] = powf(x, 2.0);
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::F64, 5);
        execute_launch(
            &k,
            LaunchConfig::new(1u32, 1u32),
            &[Arg::Buffer(out), Arg::float(1.5)],
            &mut pool,
        )
        .unwrap();
        let got = pool.read_f64(out);
        assert!((got[0] - 1.5f64.exp()).abs() < 1e-12);
        assert!((got[1] - 1.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(got[2], 2.0);
        assert!((got[3] - 0.9661051465).abs() < 1e-6);
        assert!((got[4] - 2.25).abs() < 1e-12);
    }

    #[test]
    fn arg_checking() {
        let k = parse_kernel(LISTING1).unwrap();
        let mut pool = MemPool::new();
        let b = pool.alloc(8);
        assert!(matches!(
            execute_block(
                &k,
                LaunchConfig::new(1u32, 1u32),
                0,
                &[Arg::Buffer(b)],
                &mut pool
            ),
            Err(ExecError::ArgCount {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            execute_block(
                &k,
                LaunchConfig::new(1u32, 1u32),
                0,
                &[Arg::int(1), Arg::Buffer(b), Arg::int(1)],
                &mut pool
            ),
            Err(ExecError::ArgKind { .. })
        ));
    }

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!((erf(3.0) - 0.9999779095).abs() < 2e-7);
    }
}
