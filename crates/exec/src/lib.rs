//! # cucc-exec — instrumented execution of kernel IR
//!
//! This crate gives operational semantics to the `cucc-ir` kernels. It is the
//! stand-in for CuPBoP's compiled output in the paper: one GPU **block**
//! executes as one CPU task, with the threads of the block run as an inner
//! loop (split into phases at `__syncthreads()` barriers, exactly the
//! loop-fission transformation of MCUDA/CuPBoP).
//!
//! Execution is **instrumented**: every block run produces a [`BlockStats`]
//! with dynamic operation and memory-traffic counts. The performance models
//! in `cucc-cluster` and `cucc-gpu-model` consume these counts, so simulated
//! runtimes are grounded in the real dynamic behaviour of each kernel rather
//! than hand-written estimates.
//!
//! Because GPU programs are SPMD, blocks are statistically identical; for
//! large launches [`profile_launch`] samples a few representative blocks and
//! extrapolates, which is how the figure harnesses scale to paper-sized
//! workloads without interpreting billions of operations.

pub mod interp;
pub mod memory;
pub mod stats;

pub use interp::{
    execute_block, execute_block_traced, execute_launch, profile_launch, Arg, ExecError,
    LaunchProfile, WriteRecord,
};
pub use memory::{BufferId, MemPool};
pub use stats::BlockStats;
