//! # cucc-exec — instrumented execution of kernel IR
//!
//! This crate gives operational semantics to the `cucc-ir` kernels. It is the
//! stand-in for CuPBoP's compiled output in the paper: one GPU **block**
//! executes as one CPU task, with the threads of the block run as an inner
//! loop (split into phases at `__syncthreads()` barriers, exactly the
//! loop-fission transformation of MCUDA/CuPBoP).
//!
//! Execution is **instrumented**: every block run produces a [`BlockStats`]
//! with dynamic operation and memory-traffic counts. The performance models
//! in `cucc-cluster` and `cucc-gpu-model` consume these counts, so simulated
//! runtimes are grounded in the real dynamic behaviour of each kernel rather
//! than hand-written estimates.
//!
//! Because GPU programs are SPMD, blocks are statistically identical; for
//! large launches [`profile_launch`] samples a few representative blocks and
//! extrapolates, which is how the figure harnesses scale to paper-sized
//! workloads without interpreting billions of operations.

//! The tree-walk interpreter in [`interp`] is the *reference* executor (and
//! differential-testing oracle); [`bytecode`] + [`engine`] compile a kernel
//! once per launch into a flat register-based instruction stream and run it
//! with a reusable per-run arena and optional intra-node block parallelism.
//! [`lane`] adds a third, vectorized tier on top of the same compiled
//! [`Program`]: batchable segments execute instruction-major over chunked
//! SoA lane-arrays with superinstruction fusion, falling back to the scalar
//! path elsewhere — bit-identical results, `EngineKind::Simd` to select it.

pub mod bytecode;
pub mod engine;
pub mod interp;
pub mod lane;
pub mod memory;
pub mod sanitize;
pub mod stats;

pub use bytecode::{CertMode, Program};
pub use engine::{execute_launch_bytecode, run_range, run_range_parallel, EngineKind, ExecOptions};
pub use interp::{
    execute_block, execute_block_range, execute_block_traced, execute_launch, profile_launch, Arg,
    ExecError, LaunchProfile, WriteRecord,
};
pub use lane::{execute_launch_simd, run_range_parallel_simd, run_range_simd};
pub use memory::{BufferId, MemPool};
pub use sanitize::{
    cross_validate_certs, sanitize_launch, OobFinding, RaceFinding, SanitizeReport,
};
pub use stats::BlockStats;
