//! Dynamic execution statistics.
//!
//! Every interpreted block produces a [`BlockStats`]; the cluster and GPU
//! performance models convert these counts into simulated time. Weights for
//! transcendental intrinsics approximate their cost in hardware units
//! relative to one fused multiply-add.

use std::ops::{Add, AddAssign};

/// Operation and traffic counters for one (or a sum of several) block
/// executions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockStats {
    /// Integer ALU operations (address arithmetic included).
    pub int_ops: u64,
    /// Floating-point operations, transcendental calls pre-weighted.
    pub float_ops: u64,
    /// Bytes read from global memory.
    pub global_read_bytes: u64,
    /// Bytes written to global memory (plain stores).
    pub global_write_bytes: u64,
    /// Number of individual load instructions from global memory.
    pub global_loads: u64,
    /// Number of individual store instructions to global memory.
    pub global_stores: u64,
    /// Bytes moved to/from shared memory.
    pub shared_bytes: u64,
    /// Bytes moved to/from per-thread local arrays.
    pub local_bytes: u64,
    /// Atomic read-modify-write operations on global memory.
    pub global_atomics: u64,
    /// `__syncthreads()` barriers crossed (per block, not per thread).
    pub barriers: u64,
    /// Number of threads that executed at least one statement.
    pub active_threads: u64,
    /// Number of blocks folded into this record.
    pub blocks: u64,
}

impl BlockStats {
    /// All-zero record.
    pub fn new() -> BlockStats {
        BlockStats::default()
    }

    /// Total dynamic operations (int + float).
    pub fn total_ops(&self) -> u64 {
        self.int_ops + self.float_ops
    }

    /// Total bytes of memory traffic across all spaces.
    pub fn total_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes + self.shared_bytes + self.local_bytes
    }

    /// Bytes of global traffic only (what a GPU's HBM or a CPU's DRAM sees,
    /// to first order).
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Arithmetic intensity: float ops per global byte (`inf` for
    /// traffic-free kernels).
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.global_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.float_ops as f64 / b as f64
        }
    }

    /// Emit this record onto a trace timeline as [`cucc_trace::OPS`],
    /// [`cucc_trace::GLOBAL_BYTES`] and [`cucc_trace::SHARED_BYTES`]
    /// counter samples at time `t` (zero-valued counters are skipped).
    pub fn emit_counters(&self, tl: &mut cucc_trace::Timeline, track: cucc_trace::Track, t: f64) {
        for (name, value) in [
            (cucc_trace::OPS, self.total_ops()),
            (cucc_trace::GLOBAL_BYTES, self.global_bytes()),
            (cucc_trace::SHARED_BYTES, self.shared_bytes),
        ] {
            if value > 0 {
                tl.counter(name, track, t, value);
            }
        }
    }

    /// Scale every counter by `k` — used to extrapolate a sampled block
    /// profile to a full launch.
    pub fn scaled(&self, k: u64) -> BlockStats {
        BlockStats {
            int_ops: self.int_ops * k,
            float_ops: self.float_ops * k,
            global_read_bytes: self.global_read_bytes * k,
            global_write_bytes: self.global_write_bytes * k,
            global_loads: self.global_loads * k,
            global_stores: self.global_stores * k,
            shared_bytes: self.shared_bytes * k,
            local_bytes: self.local_bytes * k,
            global_atomics: self.global_atomics * k,
            barriers: self.barriers * k,
            active_threads: self.active_threads * k,
            blocks: self.blocks * k,
        }
    }
}

impl Add for BlockStats {
    type Output = BlockStats;
    fn add(self, rhs: BlockStats) -> BlockStats {
        BlockStats {
            int_ops: self.int_ops + rhs.int_ops,
            float_ops: self.float_ops + rhs.float_ops,
            global_read_bytes: self.global_read_bytes + rhs.global_read_bytes,
            global_write_bytes: self.global_write_bytes + rhs.global_write_bytes,
            global_loads: self.global_loads + rhs.global_loads,
            global_stores: self.global_stores + rhs.global_stores,
            shared_bytes: self.shared_bytes + rhs.shared_bytes,
            local_bytes: self.local_bytes + rhs.local_bytes,
            global_atomics: self.global_atomics + rhs.global_atomics,
            barriers: self.barriers + rhs.barriers,
            active_threads: self.active_threads + rhs.active_threads,
            blocks: self.blocks + rhs.blocks,
        }
    }
}

impl AddAssign for BlockStats {
    fn add_assign(&mut self, rhs: BlockStats) {
        *self = *self + rhs;
    }
}

/// Cost weight of a transcendental intrinsic, in equivalent float ops.
pub fn intrinsic_weight(f: cucc_ir::Intrinsic) -> u64 {
    use cucc_ir::Intrinsic::*;
    match f {
        Exp | Log | Pow | Tanh | Erf => 20,
        Sin | Cos => 16,
        Sqrt | Rsqrt => 8,
        Floor | Ceil | Fabs | Fmin | Fmax | Min | Max | Abs => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let a = BlockStats {
            int_ops: 10,
            float_ops: 5,
            global_read_bytes: 64,
            global_write_bytes: 32,
            blocks: 1,
            ..BlockStats::default()
        };
        let b = a + a;
        assert_eq!(b.int_ops, 20);
        assert_eq!(b.blocks, 2);
        let c = a.scaled(3);
        assert_eq!(c.float_ops, 15);
        assert_eq!(c.global_bytes(), 288);
    }

    #[test]
    fn intensity() {
        let s = BlockStats {
            float_ops: 100,
            global_read_bytes: 40,
            global_write_bytes: 10,
            ..BlockStats::default()
        };
        assert!((s.arithmetic_intensity() - 2.0).abs() < 1e-12);
        let z = BlockStats::default();
        assert!(z.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn weights_monotone() {
        use cucc_ir::Intrinsic::*;
        assert!(intrinsic_weight(Exp) > intrinsic_weight(Sqrt));
        assert!(intrinsic_weight(Sqrt) > intrinsic_weight(Fabs));
    }
}
