//! Machine specifications — the paper's Table 1.
//!
//! | Name           | Nodes | Single node       | Year | Cores | TFLOPs | Net |
//! |----------------|-------|-------------------|------|-------|--------|-----|
//! | SIMD-Focused   | 32    | 2× Intel 6226     | 2019 | 24    | 4.15   | 100G IB |
//! | Thread-Focused | 4     | 2× AMD 7713       | 2021 | 128   | 8.19   | 100G IB |
//!
//! The CPU specs below reproduce those peak numbers from first principles
//! (cores × frequency × SIMD lanes × 2 FMA pipes × 2 flops/FMA).

use cucc_net::NetModel;
use serde::{Deserialize, Serialize};

/// One CPU node's capabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Usable cores per node (both sockets).
    pub cores: u32,
    /// Sustained all-core frequency in GHz.
    pub freq_ghz: f64,
    /// Single-precision SIMD lanes per FMA pipe (AVX-512 = 16, AVX2 = 8).
    pub simd_f32_lanes: u32,
    /// FMA pipes per core.
    pub fma_pipes: u32,
    /// Scalar instructions per cycle a migrated-GPU-thread loop sustains.
    pub scalar_ipc: f64,
    /// Node memory bandwidth, bytes/s (STREAM-class peak).
    pub mem_bw: f64,
    /// Last-level cache per node, bytes (paper §7.4: SIMD 19.25 MB,
    /// Thread 256 MB per socket).
    pub llc_bytes: u64,
    /// Aggregate LLC bandwidth, bytes/s — kernels whose per-node working
    /// set fits the LLC stream from cache, the effect §7.4 credits for
    /// Transpose beating the GPUs on the large-cache EPYC node.
    pub llc_bw: f64,
    /// Fraction of STREAM bandwidth that CuPBoP-style transformed code
    /// sustains on plain streaming access (thread-loop overheads, no
    /// non-temporal stores).
    pub dram_eff_streaming: f64,
    /// Fraction sustained by kernels that stage data through emulated
    /// shared-memory tiles (transpose-like reshaping): the scratchpad
    /// round-trips and tile-strided lines cut effective DRAM throughput
    /// hard — the reason the paper's single-CPU Transpose is slow enough
    /// for cluster scaling to pay (§7.2).
    pub dram_eff_staged: f64,
    /// Whether SIMD execution is enabled (the §8.2 ablation disables it).
    pub simd_enabled: bool,
}

impl CpuSpec {
    /// Dual Intel Xeon Gold 6226 (the SIMD-Focused node).
    pub fn xeon_gold_6226_dual() -> CpuSpec {
        CpuSpec {
            name: "2x Intel Xeon Gold 6226".into(),
            cores: 24,
            freq_ghz: 2.7,
            simd_f32_lanes: 16, // AVX-512
            fma_pipes: 2,
            scalar_ipc: 1.4,
            mem_bw: 140.0e9,
            llc_bytes: 2 * 19_250_000,
            llc_bw: 350.0e9,
            dram_eff_streaming: 0.5,
            dram_eff_staged: 0.05,
            simd_enabled: true,
        }
    }

    /// Dual AMD EPYC 7713 (the Thread-Focused node).
    pub fn epyc_7713_dual() -> CpuSpec {
        CpuSpec {
            name: "2x AMD EPYC 7713".into(),
            cores: 128,
            freq_ghz: 2.0,
            simd_f32_lanes: 8, // AVX2 datapath
            fma_pipes: 2,
            scalar_ipc: 2.0,
            mem_bw: 380.0e9,
            llc_bytes: 2 * 256_000_000,
            llc_bw: 1000.0e9,
            dram_eff_streaming: 0.5,
            dram_eff_staged: 0.05,
            simd_enabled: true,
        }
    }

    /// Effective memory bandwidth for a launch slice touching
    /// `working_set` bytes on this node. LLC-resident working sets stream
    /// from cache; DRAM-resident ones pay the transformed-code efficiency
    /// factor (streaming vs shared-memory-staged access patterns).
    pub fn effective_mem_bw(&self, working_set: u64, staged: bool) -> f64 {
        if working_set <= self.llc_bytes {
            self.llc_bw
        } else if staged {
            self.mem_bw * self.dram_eff_staged
        } else {
            self.mem_bw * self.dram_eff_streaming
        }
    }

    /// Theoretical peak single-precision FLOP/s of the node.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64
            * self.freq_ghz
            * 1e9
            * self.simd_f32_lanes as f64
            * self.fma_pipes as f64
            * 2.0 // two flops per FMA
    }

    /// Scalar operation throughput of one core (ops/s).
    pub fn scalar_ops_per_sec(&self) -> f64 {
        self.freq_ghz * 1e9 * self.scalar_ipc
    }

    /// Cap the usable cores (the §8.2 fair comparison limits the EPYC node
    /// to 64 cores).
    pub fn with_cores(mut self, cores: u32) -> CpuSpec {
        self.cores = cores;
        self
    }

    /// Disable SIMD execution (the §8.2 ablation).
    pub fn without_simd(mut self) -> CpuSpec {
        self.simd_enabled = false;
        self
    }
}

/// A whole CPU cluster: homogeneous nodes plus an interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster name as used in the paper.
    pub name: String,
    /// Number of nodes available.
    pub nodes: u32,
    /// Per-node CPU spec.
    pub cpu: CpuSpec,
    /// Interconnect model.
    pub net: NetModel,
    /// Multi-node load-imbalance/OS-jitter inefficiency: distributed phase
    /// makespans scale by `1 + jitter·(N−1)` (stragglers keep real strong
    /// scaling below ideal at large node counts).
    pub jitter: f64,
    /// Hardware generation (Table 1).
    pub year: u32,
}

impl ClusterSpec {
    /// The 32-node Intel cluster.
    pub fn simd_focused() -> ClusterSpec {
        ClusterSpec {
            name: "SIMD-Focused".into(),
            nodes: 32,
            cpu: CpuSpec::xeon_gold_6226_dual(),
            net: NetModel::infiniband_100g(),
            jitter: 0.01,
            year: 2019,
        }
    }

    /// The 4-node AMD cluster.
    pub fn thread_focused() -> ClusterSpec {
        ClusterSpec {
            name: "Thread-Focused".into(),
            nodes: 4,
            cpu: CpuSpec::epyc_7713_dual(),
            net: NetModel::infiniband_100g(),
            jitter: 0.01,
            year: 2021,
        }
    }

    /// Same cluster with a different node count (scalability sweeps).
    pub fn with_nodes(mut self, nodes: u32) -> ClusterSpec {
        self.nodes = nodes;
        self
    }

    /// Aggregate peak FLOP/s across all nodes.
    pub fn aggregate_flops(&self) -> f64 {
        self.nodes as f64 * self.cpu.peak_flops()
    }
}

/// Pretty-print Table 1 (consumed by the `table1` bench target).
pub fn table1_rows() -> Vec<(String, u32, String, u32, u32, f64, String)> {
    let s = ClusterSpec::simd_focused();
    let t = ClusterSpec::thread_focused();
    vec![
        (
            s.name.clone(),
            s.nodes,
            s.cpu.name.clone(),
            s.year,
            s.cpu.cores,
            s.cpu.peak_flops() / 1e12,
            "100 Gbps IB".into(),
        ),
        (
            t.name.clone(),
            t.nodes,
            t.cpu.name.clone(),
            t.year,
            t.cpu.cores,
            t.cpu.peak_flops() / 1e12,
            "100 Gbps IB".into(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_match_table1() {
        // Table 1: SIMD-Focused 4.15 TF, Thread-Focused 8.19 TF per node.
        let xeon = CpuSpec::xeon_gold_6226_dual();
        assert!(
            (xeon.peak_flops() / 1e12 - 4.15).abs() < 0.01,
            "{}",
            xeon.peak_flops()
        );
        let epyc = CpuSpec::epyc_7713_dual();
        assert!(
            (epyc.peak_flops() / 1e12 - 8.19).abs() < 0.01,
            "{}",
            epyc.peak_flops()
        );
    }

    #[test]
    fn sec82_core_cap_equalizes_capacity() {
        // §8.2: capping the EPYC node at 64 cores gives 4.096 TF vs the
        // Xeon's 4.147 TF.
        let capped = CpuSpec::epyc_7713_dual().with_cores(64);
        assert!((capped.peak_flops() / 1e12 - 4.096).abs() < 0.01);
    }

    #[test]
    fn cluster_presets() {
        let s = ClusterSpec::simd_focused();
        assert_eq!(s.nodes, 32);
        assert_eq!(s.cpu.cores, 24);
        let t = ClusterSpec::thread_focused();
        assert_eq!(t.nodes, 4);
        assert_eq!(t.cpu.cores, 128);
        assert!(t.aggregate_flops() > s.cpu.peak_flops());
    }

    #[test]
    fn table1_has_both_clusters() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "SIMD-Focused");
        assert_eq!(rows[1].4, 128);
    }

    #[test]
    fn ablation_flags() {
        let c = CpuSpec::xeon_gold_6226_dual().without_simd();
        assert!(!c.simd_enabled);
        let capped = CpuSpec::epyc_7713_dual().with_cores(64);
        assert_eq!(capped.cores, 64);
    }
}
