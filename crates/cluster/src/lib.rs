//! # cucc-cluster — simulated CPU cluster substrate
//!
//! The stand-in for the paper's physical evaluation clusters (Table 1):
//!
//! * [`specs`] — machine descriptions of the SIMD-Focused (32× dual Xeon
//!   6226) and Thread-Focused (4× dual EPYC 7713) clusters, with peak-FLOPs
//!   arithmetic that reproduces Table 1's numbers;
//! * [`compute`] — the node compute-time model (SIMD speedup × LPT core
//!   scheduling × memory-bandwidth floor) fed by instrumented
//!   [`cucc_exec::BlockStats`];
//! * [`cluster`] — [`SimCluster`]: per-node disjoint memories, parallel
//!   functional block execution, and byte-moving Allgather between nodes.

pub mod cluster;
pub mod compute;
pub mod specs;

pub use cluster::SimCluster;
pub use compute::{
    block_compute_time, lpt_makespan, node_makespan, node_time_profiled, simd_speedup,
};
pub use specs::{table1_rows, ClusterSpec, CpuSpec};
