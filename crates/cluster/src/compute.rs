//! Node compute-time model.
//!
//! Converts instrumented [`BlockStats`] into simulated execution time on a
//! [`CpuSpec`]. The model captures the effects the paper's evaluation turns
//! on:
//!
//! * **SIMD speedup** scales with the vectorizability efficiency from
//!   `cucc-analysis` and the node's lane width — this is what separates the
//!   SIMD-Focused and Thread-Focused clusters in Figure 13;
//! * **thread-level parallelism** schedules blocks over cores with an LPT
//!   makespan, so launches with fewer blocks than cores leave cores idle
//!   (the Kmeans 32-node slowdown of §7.2);
//! * a **memory-bandwidth floor** bounds memory-movement kernels like
//!   Transpose regardless of core count.

use crate::specs::CpuSpec;
use cucc_exec::BlockStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Effective speedup of vectorized execution on a CPU.
pub fn simd_speedup(cpu: &CpuSpec, simd_efficiency: f64) -> f64 {
    if !cpu.simd_enabled || simd_efficiency <= 0.0 {
        return 1.0;
    }
    1.0 + (cpu.simd_f32_lanes as f64 - 1.0) * simd_efficiency.clamp(0.0, 1.0)
}

/// Per-core cache-hierarchy bandwidth for shared/local scratchpad traffic.
const CACHE_BW_PER_CORE: f64 = 50.0e9;

/// Time for one core to execute one block (compute + private memory).
///
/// Global memory traffic is intentionally *not* charged here — it is a
/// node-level shared resource, accounted as a bandwidth floor in
/// [`node_makespan`].
pub fn block_compute_time(stats: &BlockStats, simd_efficiency: f64, cpu: &CpuSpec) -> f64 {
    let speedup = simd_speedup(cpu, simd_efficiency);
    let ops = (stats.int_ops + stats.float_ops) as f64;
    let ops_time = ops / (cpu.scalar_ops_per_sec() * speedup);
    let cache_time = (stats.shared_bytes + stats.local_bytes) as f64 / CACHE_BW_PER_CORE;
    ops_time + cache_time
}

/// LPT makespan of a set of block times over `cores` cores, with a global
/// memory-bandwidth floor (LLC-aware, access-pattern-aware — see
/// [`CpuSpec::effective_mem_bw`]).
pub fn node_makespan(block_times: &[f64], global_bytes: u64, staged: bool, cpu: &CpuSpec) -> f64 {
    let cores = cpu.cores.max(1) as usize;
    let makespan = lpt_makespan(block_times, cores);
    let bw_floor = if global_bytes == 0 {
        0.0
    } else {
        global_bytes as f64 / cpu.effective_mem_bw(global_bytes, staged)
    };
    makespan.max(bw_floor)
}

/// Longest-processing-time-first makespan over `cores` identical machines.
pub fn lpt_makespan(times: &[f64], cores: usize) -> f64 {
    if times.is_empty() || cores == 0 {
        return 0.0;
    }
    // Fast path: all-equal times (the common SPMD case) have a closed form.
    let first = times[0];
    if times.iter().all(|t| *t == first) {
        let waves = times.len().div_ceil(cores);
        return waves as f64 * first;
    }
    let mut sorted: Vec<f64> = times.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    // Min-heap of core loads, scaled to integers for Ord.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..cores).map(|i| Reverse((0u64, i))).collect();
    let mut loads = vec![0.0f64; cores];
    const SCALE: f64 = 1e15;
    for t in sorted {
        let Reverse((_, idx)) = heap.pop().unwrap();
        loads[idx] += t;
        heap.push(Reverse(((loads[idx] * SCALE) as u64, idx)));
    }
    loads.iter().copied().fold(0.0, f64::max)
}

/// Convenience: node time for a launch slice described by a profile —
/// `full_blocks` identical blocks plus an optional lighter tail block.
pub fn node_time_profiled(
    full_block_time: f64,
    full_blocks: u64,
    tail_block_time: Option<f64>,
    global_bytes: u64,
    staged: bool,
    cpu: &CpuSpec,
) -> f64 {
    let cores = cpu.cores.max(1) as u64;
    // Closed-form LPT for identical blocks + one optional tail block: the
    // tail lands on the least-loaded core.
    let mut makespan = full_blocks.div_ceil(cores) as f64 * full_block_time;
    if let Some(tail) = tail_block_time {
        makespan = if full_blocks % cores == 0 {
            // All cores equally loaded (possibly zero): tail extends one.
            makespan + tail
        } else {
            // Some core has one wave less; the tail rides there.
            makespan.max((full_blocks / cores) as f64 * full_block_time + tail)
        };
    }
    let bw_floor = if global_bytes == 0 {
        0.0
    } else {
        global_bytes as f64 / cpu.effective_mem_bw(global_bytes, staged)
    };
    makespan.max(bw_floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::CpuSpec;

    fn stats(int_ops: u64, float_ops: u64) -> BlockStats {
        BlockStats {
            int_ops,
            float_ops,
            blocks: 1,
            ..BlockStats::default()
        }
    }

    #[test]
    fn simd_speedup_respects_ablation() {
        let xeon = CpuSpec::xeon_gold_6226_dual();
        assert!((simd_speedup(&xeon, 1.0) - 16.0).abs() < 1e-9);
        assert_eq!(simd_speedup(&xeon, 0.0), 1.0);
        let off = xeon.without_simd();
        assert_eq!(simd_speedup(&off, 1.0), 1.0);
    }

    #[test]
    fn vectorizable_block_is_faster() {
        let xeon = CpuSpec::xeon_gold_6226_dual();
        let s = stats(1000, 9000);
        let scalar = block_compute_time(&s, 0.0, &xeon);
        let vector = block_compute_time(&s, 0.9, &xeon);
        assert!(scalar / vector > 10.0, "{scalar} vs {vector}");
    }

    #[test]
    fn wide_simd_gap_disappears_for_scalar_kernels() {
        // Thread-Focused wins for scalar code despite fewer lanes: the
        // per-core difference is frequency only.
        let xeon = CpuSpec::xeon_gold_6226_dual();
        let epyc = CpuSpec::epyc_7713_dual();
        let s = stats(5000, 5000);
        let tx = block_compute_time(&s, 0.0, &xeon);
        let te = block_compute_time(&s, 0.0, &epyc);
        // Per-core they are close (Zen 3's higher IPC on transformed
        // scalar code roughly offsets the Xeon's clock)...
        assert!((tx / te - 1.0).abs() < 0.2, "tx={tx} te={te}");
        // ...but per-node the 128-core EPYC crushes it.
        let times = vec![tx; 1024];
        let times_e = vec![te; 1024];
        assert!(
            node_makespan(&times_e, 0, false, &epyc) < node_makespan(&times, 0, false, &xeon) / 3.0
        );
    }

    #[test]
    fn lpt_waves_for_identical_blocks() {
        // 313 identical blocks on 24 cores → 14 waves.
        let times = vec![1.0; 313];
        let m = lpt_makespan(&times, 24);
        assert!((m - 14.0).abs() < 1e-9);
        // 13 waves × 24 = 312 < 313.
        assert_eq!(313f64.div_euclid(24.0) as u64 + 1, 14);
    }

    #[test]
    fn lpt_heterogeneous_reasonable() {
        // One long block dominates.
        let mut times = vec![1.0; 10];
        times.push(20.0);
        let m = lpt_makespan(&times, 4);
        assert!((20.0..21.0 + 1e-9).contains(&m), "{m}");
    }

    #[test]
    fn bandwidth_floor_binds_memory_kernels() {
        let xeon = CpuSpec::xeon_gold_6226_dual();
        // 14 GB streaming at 140 GB/s x 0.5 efficiency = 0.2 s floor.
        let t = node_makespan(&[1e-9; 8], 14_000_000_000, false, &xeon);
        assert!((t - 0.2).abs() < 1e-6);
        // Staged (shared-memory-tiled) access is dramatically slower...
        let staged = node_makespan(&[1e-9; 8], 14_000_000_000, true, &xeon);
        assert!(staged > 5.0 * t);
        // ...but LLC-resident working sets stream from cache.
        let cached = node_makespan(&[1e-9; 8], 10_000_000, true, &xeon);
        assert!(cached < 1e-3);
    }

    #[test]
    fn fewer_blocks_than_cores_wastes_cores() {
        let nine = vec![1.0; 9];
        // 128 cores, as on the dual-socket EPYC 7713.
        let m = lpt_makespan(&nine, 128);
        // Nine blocks on 128 cores take as long as one block.
        assert_eq!(m, 1.0);
    }

    #[test]
    fn profiled_matches_explicit_lpt() {
        let xeon = CpuSpec::xeon_gold_6226_dual();
        let full = 2e-3;
        let explicit: Vec<f64> = vec![full; 50];
        let a = node_makespan(&explicit, 0, false, &xeon);
        let b = node_time_profiled(full, 50, None, 0, false, &xeon);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn profiled_with_tail() {
        let xeon = CpuSpec::xeon_gold_6226_dual(); // 24 cores
                                                   // 24 full blocks + tail: tail starts wave 2.
        let t = node_time_profiled(1.0, 24, Some(0.5), 0, false, &xeon);
        assert!((t - 1.5).abs() < 1e-9);
        // 20 full + tail on 24 cores: everything in one wave.
        let t = node_time_profiled(1.0, 20, Some(0.5), 0, false, &xeon);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
