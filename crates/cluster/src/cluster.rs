//! The simulated CPU cluster: distributed node memories and parallel
//! functional execution.
//!
//! Each node owns a genuinely separate [`MemPool`] — there is no shared
//! memory between nodes, exactly like the paper's distributed memory model
//! (§2.1.2). Any consistency the runtime achieves must be achieved by the
//! collectives in `cucc-net` really copying bytes between pools, which is
//! what makes the end-to-end correctness tests meaningful.
//!
//! Functional block execution is multithreaded with scoped threads: one OS
//! thread per simulated node (safe because pools are disjoint).

use crate::specs::ClusterSpec;
use cucc_exec::{
    execute_block_range, run_range, run_range_parallel, run_range_parallel_simd, run_range_simd,
    Arg, BlockStats, BufferId, EngineKind, ExecError, ExecOptions, MemPool, Program,
};
use cucc_ir::{Kernel, LaunchConfig};
use cucc_net::{
    allgather, allgather_traced, partial_gather_traced, AllgatherAlgo, AllgatherPlacement,
    CollectiveCost, GatherSegment,
};
use std::ops::Range;

/// A simulated CPU cluster.
#[derive(Debug, Clone)]
pub struct SimCluster {
    /// Hardware description.
    pub spec: ClusterSpec,
    pools: Vec<MemPool>,
}

impl SimCluster {
    /// Build a cluster with `spec.nodes` empty node memories.
    pub fn new(spec: ClusterSpec) -> SimCluster {
        let pools = (0..spec.nodes).map(|_| MemPool::new()).collect();
        SimCluster { spec, pools }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.pools.len()
    }

    /// Allocate a buffer of `bytes` on **every** node (lockstep, same id),
    /// mirroring `cudaMalloc` replicated across the cluster.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        let mut id = None;
        for p in &mut self.pools {
            let this = p.alloc(bytes);
            match id {
                None => id = Some(this),
                Some(prev) => assert_eq!(prev, this, "lockstep allocation diverged"),
            }
        }
        id.expect("cluster has at least one node")
    }

    /// Copy host data into the buffer on every node (host-to-device
    /// broadcast; the time cost is charged by the runtime layer).
    pub fn write_all(&mut self, id: BufferId, data: &[u8]) {
        for p in &mut self.pools {
            p.write_all(id, data);
        }
    }

    /// Read the buffer from one node.
    pub fn read(&self, node: usize, id: BufferId) -> &[u8] {
        self.pools[node].bytes(id)
    }

    /// Grow the cluster by one node whose memory starts as a byte-for-byte
    /// clone of node `src`'s pool — the state transfer a joining node
    /// receives over the wire (the time cost is charged by the runtime
    /// layer). Returns the new node's id.
    pub fn add_node_from(&mut self, src: usize) -> usize {
        let pool = self.pools[src].clone();
        self.pools.push(pool);
        self.spec.nodes = self.pools.len() as u32;
        self.pools.len() - 1
    }

    /// Overwrite node `dst`'s memory with a byte-for-byte clone of node
    /// `src`'s pool — the state transfer a *reviving* node receives (its
    /// pool contents are stale from before it died).
    pub fn copy_node_state(&mut self, src: usize, dst: usize) {
        assert_ne!(src, dst, "state transfer needs two distinct nodes");
        self.pools[dst] = self.pools[src].clone();
    }

    /// Immutable access to a node memory.
    pub fn node(&self, i: usize) -> &MemPool {
        &self.pools[i]
    }

    /// Mutable access to a node memory.
    pub fn node_mut(&mut self, i: usize) -> &mut MemPool {
        &mut self.pools[i]
    }

    /// Worker threads one node may use for intra-node block parallelism
    /// under `opts`, given how many node threads run concurrently and how
    /// many blocks the node has. Conservative: 1 unless the caller opted in
    /// via [`ExecOptions::block_parallel`], never more than the simulated
    /// node's core count, and never so many that workers get fewer than a
    /// handful of blocks each.
    fn intra_node_workers(&self, opts: &ExecOptions, nodes_running: usize, nblocks: u64) -> usize {
        if !opts.block_parallel {
            return 1;
        }
        let req = if opts.node_threads > 0 {
            opts.node_threads
        } else {
            let avail = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (avail / nodes_running.max(1)).clamp(1, self.spec.cpu.cores as usize)
        };
        req.min((nblocks / 4).max(1) as usize).max(1)
    }

    /// Execute a contiguous range of blocks on one node (ascending block
    /// id, default [`ExecOptions`]). Returns accumulated stats.
    pub fn run_blocks(
        &mut self,
        node: usize,
        kernel: &Kernel,
        launch: LaunchConfig,
        blocks: Range<u64>,
        args: &[Arg],
    ) -> Result<BlockStats, ExecError> {
        self.run_blocks_opts(node, kernel, launch, blocks, args, &ExecOptions::default())
    }

    /// [`SimCluster::run_blocks`] with explicit executor options.
    pub fn run_blocks_opts(
        &mut self,
        node: usize,
        kernel: &Kernel,
        launch: LaunchConfig,
        blocks: Range<u64>,
        args: &[Arg],
        opts: &ExecOptions,
    ) -> Result<BlockStats, ExecError> {
        match opts.engine {
            EngineKind::TreeWalk => {
                execute_block_range(kernel, launch, blocks, args, &mut self.pools[node])
            }
            EngineKind::Bytecode => {
                let prog = Program::compile(kernel, launch, args)?;
                let nblocks = blocks.end.saturating_sub(blocks.start);
                let workers = self.intra_node_workers(opts, 1, nblocks);
                run_range_parallel(&prog, &mut self.pools[node], blocks, workers)
            }
            EngineKind::Simd => {
                let prog = Program::compile(kernel, launch, args)?;
                let nblocks = blocks.end.saturating_sub(blocks.start);
                let workers = self.intra_node_workers(opts, 1, nblocks);
                run_range_parallel_simd(&prog, &mut self.pools[node], blocks, workers)
            }
        }
    }

    /// Execute per-node block ranges **in parallel** (one thread per node,
    /// default [`ExecOptions`]).
    ///
    /// `assignments[i]` is the block range node `i` executes. Ranges need
    /// not be disjoint — callback phases intentionally run the same blocks
    /// everywhere.
    pub fn run_blocks_parallel(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        assignments: &[Range<u64>],
        args: &[Arg],
    ) -> Result<Vec<BlockStats>, ExecError> {
        self.run_blocks_parallel_opts(kernel, launch, assignments, args, &ExecOptions::default())
    }

    /// [`SimCluster::run_blocks_parallel`] with explicit executor options.
    /// On the bytecode path the kernel is compiled **once** and the program
    /// shared read-only by every node thread.
    pub fn run_blocks_parallel_opts(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        assignments: &[Range<u64>],
        args: &[Arg],
        opts: &ExecOptions,
    ) -> Result<Vec<BlockStats>, ExecError> {
        assert_eq!(assignments.len(), self.pools.len());
        match opts.engine {
            EngineKind::TreeWalk => {
                let mut results: Vec<Result<BlockStats, ExecError>> = Vec::new();
                std::thread::scope(|s| {
                    let handles: Vec<_> = self
                        .pools
                        .iter_mut()
                        .zip(assignments.iter().cloned())
                        .map(|(pool, range)| {
                            s.spawn(move || execute_block_range(kernel, launch, range, args, pool))
                        })
                        .collect();
                    for h in handles {
                        results.push(h.join().expect("node thread panicked"));
                    }
                });
                results.into_iter().collect()
            }
            EngineKind::Bytecode | EngineKind::Simd => {
                let prog = Program::compile(kernel, launch, args)?;
                self.run_program_parallel(&prog, assignments, opts)
            }
        }
    }

    /// Execute per-node block ranges of an already-compiled [`Program`] in
    /// parallel (one thread per node, each optionally fanning out across
    /// intra-node workers). Compile once per launch, then reuse the program
    /// for every phase that shares the launch — this is the engine's
    /// compile-once contract.
    pub fn run_program_parallel(
        &mut self,
        prog: &Program,
        assignments: &[Range<u64>],
        opts: &ExecOptions,
    ) -> Result<Vec<BlockStats>, ExecError> {
        assert_eq!(assignments.len(), self.pools.len());
        let nodes_running = assignments.iter().filter(|r| !r.is_empty()).count();
        let workers: Vec<usize> = assignments
            .iter()
            .map(|r| {
                let nblocks = r.end.saturating_sub(r.start);
                self.intra_node_workers(opts, nodes_running, nblocks)
            })
            .collect();
        let simd = opts.engine == EngineKind::Simd;
        let mut results: Vec<Result<BlockStats, ExecError>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .pools
                .iter_mut()
                .zip(assignments.iter().cloned())
                .zip(workers.iter().copied())
                .map(|((pool, range), w)| {
                    s.spawn(move || match (simd, w) {
                        (false, 0..=1) => run_range(prog, pool, range),
                        (false, _) => run_range_parallel(prog, pool, range, w),
                        (true, 0..=1) => run_range_simd(prog, pool, range),
                        (true, _) => run_range_parallel_simd(prog, pool, range, w),
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("node thread panicked"));
            }
        });
        results.into_iter().collect()
    }

    /// Balanced Allgather over the byte region
    /// `[base, base + nodes·unit)` of `buf`: node `i` contributes
    /// `[base + i·unit, base + (i+1)·unit)`. Moves real bytes between the
    /// node pools and returns the network cost.
    pub fn allgather_region(
        &mut self,
        buf: BufferId,
        base: u64,
        unit: u64,
        algo: AllgatherAlgo,
        placement: AllgatherPlacement,
    ) -> CollectiveCost {
        let n = self.pools.len();
        let lo = base as usize;
        let hi = lo + unit as usize * n;
        let mut views: Vec<&mut [u8]> = self
            .pools
            .iter_mut()
            .map(|p| &mut p.bytes_mut(buf)[lo..hi])
            .collect();
        allgather(&mut views, &vec![unit; n], &self.spec.net, algo, placement)
    }

    /// [`SimCluster::allgather_region`] restricted to a survivor subset:
    /// the gather runs over `nodes` (physical node indices, ascending)
    /// only, each contributing `unit` bytes, and dead pools are left
    /// untouched. With `nodes` covering every node this is exactly
    /// [`SimCluster::allgather_region`].
    pub fn allgather_region_among(
        &mut self,
        buf: BufferId,
        base: u64,
        unit: u64,
        nodes: &[usize],
        algo: AllgatherAlgo,
        placement: AllgatherPlacement,
    ) -> CollectiveCost {
        let m = nodes.len();
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "ascending indices");
        let lo = base as usize;
        let hi = lo + unit as usize * m;
        let mut views: Vec<&mut [u8]> = self
            .pools
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| nodes.contains(i))
            .map(|(_, p)| &mut p.bytes_mut(buf)[lo..hi])
            .collect();
        allgather(&mut views, &vec![unit; m], &self.spec.net, algo, placement)
    }

    /// [`SimCluster::allgather_region`] that also records the collective
    /// (parent span, per-step children, wire-byte counters) into `tl`
    /// starting at absolute simulated time `t0`.
    #[allow(clippy::too_many_arguments)]
    pub fn allgather_region_traced(
        &mut self,
        buf: BufferId,
        base: u64,
        unit: u64,
        algo: AllgatherAlgo,
        placement: AllgatherPlacement,
        tl: &mut cucc_trace::Timeline,
        t0: f64,
        label: &str,
    ) -> CollectiveCost {
        let n = self.pools.len();
        let lo = base as usize;
        let hi = lo + unit as usize * n;
        let mut views: Vec<&mut [u8]> = self
            .pools
            .iter_mut()
            .map(|p| &mut p.bytes_mut(buf)[lo..hi])
            .collect();
        allgather_traced(
            &mut views,
            &vec![unit; n],
            &self.spec.net,
            algo,
            placement,
            tl,
            t0,
            label,
        )
    }

    /// Partial gather over the byte region `[base, base + len)` of `buf`:
    /// every segment (byte ranges **relative to `base`**, each authoritative
    /// on its owner node) ends up on every node, and the collective is
    /// recorded into `tl` at `t0`. This is how the graph communication
    /// optimizer narrows an elided Allgather to the uncovered sub-ranges.
    #[allow(clippy::too_many_arguments)]
    pub fn partial_gather_region_traced(
        &mut self,
        buf: BufferId,
        base: u64,
        len: u64,
        segments: &[GatherSegment],
        algo: AllgatherAlgo,
        placement: AllgatherPlacement,
        tl: &mut cucc_trace::Timeline,
        t0: f64,
        label: &str,
    ) -> CollectiveCost {
        let lo = base as usize;
        let hi = lo + len as usize;
        let mut views: Vec<&mut [u8]> = self
            .pools
            .iter_mut()
            .map(|p| &mut p.bytes_mut(buf)[lo..hi])
            .collect();
        partial_gather_traced(
            &mut views,
            segments,
            &self.spec.net,
            algo,
            placement,
            tl,
            t0,
            label,
        )
    }

    /// True when every node holds identical contents for `buf` (consistency
    /// check used pervasively by tests).
    pub fn consistent(&self, buf: BufferId) -> bool {
        let first = self.pools[0].bytes(buf);
        self.pools.iter().skip(1).all(|p| p.bytes(buf) == first)
    }

    /// True when *all* buffers are identical on all nodes.
    pub fn fully_consistent(&self) -> bool {
        (0..self.pools[0].len() as u32).all(|i| self.consistent(BufferId(i)))
    }

    /// [`SimCluster::consistent`] restricted to a node subset — dead nodes'
    /// stale memory is exempt from the lockstep invariant.
    pub fn consistent_among(&self, buf: BufferId, nodes: &[usize]) -> bool {
        let Some(&first) = nodes.first() else {
            return true;
        };
        let first = self.pools[first].bytes(buf);
        nodes
            .iter()
            .skip(1)
            .all(|&i| self.pools[i].bytes(buf) == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::ClusterSpec;
    use cucc_ir::parse_kernel;
    use cucc_ir::Scalar;

    fn small_cluster(n: u32) -> SimCluster {
        SimCluster::new(ClusterSpec::simd_focused().with_nodes(n))
    }

    #[test]
    fn survivor_subset_gather_skips_dead_pools() {
        let mut c = small_cluster(4);
        let b = c.alloc(16);
        let survivors = [0usize, 1, 3];
        for (slot, &node) in survivors.iter().enumerate() {
            let lo = slot * 4;
            c.node_mut(node).bytes_mut(b)[lo..lo + 4].fill(0x10 + node as u8);
        }
        c.allgather_region_among(
            b,
            0,
            4,
            &survivors,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );
        let want: Vec<u8> = [0x10u8, 0x11, 0x13]
            .iter()
            .flat_map(|&v| [v; 4])
            .chain([0; 4])
            .collect();
        for &node in &survivors {
            assert_eq!(c.read(node, b), &want[..], "node {node}");
        }
        // The dead pool kept its zeros, so full consistency fails but the
        // survivor-restricted check passes.
        assert_eq!(c.read(2, b), &[0u8; 16]);
        assert!(!c.consistent(b));
        assert!(c.consistent_among(b, &survivors));
        assert!(c.consistent_among(b, &[]));
    }

    #[test]
    fn lockstep_alloc_and_broadcast() {
        let mut c = small_cluster(4);
        let b = c.alloc(16);
        c.write_all(b, &[7u8; 16]);
        assert!(c.consistent(b));
        assert_eq!(c.read(3, b), &[7u8; 16]);
    }

    #[test]
    fn disjoint_partial_execution_desyncs_then_allgather_fixes() {
        // The essence of the three-phase workflow at cluster level.
        let k = parse_kernel(
            "__global__ void fill(int* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id] = id + 1;
            }",
        )
        .unwrap();
        let mut c = small_cluster(4);
        let out = c.alloc(4 * 64 * 4); // 4 blocks × 64 threads × i32
        let launch = LaunchConfig::new(4u32, 64u32);
        let args = [Arg::Buffer(out)];
        // Node i executes block i only.
        let assignments: Vec<_> = (0..4u64).map(|i| i..i + 1).collect();
        c.run_blocks_parallel(&k, launch, &assignments, &args)
            .unwrap();
        assert!(!c.consistent(out), "nodes must have diverged");
        let cost = c.allgather_region(
            out,
            0,
            64 * 4,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );
        assert!(c.consistent(out), "allgather restores consistency");
        assert!(cost.time > 0.0);
        let got = c.node(0).read_i32(out);
        let want: Vec<i32> = (1..=256).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn replicated_execution_stays_consistent() {
        let k = parse_kernel(
            "__global__ void fill(int* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id] = id * 3;
            }",
        )
        .unwrap();
        let mut c = small_cluster(3);
        let out = c.alloc(2 * 32 * 4);
        let launch = LaunchConfig::new(2u32, 32u32);
        // Every node runs every block.
        let assignments = vec![0..2u64, 0..2, 0..2];
        c.run_blocks_parallel(&k, launch, &assignments, &[Arg::Buffer(out)])
            .unwrap();
        assert!(c.fully_consistent());
    }

    #[test]
    fn parallel_matches_sequential() {
        let k = parse_kernel(
            "__global__ void sq(float* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = (float)(id) * (float)(id);
            }",
        )
        .unwrap();
        let n = 1000u64;
        let launch = LaunchConfig::cover1(n, 128);
        let mut c1 = small_cluster(2);
        let b1 = c1.alloc(n as usize * 4);
        let args1 = [Arg::Buffer(b1), Arg::int(n as i64)];
        let half = launch.num_blocks() / 2;
        c1.run_blocks_parallel(&k, launch, &[0..half, half..launch.num_blocks()], &args1)
            .unwrap();

        let mut c2 = small_cluster(2);
        let b2 = c2.alloc(n as usize * 4);
        let args2 = [Arg::Buffer(b2), Arg::int(n as i64)];
        c2.run_blocks(0, &k, launch, 0..half, &args2).unwrap();
        c2.run_blocks(1, &k, launch, half..launch.num_blocks(), &args2)
            .unwrap();

        assert_eq!(c1.read(0, b1), c2.read(0, b2));
        assert_eq!(c1.read(1, b1), c2.read(1, b2));
    }

    #[test]
    fn exec_error_propagates_from_node_thread() {
        let k = parse_kernel("__global__ void k(int* out) { out[threadIdx.x] = 1; }").unwrap();
        let mut c = small_cluster(2);
        let out = c.alloc(4); // 1 element, 4 threads → OOB
        let err = c
            .run_blocks_parallel(
                &k,
                LaunchConfig::new(1u32, 4u32),
                &[0..1, 0..1],
                &[Arg::Buffer(out)],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn allgather_with_base_offset() {
        let mut c = small_cluster(2);
        let b = c.alloc(16);
        // Node 0 owns bytes [4..8), node 1 owns [8..12).
        c.node_mut(0).bytes_mut(b)[4..8].copy_from_slice(&[1, 2, 3, 4]);
        c.node_mut(1).bytes_mut(b)[8..12].copy_from_slice(&[5, 6, 7, 8]);
        c.allgather_region(b, 4, 4, AllgatherAlgo::Ring, AllgatherPlacement::InPlace);
        for node in 0..2 {
            assert_eq!(&c.read(node, b)[4..12], &[1, 2, 3, 4, 5, 6, 7, 8]);
        }
        // Bytes outside the region untouched.
        assert_eq!(&c.read(0, b)[0..4], &[0, 0, 0, 0]);
    }

    #[test]
    fn engines_and_intra_node_parallelism_agree() {
        let k = parse_kernel(
            "__global__ void sq(float* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = (float)(id) * (float)(id);
            }",
        )
        .unwrap();
        let n = 4096u64;
        let launch = LaunchConfig::cover1(n, 64);
        let assignments = vec![
            0..launch.num_blocks() / 2,
            launch.num_blocks() / 2..launch.num_blocks(),
        ];
        let run = |opts: &ExecOptions| {
            let mut c = small_cluster(2);
            let b = c.alloc(n as usize * 4);
            let args = [Arg::Buffer(b), Arg::int(n as i64)];
            let stats = c
                .run_blocks_parallel_opts(&k, launch, &assignments, &args, opts)
                .unwrap();
            (stats, c.read(0, b).to_vec(), c.read(1, b).to_vec())
        };
        let tree = run(&ExecOptions {
            engine: EngineKind::TreeWalk,
            ..ExecOptions::default()
        });
        let byte = run(&ExecOptions {
            engine: EngineKind::Bytecode,
            ..ExecOptions::default()
        });
        let par = run(&ExecOptions {
            engine: EngineKind::Bytecode,
            node_threads: 4,
            block_parallel: true,
        });
        assert_eq!(tree, byte, "bytecode engine diverged from tree-walk");
        assert_eq!(tree, par, "intra-node parallel run diverged");
    }

    #[test]
    fn typed_helpers_via_node_pools() {
        let mut c = small_cluster(2);
        let b = c.alloc(8);
        c.node_mut(1).write_f32(b, &[1.0, 2.0]);
        assert_eq!(c.node(1).read_f32(b), vec![1.0, 2.0]);
        assert_eq!(c.node(0).read_f32(b), vec![0.0, 0.0]);
        let _ = Scalar::F32;
    }
}
