//! Collective communication: Allgather (the workhorse of the CuCC
//! workflow), barrier and broadcast.
//!
//! The Allgather implementations *really move the bytes* between the
//! per-node regions — the cluster simulator's memory consistency is
//! established by these copies, not by fiat — while the returned
//! [`CollectiveCost`] charges the LogGP model with the step structure of the
//! real algorithm (ring, recursive doubling, Bruck).
//!
//! Placement and balance follow the paper's §2.3 taxonomy: **in-place**
//! Allgather reuses one buffer (node `i`'s segment is already at offset
//! `i·unit`); **out-of-place** needs a staging copy and double memory.
//! **Balanced** Allgather (equal segments) beats imbalanced because every
//! ring step is gated by the largest segment in flight.

use crate::model::NetModel;
use serde::{Deserialize, Serialize};

/// Allgather algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllgatherAlgo {
    /// `N−1` neighbour steps; bandwidth-optimal, latency `O(N)`.
    Ring,
    /// `log₂N` exchange steps; requires a power-of-two node count
    /// (falls back to Bruck otherwise).
    RecursiveDoubling,
    /// `⌈log₂N⌉` steps for arbitrary `N`.
    Bruck,
}

/// Buffer placement (paper §2.3, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllgatherPlacement {
    /// Input and output share the buffer; no staging copy.
    InPlace,
    /// Separate input buffer: staging copy + double memory.
    OutOfPlace,
}

/// Accumulated cost of one collective.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CollectiveCost {
    /// Simulated wall-clock seconds.
    pub time: f64,
    /// Total bytes that crossed the wire (all nodes).
    pub wire_bytes: u64,
    /// Total messages sent (all nodes).
    pub messages: u64,
    /// Bytes moved by local staging copies.
    pub local_copy_bytes: u64,
    /// Peak memory multiplier (2 for out-of-place, 1 for in-place).
    pub peak_memory_factor: u32,
}

/// One synchronous step of a collective (all nodes exchange concurrently;
/// the step is gated by its largest transfer). The step breakdown feeds
/// the trace timeline; [`CollectiveCost`] stays the authoritative total.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CollectiveStep {
    /// Simulated seconds this step takes (latency + gating transfer).
    pub time: f64,
    /// Bytes all nodes put on the wire during this step.
    pub wire_bytes: u64,
    /// Messages sent during this step.
    pub messages: u64,
}

/// Duration of one synchronous collective step gated by a `bytes`-sized
/// transfer: `α + o + bytes·β`.
///
/// This is THE step-time formula — every full- and partial-gather step
/// (functional, analytic, and traced) charges through here, and the
/// fault path's per-step deadline ([`crate::fault::RetryPolicy::deadline`])
/// is defined on top of it. Keep it in one place so the two gather
/// families can never drift apart.
#[inline]
pub fn collective_step_time(model: &NetModel, bytes: u64) -> f64 {
    model.alpha + model.overhead + bytes as f64 * model.beta
}

/// Perform an Allgather over per-node regions.
///
/// `regions[i]` is node `i`'s copy of the full gathered region; before the
/// call node `i`'s authoritative data sits in its own segment (byte range
/// `[offset(i), offset(i)+seg_sizes[i])` with offsets the prefix sums).
/// After the call every region holds every segment. Balanced operation is
/// the special case of equal `seg_sizes`.
///
/// # Panics
/// Panics if regions have differing lengths or are smaller than the sum of
/// segments.
pub fn allgather(
    regions: &mut [&mut [u8]],
    seg_sizes: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
) -> CollectiveCost {
    allgather_with_steps(regions, seg_sizes, model, algo, placement, &mut Vec::new())
}

/// [`allgather`] that additionally records the per-step breakdown into
/// `steps` (one entry per synchronous exchange round). Used by the traced
/// wrappers in [`crate::traced`]; the cost accounting is identical.
pub fn allgather_with_steps(
    regions: &mut [&mut [u8]],
    seg_sizes: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    steps: &mut Vec<CollectiveStep>,
) -> CollectiveCost {
    let n = regions.len();
    assert_eq!(n, seg_sizes.len(), "one segment size per node");
    assert!(n > 0, "empty cluster");
    let total: u64 = seg_sizes.iter().sum();
    for r in regions.iter() {
        assert!(
            r.len() as u64 >= total,
            "region too small: {} < {total}",
            r.len()
        );
    }
    let offsets: Vec<u64> = seg_sizes
        .iter()
        .scan(0u64, |acc, s| {
            let o = *acc;
            *acc += s;
            Some(o)
        })
        .collect();

    let mut cost = match (algo, n) {
        (_, 1) => CollectiveCost::default(),
        (AllgatherAlgo::Ring, _) => ring(regions, seg_sizes, &offsets, model, steps),
        (AllgatherAlgo::RecursiveDoubling, _) if n.is_power_of_two() => {
            recursive_doubling(regions, seg_sizes, &offsets, model, steps)
        }
        (AllgatherAlgo::RecursiveDoubling, _) | (AllgatherAlgo::Bruck, _) => {
            bruck(regions, seg_sizes, &offsets, model, steps)
        }
    };
    match placement {
        AllgatherPlacement::InPlace => {
            cost.peak_memory_factor = 1;
        }
        AllgatherPlacement::OutOfPlace => {
            // Each node stages its own segment from the input buffer into
            // the output buffer; the slowest node gates completion.
            let max_seg = seg_sizes.iter().copied().max().unwrap_or(0);
            cost.time += model.local_copy_time(max_seg);
            cost.local_copy_bytes += total;
            cost.peak_memory_factor = 2;
        }
    }
    cost
}

fn copy_segment(regions: &mut [&mut [u8]], src: usize, dst: usize, lo: usize, hi: usize) {
    if src == dst || lo == hi {
        return;
    }
    // Split-borrow the two node regions.
    let (a, b) = if src < dst {
        let (left, right) = regions.split_at_mut(dst);
        (&left[src][lo..hi], &mut right[0][lo..hi])
    } else {
        let (left, right) = regions.split_at_mut(src);
        (&right[0][lo..hi], &mut left[dst][lo..hi])
    };
    b.copy_from_slice(a);
}

fn ring(
    regions: &mut [&mut [u8]],
    seg_sizes: &[u64],
    offsets: &[u64],
    model: &NetModel,
    steps: &mut Vec<CollectiveStep>,
) -> CollectiveCost {
    let n = regions.len();
    let mut cost = CollectiveCost::default();
    // Step s: node i sends segment (i − s) mod n to node (i+1) mod n. All
    // transfers of a step run concurrently; the step is gated by its
    // largest segment.
    for s in 0..n - 1 {
        let mut step_max = 0u64;
        let mut step_wire = 0u64;
        for i in 0..n {
            let seg = (i + n - s) % n;
            let dst = (i + 1) % n;
            let (lo, hi) = (
                offsets[seg] as usize,
                (offsets[seg] + seg_sizes[seg]) as usize,
            );
            copy_segment(regions, i, dst, lo, hi);
            cost.wire_bytes += seg_sizes[seg];
            cost.messages += 1;
            step_wire += seg_sizes[seg];
            step_max = step_max.max(seg_sizes[seg]);
        }
        let step_time = collective_step_time(model, step_max);
        cost.time += step_time;
        steps.push(CollectiveStep {
            time: step_time,
            wire_bytes: step_wire,
            messages: n as u64,
        });
    }
    cost
}

// Index-based loops: each iteration reads `snapshot[partner]` for a partner
// derived from the index, which iterators cannot express.
#[allow(clippy::needless_range_loop)]
fn recursive_doubling(
    regions: &mut [&mut [u8]],
    seg_sizes: &[u64],
    offsets: &[u64],
    model: &NetModel,
    steps: &mut Vec<CollectiveStep>,
) -> CollectiveCost {
    let n = regions.len();
    let mut cost = CollectiveCost::default();
    // owned[i] = set of segments node i currently holds (as sorted vec).
    let mut owned: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut dist = 1usize;
    while dist < n {
        let mut step_max = 0u64;
        let mut step_wire = 0u64;
        let snapshot = owned.clone();
        for i in 0..n {
            let partner = i ^ dist;
            // i receives everything partner owns.
            let mut recv_bytes = 0u64;
            for &seg in &snapshot[partner] {
                if !owned[i].contains(&seg) {
                    let (lo, hi) = (
                        offsets[seg] as usize,
                        (offsets[seg] + seg_sizes[seg]) as usize,
                    );
                    copy_segment(regions, partner, i, lo, hi);
                    owned[i].push(seg);
                    recv_bytes += seg_sizes[seg];
                }
            }
            cost.wire_bytes += recv_bytes;
            cost.messages += 1;
            step_wire += recv_bytes;
            step_max = step_max.max(recv_bytes);
        }
        let step_time = collective_step_time(model, step_max);
        cost.time += step_time;
        steps.push(CollectiveStep {
            time: step_time,
            wire_bytes: step_wire,
            messages: n as u64,
        });
        dist <<= 1;
    }
    cost
}

// Index-based loop: destinations are derived from the sender index, which
// iterators cannot express.
#[allow(clippy::needless_range_loop)]
fn bruck(
    regions: &mut [&mut [u8]],
    seg_sizes: &[u64],
    offsets: &[u64],
    model: &NetModel,
    steps: &mut Vec<CollectiveStep>,
) -> CollectiveCost {
    let n = regions.len();
    let mut cost = CollectiveCost::default();
    let mut owned: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut dist = 1usize;
    while dist < n {
        let snapshot = owned.clone();
        let mut step_max = 0u64;
        let mut step_wire = 0u64;
        for i in 0..n {
            // Bruck: node i sends its owned set to (i − dist) mod n.
            let dst = (i + n - dist) % n;
            let mut sent = 0u64;
            for &seg in &snapshot[i] {
                if !owned[dst].contains(&seg) {
                    let (lo, hi) = (
                        offsets[seg] as usize,
                        (offsets[seg] + seg_sizes[seg]) as usize,
                    );
                    copy_segment(regions, i, dst, lo, hi);
                    owned[dst].push(seg);
                    sent += seg_sizes[seg];
                }
            }
            cost.wire_bytes += sent;
            cost.messages += 1;
            step_wire += sent;
            step_max = step_max.max(sent);
        }
        let step_time = collective_step_time(model, step_max);
        cost.time += step_time;
        steps.push(CollectiveStep {
            time: step_time,
            wire_bytes: step_wire,
            messages: n as u64,
        });
        dist <<= 1;
    }
    cost
}

/// Cost of a **balanced** Allgather of `unit` bytes per node over `n`
/// nodes, without moving any data. Matches exactly what [`allgather`]
/// charges for equal segments — used by the modeled (timing-only) execution
/// path.
pub fn allgather_cost(
    n: usize,
    unit: u64,
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
) -> CollectiveCost {
    let mut cost = CollectiveCost {
        peak_memory_factor: 1,
        ..CollectiveCost::default()
    };
    if n > 1 && unit > 0 {
        match (algo, n.is_power_of_two()) {
            (AllgatherAlgo::Ring, _) => {
                let steps = (n - 1) as f64;
                cost.time = steps * collective_step_time(model, unit);
                cost.wire_bytes = (n as u64 - 1) * n as u64 * unit;
                cost.messages = (n as u64 - 1) * n as u64;
            }
            (AllgatherAlgo::RecursiveDoubling, true) => {
                let steps = (n as f64).log2().round() as u32;
                for k in 0..steps {
                    let bytes = (1u64 << k) * unit;
                    cost.time += collective_step_time(model, bytes);
                    cost.wire_bytes += bytes * n as u64;
                    cost.messages += n as u64;
                }
            }
            (AllgatherAlgo::RecursiveDoubling, false) | (AllgatherAlgo::Bruck, _) => {
                let mut dist = 1usize;
                let mut owned = 1u64;
                while dist < n {
                    let send = owned.min((n as u64) - owned);
                    let bytes = send * unit;
                    cost.time += collective_step_time(model, bytes);
                    cost.wire_bytes += bytes * n as u64;
                    cost.messages += n as u64;
                    owned += send;
                    dist <<= 1;
                }
            }
        }
    }
    if placement == AllgatherPlacement::OutOfPlace {
        cost.time += model.local_copy_time(unit);
        cost.local_copy_bytes += unit * n as u64;
        cost.peak_memory_factor = 2;
    }
    cost
}

/// Per-step breakdown of a **balanced** Allgather, the step structure
/// behind [`allgather_cost`] (without the placement staging term). Used to
/// lay out trace child spans; [`allgather_cost`] remains the authoritative
/// total, which the sum of step times may differ from by float rounding
/// (the ring total is computed as `steps × step_time`).
pub fn balanced_steps(
    n: usize,
    unit: u64,
    model: &NetModel,
    algo: AllgatherAlgo,
) -> Vec<CollectiveStep> {
    let mut steps = Vec::new();
    if n <= 1 || unit == 0 {
        return steps;
    }
    match (algo, n.is_power_of_two()) {
        (AllgatherAlgo::Ring, _) => {
            for _ in 0..n - 1 {
                steps.push(CollectiveStep {
                    time: collective_step_time(model, unit),
                    wire_bytes: n as u64 * unit,
                    messages: n as u64,
                });
            }
        }
        (AllgatherAlgo::RecursiveDoubling, true) => {
            let rounds = (n as f64).log2().round() as u32;
            for k in 0..rounds {
                let bytes = (1u64 << k) * unit;
                steps.push(CollectiveStep {
                    time: collective_step_time(model, bytes),
                    wire_bytes: bytes * n as u64,
                    messages: n as u64,
                });
            }
        }
        (AllgatherAlgo::RecursiveDoubling, false) | (AllgatherAlgo::Bruck, _) => {
            let mut dist = 1usize;
            let mut owned = 1u64;
            while dist < n {
                let send = owned.min((n as u64) - owned);
                let bytes = send * unit;
                steps.push(CollectiveStep {
                    time: collective_step_time(model, bytes),
                    wire_bytes: bytes * n as u64,
                    messages: n as u64,
                });
                owned += send;
                dist <<= 1;
            }
        }
    }
    steps
}

// ------------------------------------------------------- partial gather --

/// One authoritative sub-range of a partial gather: the byte range
/// `[lo, hi)` of the shared region, held only by `owner` before the call
/// and by every node after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherSegment {
    /// Node whose copy of `[lo, hi)` is authoritative.
    pub owner: usize,
    /// Inclusive start byte within the region.
    pub lo: u64,
    /// Exclusive end byte within the region.
    pub hi: u64,
}

impl GatherSegment {
    /// Length of the segment in bytes.
    pub fn bytes(&self) -> u64 {
        self.hi - self.lo
    }
}

/// Total authoritative bytes per owner, the quantity that gates partial
/// gather steps (the per-owner segment *set* travels as one unit, exactly
/// like the per-node segment of a full Allgather).
pub fn owner_bytes(n: usize, segments: &[GatherSegment]) -> Vec<u64> {
    let mut per = vec![0u64; n];
    for s in segments {
        per[s.owner] += s.bytes();
    }
    per
}

/// Shared step engine for partial gathers. The same loops drive the
/// functional primitive (real `relay` closure) and the analytic cost
/// (no-op closure), so the two are bit-identical by construction.
/// `relay(src, dst, owner)` moves *all* of `owner`'s segments that `src`
/// holds to `dst`.
fn partial_engine(
    n: usize,
    per_owner: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    steps: &mut Vec<CollectiveStep>,
    mut relay: impl FnMut(usize, usize, usize),
) -> CollectiveCost {
    let mut cost = CollectiveCost::default();
    match (algo, n.is_power_of_two()) {
        (AllgatherAlgo::Ring, _) => {
            // Step s: node i relays the segments of owner (i − s) mod n to
            // node (i+1) mod n; every owner set is in flight each step.
            for s in 0..n - 1 {
                let mut step_max = 0u64;
                let mut step_wire = 0u64;
                for i in 0..n {
                    let owner = (i + n - s) % n;
                    let dst = (i + 1) % n;
                    relay(i, dst, owner);
                    cost.wire_bytes += per_owner[owner];
                    cost.messages += 1;
                    step_wire += per_owner[owner];
                    step_max = step_max.max(per_owner[owner]);
                }
                let step_time = collective_step_time(model, step_max);
                cost.time += step_time;
                steps.push(CollectiveStep {
                    time: step_time,
                    wire_bytes: step_wire,
                    messages: n as u64,
                });
            }
        }
        (AllgatherAlgo::RecursiveDoubling, true) => {
            let mut owned: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            let mut dist = 1usize;
            while dist < n {
                let mut step_max = 0u64;
                let mut step_wire = 0u64;
                let snapshot = owned.clone();
                for (i, mine) in owned.iter_mut().enumerate() {
                    let partner = i ^ dist;
                    let mut recv = 0u64;
                    for &owner in &snapshot[partner] {
                        if !mine.contains(&owner) {
                            relay(partner, i, owner);
                            mine.push(owner);
                            recv += per_owner[owner];
                        }
                    }
                    cost.wire_bytes += recv;
                    cost.messages += 1;
                    step_wire += recv;
                    step_max = step_max.max(recv);
                }
                let step_time = collective_step_time(model, step_max);
                cost.time += step_time;
                steps.push(CollectiveStep {
                    time: step_time,
                    wire_bytes: step_wire,
                    messages: n as u64,
                });
                dist <<= 1;
            }
        }
        (AllgatherAlgo::RecursiveDoubling, false) | (AllgatherAlgo::Bruck, _) => {
            let mut owned: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            let mut dist = 1usize;
            while dist < n {
                let snapshot = owned.clone();
                let mut step_max = 0u64;
                let mut step_wire = 0u64;
                for (i, sent_set) in snapshot.iter().enumerate() {
                    // Bruck: node i sends its owned set to (i − dist) mod n.
                    let dst = (i + n - dist) % n;
                    let mut sent = 0u64;
                    for &owner in sent_set {
                        if !owned[dst].contains(&owner) {
                            relay(i, dst, owner);
                            owned[dst].push(owner);
                            sent += per_owner[owner];
                        }
                    }
                    cost.wire_bytes += sent;
                    cost.messages += 1;
                    step_wire += sent;
                    step_max = step_max.max(sent);
                }
                let step_time = collective_step_time(model, step_max);
                cost.time += step_time;
                steps.push(CollectiveStep {
                    time: step_time,
                    wire_bytes: step_wire,
                    messages: n as u64,
                });
                dist <<= 1;
            }
        }
    }
    cost
}

fn apply_partial_placement(
    cost: &mut CollectiveCost,
    placement: AllgatherPlacement,
    model: &NetModel,
    per_owner: &[u64],
) {
    match placement {
        AllgatherPlacement::InPlace => cost.peak_memory_factor = 1,
        AllgatherPlacement::OutOfPlace => {
            // Each node stages its own authoritative segments; the node with
            // the most bytes gates completion.
            let max_own = per_owner.iter().copied().max().unwrap_or(0);
            cost.time += model.local_copy_time(max_own);
            cost.local_copy_bytes += per_owner.iter().sum::<u64>();
            cost.peak_memory_factor = 2;
        }
    }
}

fn check_segments(n: usize, region_len: u64, segments: &[GatherSegment]) {
    let mut sorted: Vec<(u64, u64)> = segments.iter().map(|s| (s.lo, s.hi)).collect();
    sorted.sort_unstable();
    for (k, s) in segments.iter().enumerate() {
        assert!(
            s.owner < n,
            "segment {k}: owner {} out of {n} nodes",
            s.owner
        );
        assert!(s.lo <= s.hi, "segment {k}: lo > hi");
        assert!(s.hi <= region_len, "segment {k}: past region end");
    }
    for w in sorted.windows(2) {
        assert!(w[0].1 <= w[1].0, "overlapping gather segments");
    }
}

/// Gather only the given sub-ranges of a shared per-node region: after the
/// call every node's region holds every segment. The degenerate case of one
/// segment `[i·unit, (i+1)·unit)` per node is a balanced Allgather, and the
/// cost charged matches [`allgather_cost`]'s step structure exactly (the
/// per-owner segment set travels as one unit per relay).
///
/// A single node or an empty segment set is free. Segments must be
/// non-overlapping; each must lie inside every region.
pub fn partial_gather(
    regions: &mut [&mut [u8]],
    segments: &[GatherSegment],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
) -> CollectiveCost {
    partial_gather_with_steps(regions, segments, model, algo, placement, &mut Vec::new())
}

/// [`partial_gather`] that additionally records the per-step breakdown.
pub fn partial_gather_with_steps(
    regions: &mut [&mut [u8]],
    segments: &[GatherSegment],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    steps: &mut Vec<CollectiveStep>,
) -> CollectiveCost {
    let n = regions.len();
    assert!(n > 0, "empty cluster");
    let len = regions[0].len() as u64;
    for r in regions.iter() {
        assert_eq!(r.len() as u64, len, "regions must have equal lengths");
    }
    check_segments(n, len, segments);
    let per_owner = owner_bytes(n, segments);
    if n == 1 || per_owner.iter().all(|&b| b == 0) {
        return CollectiveCost {
            peak_memory_factor: 1,
            ..CollectiveCost::default()
        };
    }
    let mut by_owner: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for s in segments {
        by_owner[s.owner].push((s.lo as usize, s.hi as usize));
    }
    let mut cost = partial_engine(n, &per_owner, model, algo, steps, |src, dst, owner| {
        for &(lo, hi) in &by_owner[owner] {
            copy_segment(regions, src, dst, lo, hi);
        }
    });
    apply_partial_placement(&mut cost, placement, model, &per_owner);
    cost
}

/// Analytic cost of a partial gather with `per_owner[i]` authoritative
/// bytes on node `i`, without moving data. Bit-identical to what
/// [`partial_gather`] charges (both run [`partial_engine`]).
pub fn partial_gather_cost(
    per_owner: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
) -> CollectiveCost {
    partial_gather_cost_steps(per_owner, model, algo, placement, &mut Vec::new())
}

/// [`partial_gather_cost`] that records the per-step breakdown, mirroring
/// [`balanced_steps`] for the full Allgather.
pub fn partial_gather_cost_steps(
    per_owner: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    steps: &mut Vec<CollectiveStep>,
) -> CollectiveCost {
    let n = per_owner.len();
    assert!(n > 0, "empty cluster");
    if n == 1 || per_owner.iter().all(|&b| b == 0) {
        return CollectiveCost {
            peak_memory_factor: 1,
            ..CollectiveCost::default()
        };
    }
    let mut cost = partial_engine(n, per_owner, model, algo, steps, |_, _, _| {});
    apply_partial_placement(&mut cost, placement, model, per_owner);
    cost
}

/// Dissemination barrier cost (no data movement).
pub fn barrier_time(model: &NetModel, n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    (n as f64).log2().ceil() * (model.alpha + model.overhead)
}

/// Binomial-tree broadcast of `bytes` from one root to `n` nodes.
pub fn broadcast_time(model: &NetModel, n: usize, bytes: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    (n as f64).log2().ceil() * model.msg_time(bytes)
}

/// Wire traffic of a binomial-tree broadcast: every non-root node receives
/// the payload exactly once.
pub fn broadcast_wire_bytes(n: usize, bytes: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    (n as u64 - 1) * bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build per-node regions where node i's own segment is filled with a
    /// distinctive pattern and the rest is garbage.
    fn setup(n: usize, seg: usize) -> (Vec<Vec<u8>>, Vec<u8>) {
        let total = n * seg;
        let mut reference = vec![0u8; total];
        for i in 0..n {
            for j in 0..seg {
                reference[i * seg + j] = (i * 31 + j * 7 + 1) as u8;
            }
        }
        let regions: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let mut r = vec![0xEEu8; total]; // garbage everywhere
                r[i * seg..(i + 1) * seg].copy_from_slice(&reference[i * seg..(i + 1) * seg]);
                r
            })
            .collect();
        (regions, reference)
    }

    fn run(
        n: usize,
        seg: usize,
        algo: AllgatherAlgo,
        placement: AllgatherPlacement,
    ) -> CollectiveCost {
        let (mut regions, reference) = setup(n, seg);
        let model = NetModel::infiniband_100g();
        let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
        let cost = allgather(&mut views, &vec![seg as u64; n], &model, algo, placement);
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r, &reference, "node {i} region after {algo:?}");
        }
        cost
    }

    #[test]
    fn all_algorithms_gather_correctly() {
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
        ] {
            for n in [1usize, 2, 3, 4, 5, 8, 16, 32] {
                run(n, 64, algo, AllgatherPlacement::InPlace);
            }
        }
    }

    #[test]
    fn ring_wire_bytes_exact() {
        // Ring moves every segment n−1 times.
        let c = run(8, 128, AllgatherAlgo::Ring, AllgatherPlacement::InPlace);
        assert_eq!(c.wire_bytes, 7 * 8 * 128);
        assert_eq!(c.messages, 7 * 8);
    }

    #[test]
    fn recursive_doubling_fewer_latency_terms() {
        let model = NetModel::infiniband_100g();
        // tiny segments: latency dominates; RD's log(n) steps beat ring's n−1.
        let seg = 8usize;
        let n = 32;
        let ring = run(n, seg, AllgatherAlgo::Ring, AllgatherPlacement::InPlace);
        let rd = run(
            n,
            seg,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherPlacement::InPlace,
        );
        assert!(rd.time < ring.time);
        // Both are dominated by per-step latency here.
        assert!(ring.time > 30.0 * (model.alpha + model.overhead));
    }

    #[test]
    fn out_of_place_costs_more() {
        let ip = run(4, 1 << 16, AllgatherAlgo::Ring, AllgatherPlacement::InPlace);
        let oop = run(
            4,
            1 << 16,
            AllgatherAlgo::Ring,
            AllgatherPlacement::OutOfPlace,
        );
        assert!(oop.time > ip.time);
        assert_eq!(ip.peak_memory_factor, 1);
        assert_eq!(oop.peak_memory_factor, 2);
        assert!(oop.local_copy_bytes > 0);
    }

    #[test]
    fn imbalanced_is_slower_than_balanced() {
        // Same total data, skewed split: ring steps gated by the largest
        // segment (paper §2.3's 2-node N/4 vs 3N/4 example).
        let model = NetModel::infiniband_100g();
        let total = 1u64 << 20;
        let n = 4;
        let balanced = vec![total / 4; 4];
        let imbalanced = vec![total / 8, total / 8, total / 4, total / 2];

        let mk = |sizes: &Vec<u64>| -> f64 {
            let total_b: u64 = sizes.iter().sum();
            let mut regions: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; total_b as usize]).collect();
            let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
            allgather(
                &mut views,
                sizes,
                &model,
                AllgatherAlgo::Ring,
                AllgatherPlacement::InPlace,
            )
            .time
        };
        assert!(mk(&imbalanced) > mk(&balanced));
    }

    #[test]
    fn balanced_in_place_is_fastest_configuration() {
        // The paper's conclusion of §2.3: balanced-in-place wins across the
        // 2×2 design space.
        let model = NetModel::infiniband_100g();
        let n = 8usize;
        let total = 1u64 << 22;
        let balanced = vec![total / n as u64; n];
        let mut skewed = vec![total / (2 * n as u64); n];
        skewed[n - 1] = total - skewed[..n - 1].iter().sum::<u64>();

        let time = |sizes: &Vec<u64>, placement| {
            let t: u64 = sizes.iter().sum();
            let mut regions: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; t as usize]).collect();
            let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
            allgather(&mut views, sizes, &model, AllgatherAlgo::Ring, placement).time
        };
        let best = time(&balanced, AllgatherPlacement::InPlace);
        assert!(best <= time(&balanced, AllgatherPlacement::OutOfPlace));
        assert!(best <= time(&skewed, AllgatherPlacement::InPlace));
        assert!(best <= time(&skewed, AllgatherPlacement::OutOfPlace));
    }

    #[test]
    fn single_node_is_free() {
        let c = run(1, 1024, AllgatherAlgo::Ring, AllgatherPlacement::InPlace);
        assert_eq!(c.time, 0.0);
        assert_eq!(c.wire_bytes, 0);
    }

    #[test]
    fn barrier_and_broadcast_scale_logarithmically() {
        let m = NetModel::infiniband_100g();
        assert_eq!(barrier_time(&m, 1), 0.0);
        assert!(barrier_time(&m, 32) < 2.0 * barrier_time(&m, 16) + 1e-12);
        assert!(broadcast_time(&m, 32, 1024) > broadcast_time(&m, 2, 1024));
    }

    #[test]
    fn analytic_cost_matches_functional_ring() {
        let model = NetModel::infiniband_100g();
        for n in [2usize, 4, 7, 16] {
            let unit = 4096usize;
            let functional = run(n, unit, AllgatherAlgo::Ring, AllgatherPlacement::InPlace);
            let analytic = allgather_cost(
                n,
                unit as u64,
                &model,
                AllgatherAlgo::Ring,
                AllgatherPlacement::InPlace,
            );
            assert!((functional.time - analytic.time).abs() < 1e-12, "n={n}");
            assert_eq!(functional.wire_bytes, analytic.wire_bytes);
            assert_eq!(functional.messages, analytic.messages);
        }
    }

    #[test]
    fn analytic_cost_matches_functional_rd_and_bruck() {
        let model = NetModel::infiniband_100g();
        for (algo, ns) in [
            (AllgatherAlgo::RecursiveDoubling, vec![2usize, 4, 8, 16]),
            (AllgatherAlgo::Bruck, vec![3usize, 5, 6, 12]),
        ] {
            for n in ns {
                let unit = 1024usize;
                let functional = run(n, unit, algo, AllgatherPlacement::InPlace);
                let analytic =
                    allgather_cost(n, unit as u64, &model, algo, AllgatherPlacement::InPlace);
                assert!(
                    (functional.time - analytic.time).abs() / functional.time.max(1e-30) < 1e-9,
                    "{algo:?} n={n}: {} vs {}",
                    functional.time,
                    analytic.time
                );
                assert_eq!(functional.wire_bytes, analytic.wire_bytes, "{algo:?} n={n}");
            }
        }
    }

    #[test]
    fn partial_gather_moves_only_segments() {
        let model = NetModel::infiniband_100g();
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
        ] {
            for n in [2usize, 3, 4, 5, 8] {
                let len = 64 * n;
                // Node i's copy: its pattern everywhere; gathered ranges must
                // become the owner's pattern, everything else must stay put.
                let mut regions: Vec<Vec<u8>> =
                    (0..n).map(|i| vec![(i * 13 + 1) as u8; len]).collect();
                let segments = vec![
                    GatherSegment {
                        owner: 0,
                        lo: 4,
                        hi: 12,
                    },
                    GatherSegment {
                        owner: n - 1,
                        lo: 40,
                        hi: 41,
                    },
                ];
                let mut views: Vec<&mut [u8]> =
                    regions.iter_mut().map(|r| r.as_mut_slice()).collect();
                let cost = partial_gather(
                    &mut views,
                    &segments,
                    &model,
                    algo,
                    AllgatherPlacement::InPlace,
                );
                assert!(cost.time > 0.0);
                for (i, r) in regions.iter().enumerate() {
                    for (b, v) in r.iter().enumerate() {
                        let want = if (4..12).contains(&b) {
                            1 // owner 0's pattern
                        } else if b == 40 {
                            ((n - 1) * 13 + 1) as u8 // owner n−1's pattern
                        } else {
                            (i * 13 + 1) as u8
                        };
                        assert_eq!(*v, want, "{algo:?} n={n} node {i} byte {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn partial_gather_full_slices_matches_allgather_cost() {
        // One full slice per owner degenerates to a balanced Allgather.
        let model = NetModel::infiniband_100g();
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
        ] {
            for n in [2usize, 4, 5, 8] {
                let unit = 4096u64;
                let per_owner = vec![unit; n];
                let partial =
                    partial_gather_cost(&per_owner, &model, algo, AllgatherPlacement::InPlace);
                let full = allgather_cost(n, unit, &model, algo, AllgatherPlacement::InPlace);
                assert!(
                    (partial.time - full.time).abs() / full.time < 1e-9,
                    "{algo:?} n={n}: {} vs {}",
                    partial.time,
                    full.time
                );
                assert_eq!(partial.wire_bytes, full.wire_bytes, "{algo:?} n={n}");
            }
        }
    }

    #[test]
    fn partial_gather_analytic_matches_functional() {
        let model = NetModel::infiniband_100g();
        for algo in [AllgatherAlgo::Ring, AllgatherAlgo::Bruck] {
            let n = 4usize;
            let segments = vec![
                GatherSegment {
                    owner: 0,
                    lo: 0,
                    hi: 100,
                },
                GatherSegment {
                    owner: 2,
                    lo: 200,
                    hi: 232,
                },
                GatherSegment {
                    owner: 2,
                    lo: 300,
                    hi: 304,
                },
            ];
            let mut regions: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 512]).collect();
            let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
            let mut fsteps = Vec::new();
            let functional = partial_gather_with_steps(
                &mut views,
                &segments,
                &model,
                algo,
                AllgatherPlacement::InPlace,
                &mut fsteps,
            );
            let mut asteps = Vec::new();
            let analytic = partial_gather_cost_steps(
                &owner_bytes(n, &segments),
                &model,
                algo,
                AllgatherPlacement::InPlace,
                &mut asteps,
            );
            assert_eq!(functional.time.to_bits(), analytic.time.to_bits());
            assert_eq!(functional.wire_bytes, analytic.wire_bytes);
            assert_eq!(fsteps, asteps);
        }
    }

    #[test]
    fn partial_gather_empty_or_single_node_is_free() {
        let model = NetModel::infiniband_100g();
        let free = partial_gather_cost(
            &[0, 0, 0],
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );
        assert_eq!(free.time, 0.0);
        assert_eq!(free.wire_bytes, 0);
        let one = partial_gather_cost(
            &[4096],
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );
        assert_eq!(one.time, 0.0);
    }

    #[test]
    #[should_panic(expected = "overlapping gather segments")]
    fn partial_gather_rejects_overlap() {
        let model = NetModel::infiniband_100g();
        let mut regions: Vec<Vec<u8>> = (0..2).map(|_| vec![0u8; 64]).collect();
        let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
        partial_gather(
            &mut views,
            &[
                GatherSegment {
                    owner: 0,
                    lo: 0,
                    hi: 10,
                },
                GatherSegment {
                    owner: 1,
                    lo: 5,
                    hi: 12,
                },
            ],
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );
    }

    #[test]
    fn zero_sized_segments_ok() {
        let model = NetModel::infiniband_100g();
        let n = 4;
        let sizes = vec![0u64, 16, 0, 16];
        let total: u64 = sizes.iter().sum();
        let mut reference = vec![0u8; total as usize];
        for (i, b) in reference.iter_mut().enumerate() {
            *b = i as u8 + 1;
        }
        let offsets = [0usize, 0, 16, 16];
        let mut regions: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let mut r = vec![0u8; total as usize];
                let sz = sizes[i] as usize;
                r[offsets[i]..offsets[i] + sz]
                    .copy_from_slice(&reference[offsets[i]..offsets[i] + sz]);
                r
            })
            .collect();
        let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
        allgather(
            &mut views,
            &sizes,
            &model,
            AllgatherAlgo::Bruck,
            AllgatherPlacement::InPlace,
        );
        for r in &regions {
            assert_eq!(r, &reference);
        }
    }
}
