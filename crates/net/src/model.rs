//! LogGP-style interconnect cost model.

use serde::{Deserialize, Serialize};

/// Interconnect cost parameters.
///
/// Message cost: `α + o + bytes·β`. `α` is wire/switch latency, `o` is the
/// per-message CPU/NIC software overhead (the term that makes fine-grained
/// PGAS puts expensive), `β` the inverse payload bandwidth. Local memory
/// movement (out-of-place collectives) is charged at `mem_bw`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// One-way wire latency in seconds.
    pub alpha: f64,
    /// Per-message software/NIC overhead in seconds.
    pub overhead: f64,
    /// Seconds per payload byte (1 / effective bandwidth).
    pub beta: f64,
    /// Local memory bandwidth in bytes/second (for staging copies).
    pub mem_bw: f64,
    /// Incast/endpoint contention growth for fine-grained point-to-point
    /// traffic: the effective per-message overhead scales by
    /// `1 + p2p_contention·(N−1)` as more peers inject interleaved small
    /// messages (active-message handler and NIC doorbell interference).
    /// Collectives are unaffected — their communication is structured.
    pub p2p_contention: f64,
}

impl NetModel {
    /// 100 Gb/s InfiniBand (EDR/HDR-class) with RDMA: ~1.5 µs latency,
    /// ~0.4 µs per-message overhead, ~11 GB/s effective payload bandwidth
    /// (the paper's clusters, Table 1).
    pub fn infiniband_100g() -> NetModel {
        NetModel {
            alpha: 1.5e-6,
            overhead: 0.4e-6,
            beta: 1.0 / 11.0e9,
            mem_bw: 80.0e9,
            p2p_contention: 0.3,
        }
    }

    /// A 400 Gb/s-class fabric (the paper's §10 outlook).
    pub fn infiniband_400g() -> NetModel {
        NetModel {
            alpha: 1.0e-6,
            overhead: 0.3e-6,
            beta: 1.0 / 44.0e9,
            mem_bw: 80.0e9,
            p2p_contention: 0.3,
        }
    }

    /// Time for one point-to-point message of `bytes` payload.
    #[inline]
    pub fn msg_time(&self, bytes: u64) -> f64 {
        self.alpha + self.overhead + bytes as f64 * self.beta
    }

    /// Sender-side occupancy of one message (the part that serializes
    /// back-to-back sends on one node): software overhead plus payload
    /// injection.
    #[inline]
    pub fn send_occupancy(&self, bytes: u64) -> f64 {
        self.overhead + bytes as f64 * self.beta
    }

    /// Time to copy `bytes` within node memory (staging for out-of-place
    /// collectives).
    #[inline]
    pub fn local_copy_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mem_bw
    }

    /// Effective bandwidth of a single large transfer, bytes/second.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        bytes as f64 / self.msg_time(bytes)
    }
}

impl Default for NetModel {
    fn default() -> NetModel {
        NetModel::infiniband_100g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_latency_bound() {
        let m = NetModel::infiniband_100g();
        let t1 = m.msg_time(1);
        let t1k = m.msg_time(1024);
        // A 1-byte and a 1 KiB message cost nearly the same.
        assert!(t1k / t1 < 1.1);
        // A 1 MiB message is bandwidth-bound.
        let t1m = m.msg_time(1 << 20);
        assert!(t1m > 10.0 * t1k);
    }

    #[test]
    fn effective_bandwidth_approaches_peak() {
        let m = NetModel::infiniband_100g();
        let bw = m.effective_bandwidth(1 << 30);
        assert!(bw > 0.99 / m.beta, "large transfers near peak");
        let bw_small = m.effective_bandwidth(8);
        assert!(bw_small < 0.01 / m.beta, "small transfers far from peak");
    }

    #[test]
    fn faster_fabric_is_faster() {
        let a = NetModel::infiniband_100g();
        let b = NetModel::infiniband_400g();
        assert!(b.msg_time(1 << 20) < a.msg_time(1 << 20));
        assert!(b.msg_time(1) < a.msg_time(1));
    }
}
