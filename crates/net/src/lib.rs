//! # cucc-net — simulated cluster interconnect
//!
//! Stand-in for MPI over the paper's 100 Gb/s InfiniBand fabric. Two layers:
//!
//! * a **cost model** ([`model::NetModel`]) in the LogGP tradition — per
//!   message latency `α`, per-message CPU overhead `o`, per-byte time `β` —
//!   calibrated to the evaluation clusters' interconnect (Table 1);
//! * **functional collectives** ([`collectives`]) that really move bytes
//!   between per-node buffers (ring, recursive-doubling and Bruck Allgather,
//!   in-place and out-of-place, balanced and imbalanced) while charging the
//!   cost model, plus a **point-to-point tracker** ([`p2p`]) used by the
//!   PGAS baseline's fine-grained remote accesses.
//!
//! The paper's central performance claim — one coarse collective beats a
//! million fine-grained puts — is exactly the `α`/`o` versus `β` trade-off
//! this model expresses.

pub mod collectives;
pub mod fault;
pub mod model;
pub mod p2p;
pub mod traced;

pub use collectives::{
    allgather, allgather_cost, balanced_steps, barrier_time, broadcast_time, broadcast_wire_bytes,
    collective_step_time, owner_bytes, partial_gather, partial_gather_cost,
    partial_gather_cost_steps, partial_gather_with_steps, AllgatherAlgo, AllgatherPlacement,
    CollectiveCost, CollectiveStep, GatherSegment,
};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, RetryPolicy};
pub use model::NetModel;
pub use p2p::{P2pStats, P2pTracker};
pub use traced::{
    allgather_cost_traced, allgather_cost_traced_fallible, allgather_traced, broadcast_traced,
    partial_gather_cost_traced, partial_gather_cost_traced_fallible, partial_gather_traced,
    FaultyGather, GatherAbort,
};
