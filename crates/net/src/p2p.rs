//! Point-to-point message accounting for fine-grained remote access.
//!
//! The PGAS baseline (paper §3.1, Listing 3) turns every remote element
//! write into an asynchronous one-sided `put`. A [`P2pTracker`] accumulates
//! those messages per node pair and, at a synchronization point, converts
//! them into elapsed time:
//!
//! * a node's **injection** is serialized on its own NIC: `Σ (o + bytes·β)`
//!   over the messages it sends;
//! * a node's **reception** is serialized likewise (active-message handler
//!   occupancy);
//! * asynchronous overlap lets wire latency pipeline, so one `α` is paid per
//!   dependency chain, not per message;
//! * completion is gated by the busiest node (sender or receiver side).
//!
//! This is the standard async one-sided model (GASNet-EX-style) and it
//! reproduces the paper's Figure 4: a million 1-byte puts cost a million
//! `o`s no matter how the cluster scales.

use crate::model::NetModel;
use serde::{Deserialize, Serialize};

/// Per-node send/receive accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct P2pStats {
    /// Messages sent by each node.
    pub sent_msgs: Vec<u64>,
    /// Payload bytes sent by each node.
    pub sent_bytes: Vec<u64>,
    /// Messages received by each node.
    pub recv_msgs: Vec<u64>,
    /// Payload bytes received by each node.
    pub recv_bytes: Vec<u64>,
}

impl P2pStats {
    /// Total messages on the wire.
    pub fn total_messages(&self) -> u64 {
        self.sent_msgs.iter().sum()
    }

    /// Total payload bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }
}

/// Accumulates point-to-point traffic between `n` nodes and prices it.
#[derive(Debug, Clone, PartialEq)]
pub struct P2pTracker {
    model: NetModel,
    stats: P2pStats,
}

impl P2pTracker {
    /// New tracker for an `n`-node cluster.
    pub fn new(n: usize, model: NetModel) -> P2pTracker {
        P2pTracker {
            model,
            stats: P2pStats {
                sent_msgs: vec![0; n],
                sent_bytes: vec![0; n],
                recv_msgs: vec![0; n],
                recv_bytes: vec![0; n],
            },
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.stats.sent_msgs.len()
    }

    /// Record one message of `bytes` payload from `src` to `dst`.
    /// Node-local accesses (`src == dst`) are free and not recorded.
    pub fn put(&mut self, src: usize, dst: usize, bytes: u64) {
        if src == dst {
            return;
        }
        self.stats.sent_msgs[src] += 1;
        self.stats.sent_bytes[src] += bytes;
        self.stats.recv_msgs[dst] += 1;
        self.stats.recv_bytes[dst] += bytes;
    }

    /// Record `count` messages of `bytes` each (bulk shortcut).
    pub fn put_many(&mut self, src: usize, dst: usize, bytes: u64, count: u64) {
        if src == dst || count == 0 {
            return;
        }
        self.stats.sent_msgs[src] += count;
        self.stats.sent_bytes[src] += bytes * count;
        self.stats.recv_msgs[dst] += count;
        self.stats.recv_bytes[dst] += bytes * count;
    }

    /// Traffic recorded so far.
    pub fn stats(&self) -> &P2pStats {
        &self.stats
    }

    /// Elapsed time for all recorded traffic to complete and quiesce
    /// (the `pgas::barrier()` at the end of a distributed kernel).
    ///
    /// Per-message software overhead grows with the number of communicating
    /// peers (`NetModel::p2p_contention`): with many senders injecting
    /// interleaved small messages, handler and NIC-endpoint interference
    /// keeps fine-grained PGAS from scaling — the paper's Figure 4.
    pub fn completion_time(&self) -> f64 {
        let m = &self.model;
        let n = self.nodes();
        let o = m.overhead * (1.0 + m.p2p_contention * (n.saturating_sub(1)) as f64);
        let mut worst: f64 = 0.0;
        for i in 0..n {
            let send =
                self.stats.sent_msgs[i] as f64 * o + self.stats.sent_bytes[i] as f64 * m.beta;
            let recv =
                self.stats.recv_msgs[i] as f64 * o + self.stats.recv_bytes[i] as f64 * m.beta;
            worst = worst.max(send).max(recv);
        }
        if worst == 0.0 {
            0.0
        } else {
            // One pipelined wire latency to drain the last message.
            worst + m.alpha
        }
    }

    /// Reset counters (e.g. between kernel launches).
    pub fn reset(&mut self) {
        let n = self.nodes();
        self.stats = P2pStats {
            sent_msgs: vec![0; n],
            sent_bytes: vec![0; n],
            recv_msgs: vec![0; n],
            recv_bytes: vec![0; n],
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_puts_are_free() {
        let mut t = P2pTracker::new(4, NetModel::infiniband_100g());
        t.put(2, 2, 100);
        assert_eq!(t.stats().total_messages(), 0);
        assert_eq!(t.completion_time(), 0.0);
    }

    #[test]
    fn overhead_dominates_small_puts() {
        let m = NetModel::infiniband_100g();
        let mut t = P2pTracker::new(2, m);
        t.put_many(0, 1, 1, 1_000_000);
        let time = t.completion_time();
        // A million 1-byte puts cost about a million overheads.
        assert!(time > 0.9 * 1e6 * m.overhead);
        // One bulk message with the same payload is thousands of times faster.
        let bulk = m.msg_time(1_000_000);
        assert!(time / bulk > 100.0, "time={time} bulk={bulk}");
    }

    #[test]
    fn completion_gated_by_busiest_node() {
        let m = NetModel::infiniband_100g();
        let mut skew = P2pTracker::new(4, m);
        // Node 3 receives everything.
        for src in 0..3 {
            skew.put_many(src, 3, 8, 1000);
        }
        let mut spread = P2pTracker::new(4, m);
        // Same traffic volume spread across receivers.
        spread.put_many(0, 1, 8, 1000);
        spread.put_many(1, 2, 8, 1000);
        spread.put_many(2, 3, 8, 1000);
        assert!(skew.completion_time() > spread.completion_time());
    }

    #[test]
    fn bulk_equals_loop() {
        let m = NetModel::infiniband_100g();
        let mut a = P2pTracker::new(3, m);
        let mut b = P2pTracker::new(3, m);
        for _ in 0..50 {
            a.put(0, 2, 16);
        }
        b.put_many(0, 2, 16, 50);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.completion_time(), b.completion_time());
    }

    #[test]
    fn reset_clears() {
        let mut t = P2pTracker::new(2, NetModel::infiniband_100g());
        t.put(0, 1, 8);
        t.reset();
        assert_eq!(t.stats().total_messages(), 0);
    }
}
