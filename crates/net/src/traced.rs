//! Timeline-emitting wrappers around the collectives.
//!
//! Each wrapper performs (or models) the collective exactly as its
//! untraced counterpart — same arithmetic, same returned
//! [`CollectiveCost`] — and additionally records the event into a
//! [`Timeline`]: one authoritative depth-0 span on the network track whose
//! duration is the collective's total time, depth-1 child spans for the
//! individual exchange steps, and one [`WIRE_BYTES`] counter sample per
//! step.

use crate::collectives::{
    allgather_cost, allgather_with_steps, balanced_steps, broadcast_time, broadcast_wire_bytes,
    owner_bytes, partial_gather_cost_steps, partial_gather_with_steps, AllgatherAlgo,
    AllgatherPlacement, CollectiveCost, CollectiveStep, GatherSegment,
};
use crate::fault::FaultInjector;
use crate::model::NetModel;
use cucc_trace::{Category, Timeline, Track, WIRE_BYTES};

/// Lay one collective out on the timeline: parent span of `cost.time` at
/// `t0`, plus per-step children and wire-byte counters.
fn record(
    tl: &mut Timeline,
    t0: f64,
    label: &str,
    cost: &CollectiveCost,
    steps: &[CollectiveStep],
    staging_time: f64,
) {
    tl.span(label, Track::Network, Category::Allgather, t0, cost.time);
    let mut t = t0;
    for (k, step) in steps.iter().enumerate() {
        tl.child_span(
            format!("step {k}"),
            Track::Network,
            Category::Allgather,
            t,
            step.time,
        );
        if step.wire_bytes > 0 {
            tl.counter(WIRE_BYTES, Track::Network, t, step.wire_bytes);
        }
        t += step.time;
    }
    if staging_time > 0.0 {
        tl.child_span(
            "staging copy",
            Track::Network,
            Category::Allgather,
            t,
            staging_time,
        );
    }
}

/// Functional [`crate::collectives::allgather`] that records the collective
/// into `tl` starting at absolute simulated time `t0`.
#[allow(clippy::too_many_arguments)]
pub fn allgather_traced(
    regions: &mut [&mut [u8]],
    seg_sizes: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> CollectiveCost {
    let mut steps = Vec::new();
    let cost = allgather_with_steps(regions, seg_sizes, model, algo, placement, &mut steps);
    let staging = if placement == AllgatherPlacement::OutOfPlace {
        model.local_copy_time(seg_sizes.iter().copied().max().unwrap_or(0))
    } else {
        0.0
    };
    record(tl, t0, label, &cost, &steps, staging);
    cost
}

/// Analytic [`allgather_cost`] that records the modeled collective into
/// `tl` starting at absolute simulated time `t0`.
#[allow(clippy::too_many_arguments)]
pub fn allgather_cost_traced(
    n: usize,
    unit: u64,
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> CollectiveCost {
    let cost = allgather_cost(n, unit, model, algo, placement);
    let steps = balanced_steps(n, unit, model, algo);
    let staging = if placement == AllgatherPlacement::OutOfPlace {
        model.local_copy_time(unit)
    } else {
        0.0
    };
    record(tl, t0, label, &cost, &steps, staging);
    cost
}

/// A fault-aware collective that completed, possibly after retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyGather {
    /// Analytic cost of the *successful* collective (identical to the
    /// fault-free [`allgather_cost`]); wasted attempts are not included.
    pub cost: CollectiveCost,
    /// Wasted attempts across all steps.
    pub retries: u32,
    /// Total simulated time burned on wasted attempts (timeout + backoff).
    pub retry_time: f64,
}

/// A fault-aware collective that could not complete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatherAbort {
    /// Slot (index into the participant list) of the peer whose scripted
    /// kill explains the failure — `None` when every retry was exhausted by
    /// transient step drops with no dead peer to evict (a link timeout).
    pub dead_slot: Option<usize>,
    /// Wasted attempts before giving up.
    pub retries: u32,
    /// Total simulated time burned before giving up.
    pub retry_time: f64,
}

/// Analytic [`allgather_cost`] stepped under a [`FaultInjector`] with the
/// plan's retry policy.
///
/// Each balanced step gets a deadline derived from the cost model
/// ([`crate::fault::RetryPolicy::deadline`]); attempt `k` of a failing step
/// wastes `deadline × 2^(k−1)` (exponential backoff), recorded as a depth-0
/// [`Category::Retry`] span on the network track. When the retries of one
/// step are exhausted the collective aborts: with the offending peer's slot
/// if a scripted kill explains it, with `dead_slot: None` otherwise.
/// Wasted attempts charge **no** wire bytes — the payload never arrived.
///
/// When no fault fires, the recorded layout and returned cost are
/// bit-identical to [`allgather_cost_traced`].
#[allow(clippy::too_many_arguments)]
pub fn allgather_cost_traced_fallible(
    n: usize,
    unit: u64,
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    participants: &[u32],
    injector: &mut FaultInjector,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> Result<FaultyGather, GatherAbort> {
    debug_assert_eq!(participants.len(), n);
    let cost = allgather_cost(n, unit, model, algo, placement);
    let steps = balanced_steps(n, unit, model, algo);
    let staging = if placement == AllgatherPlacement::OutOfPlace {
        model.local_copy_time(unit)
    } else {
        0.0
    };
    run_fallible(
        cost,
        &steps,
        staging,
        model,
        participants,
        injector,
        tl,
        t0,
        label,
    )
}

/// The shared retry/deadline stepping loop behind every fallible gather —
/// full ([`allgather_cost_traced_fallible`]) and partial
/// ([`partial_gather_cost_traced_fallible`]) alike. Each step's deadline
/// comes from [`crate::fault::RetryPolicy::deadline`]; the layout rules are
/// documented on the public wrappers.
#[allow(clippy::too_many_arguments)]
fn run_fallible(
    cost: CollectiveCost,
    steps: &[CollectiveStep],
    staging: f64,
    model: &NetModel,
    participants: &[u32],
    injector: &mut FaultInjector,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> Result<FaultyGather, GatherAbort> {
    let policy = injector.policy();

    let mut t = t0;
    let mut retries = 0u32;
    let mut retry_time = 0.0f64;
    let mut starts: Vec<f64> = Vec::with_capacity(steps.len());
    for (k, step) in steps.iter().enumerate() {
        let deadline = policy.deadline(step.time, model);
        let mut attempt = 1u32;
        loop {
            let killed = injector.kill_pending(participants, t);
            let dropped = killed.is_none() && injector.take_drop(t);
            if killed.is_none() && !dropped {
                starts.push(t);
                t += step.time;
                break;
            }
            let wasted = deadline * (1u64 << (attempt - 1)) as f64;
            tl.span(
                format!("{label}: step {k} timeout (attempt {attempt})"),
                Track::Network,
                Category::Retry,
                t,
                wasted,
            );
            t += wasted;
            retry_time += wasted;
            retries += 1;
            if attempt == policy.max_attempts {
                return Err(GatherAbort {
                    dead_slot: killed,
                    retries,
                    retry_time,
                });
            }
            attempt += 1;
        }
    }

    if retries == 0 {
        // Clean run: identical layout and arithmetic to the fault-free path.
        record(tl, t0, label, &cost, steps, staging);
    } else {
        // Parent span keeps the analytic duration (the authoritative
        // allgather time excludes retries); children sit at their actual
        // post-retry positions.
        tl.span(label, Track::Network, Category::Allgather, t0, cost.time);
        for (k, (step, &start)) in steps.iter().zip(starts.iter()).enumerate() {
            tl.child_span(
                format!("step {k}"),
                Track::Network,
                Category::Allgather,
                start,
                step.time,
            );
            if step.wire_bytes > 0 {
                tl.counter(WIRE_BYTES, Track::Network, start, step.wire_bytes);
            }
        }
    }
    Ok(FaultyGather {
        cost,
        retries,
        retry_time,
    })
}

/// Functional [`crate::collectives::partial_gather`] that records the
/// narrowed collective into `tl` starting at `t0`, with the same span
/// layout as [`allgather_traced`] (parent + per-step children + wire-byte
/// counters).
#[allow(clippy::too_many_arguments)]
pub fn partial_gather_traced(
    regions: &mut [&mut [u8]],
    segments: &[GatherSegment],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> CollectiveCost {
    let mut steps = Vec::new();
    let cost = partial_gather_with_steps(regions, segments, model, algo, placement, &mut steps);
    let staging = partial_staging(placement, model, &owner_bytes(regions.len(), segments));
    record(tl, t0, label, &cost, &steps, staging);
    cost
}

/// Analytic [`crate::collectives::partial_gather_cost`] that records the
/// modeled partial gather into `tl` starting at `t0`.
#[allow(clippy::too_many_arguments)]
pub fn partial_gather_cost_traced(
    per_owner: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> CollectiveCost {
    let mut steps = Vec::new();
    let cost = partial_gather_cost_steps(per_owner, model, algo, placement, &mut steps);
    let staging = partial_staging(placement, model, per_owner);
    record(tl, t0, label, &cost, &steps, staging);
    cost
}

/// Analytic partial gather stepped under a [`FaultInjector`]: the partial
/// counterpart of [`allgather_cost_traced_fallible`], sharing the exact
/// same retry/deadline loop ([`run_fallible`]) and therefore the same
/// [`crate::fault::RetryPolicy::deadline`] per-step deadline formula.
#[allow(clippy::too_many_arguments)]
pub fn partial_gather_cost_traced_fallible(
    per_owner: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    participants: &[u32],
    injector: &mut FaultInjector,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> Result<FaultyGather, GatherAbort> {
    debug_assert_eq!(participants.len(), per_owner.len());
    let mut steps = Vec::new();
    let cost = partial_gather_cost_steps(per_owner, model, algo, placement, &mut steps);
    let staging = partial_staging(placement, model, per_owner);
    run_fallible(
        cost,
        &steps,
        staging,
        model,
        participants,
        injector,
        tl,
        t0,
        label,
    )
}

/// Staging-copy duration of an out-of-place partial gather (gated by the
/// node with the most authoritative bytes), zero in-place.
fn partial_staging(placement: AllgatherPlacement, model: &NetModel, per_owner: &[u64]) -> f64 {
    if placement == AllgatherPlacement::OutOfPlace {
        model.local_copy_time(per_owner.iter().copied().max().unwrap_or(0))
    } else {
        0.0
    }
}

/// [`broadcast_time`] that records the broadcast — span plus the wire
/// traffic the legacy accounting dropped — into `tl` at time `t0`.
pub fn broadcast_traced(
    model: &NetModel,
    n: usize,
    bytes: u64,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> f64 {
    let time = broadcast_time(model, n, bytes);
    let wire = broadcast_wire_bytes(n, bytes);
    if time > 0.0 || wire > 0 {
        tl.span(label, Track::Network, Category::Broadcast, t0, time);
        if wire > 0 {
            tl.counter(WIRE_BYTES, Track::Network, t0, wire);
        }
    }
    time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_allgather_matches_untraced_and_emits_steps() {
        let model = NetModel::infiniband_100g();
        let n = 4usize;
        let seg = 256usize;
        let mk = || {
            let mut regions: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; n * seg]).collect();
            for (i, r) in regions.iter_mut().enumerate() {
                r[i * seg..(i + 1) * seg].fill(i as u8 + 1);
            }
            regions
        };

        let mut plain = mk();
        let mut views: Vec<&mut [u8]> = plain.iter_mut().map(|r| r.as_mut_slice()).collect();
        let want = crate::collectives::allgather(
            &mut views,
            &vec![seg as u64; n],
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );

        let mut tl = Timeline::new();
        let mut traced = mk();
        let mut views: Vec<&mut [u8]> = traced.iter_mut().map(|r| r.as_mut_slice()).collect();
        let got = allgather_traced(
            &mut views,
            &vec![seg as u64; n],
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
            &mut tl,
            0.0,
            "allgather",
        );
        assert_eq!(got, want);
        assert_eq!(plain, traced);
        // Parent span carries the authoritative time; counters the wire bytes.
        assert_eq!(tl.time_in(Category::Allgather), want.time);
        assert_eq!(tl.wire_bytes(), want.wire_bytes);
        // n−1 ring steps as children plus the parent.
        assert_eq!(tl.spans().len(), n);
    }

    #[test]
    fn traced_cost_matches_untraced() {
        let model = NetModel::infiniband_100g();
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
        ] {
            for n in [1usize, 2, 5, 8] {
                let mut tl = Timeline::new();
                let want = allgather_cost(n, 4096, &model, algo, AllgatherPlacement::OutOfPlace);
                let got = allgather_cost_traced(
                    n,
                    4096,
                    &model,
                    algo,
                    AllgatherPlacement::OutOfPlace,
                    &mut tl,
                    1.5,
                    "ag",
                );
                assert_eq!(got, want, "{algo:?} n={n}");
                assert_eq!(tl.wire_bytes(), want.wire_bytes, "{algo:?} n={n}");
                assert_eq!(tl.time_in(Category::Allgather), want.time);
            }
        }
    }

    #[test]
    fn fallible_gather_without_faults_matches_clean_layout() {
        use crate::fault::{FaultInjector, FaultPlan};
        let model = NetModel::infiniband_100g();
        let mut clean = Timeline::new();
        let want = allgather_cost_traced(
            4,
            4096,
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
            &mut clean,
            0.25,
            "ag",
        );
        let mut tl = Timeline::new();
        let mut inj = FaultInjector::new(FaultPlan::default());
        let got = allgather_cost_traced_fallible(
            4,
            4096,
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
            &[0, 1, 2, 3],
            &mut inj,
            &mut tl,
            0.25,
            "ag",
        )
        .unwrap();
        assert_eq!(got.cost, want);
        assert_eq!(got.retries, 0);
        assert_eq!(got.retry_time, 0.0);
        assert_eq!(tl.spans(), clean.spans());
        assert_eq!(tl.counters(), clean.counters());
    }

    #[test]
    fn fallible_gather_retries_a_dropped_step() {
        use crate::fault::{FaultInjector, FaultPlan};
        let model = NetModel::infiniband_100g();
        let mut tl = Timeline::new();
        let mut inj = FaultInjector::new(FaultPlan::default().drop_step(0.0));
        let got = allgather_cost_traced_fallible(
            4,
            4096,
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
            &[0, 1, 2, 3],
            &mut inj,
            &mut tl,
            0.0,
            "ag",
        )
        .unwrap();
        let clean = allgather_cost(
            4,
            4096,
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );
        assert_eq!(got.cost, clean, "retries do not change the collective cost");
        assert_eq!(got.retries, 1);
        let step = balanced_steps(4, 4096, &model, AllgatherAlgo::Ring)[0];
        let want_retry = inj.policy().deadline(step.time, &model);
        assert_eq!(got.retry_time, want_retry);
        assert_eq!(tl.time_in(Category::Retry), want_retry);
        assert_eq!(tl.time_in(Category::Allgather), clean.time);
        assert_eq!(
            tl.wire_bytes(),
            clean.wire_bytes,
            "wasted attempts move no bytes"
        );
    }

    #[test]
    fn fallible_gather_confirms_a_killed_peer() {
        use crate::fault::{FaultInjector, FaultPlan};
        let model = NetModel::infiniband_100g();
        let mut tl = Timeline::new();
        let mut inj = FaultInjector::new(FaultPlan::default().kill(7, 0.0));
        let err = allgather_cost_traced_fallible(
            4,
            4096,
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
            &[3, 5, 7, 9],
            &mut inj,
            &mut tl,
            0.0,
            "ag",
        )
        .unwrap_err();
        assert_eq!(err.dead_slot, Some(2), "slot of node 7 in the communicator");
        assert_eq!(err.retries, inj.policy().max_attempts);
        let step = balanced_steps(4, 4096, &model, AllgatherAlgo::Ring)[0];
        assert_eq!(
            err.retry_time,
            inj.policy().detection_time(step.time, &model)
        );
        assert_eq!(tl.wire_bytes(), 0, "nothing completed");
        // Exhausted transient drops with nobody dead -> timeout, no culprit.
        let mut tl = Timeline::new();
        let mut inj = FaultInjector::new(
            FaultPlan::default()
                .drop_step(0.0)
                .drop_step(0.0)
                .drop_step(0.0),
        );
        let err = allgather_cost_traced_fallible(
            2,
            512,
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
            &[0, 1],
            &mut inj,
            &mut tl,
            0.0,
            "ag",
        )
        .unwrap_err();
        assert_eq!(err.dead_slot, None);
    }

    #[test]
    fn broadcast_records_dropped_wire_traffic() {
        let model = NetModel::infiniband_100g();
        let mut tl = Timeline::new();
        let t = broadcast_traced(&model, 8, 1 << 20, &mut tl, 0.0, "h2d broadcast");
        assert_eq!(t, broadcast_time(&model, 8, 1 << 20));
        assert_eq!(tl.wire_bytes(), 7 << 20);
        assert_eq!(tl.time_in(Category::Broadcast), t);
        // Single-node broadcast records nothing.
        let before = tl.spans().len();
        broadcast_traced(&model, 1, 1 << 20, &mut tl, 0.0, "noop");
        assert_eq!(tl.spans().len(), before);
    }
}
