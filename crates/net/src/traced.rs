//! Timeline-emitting wrappers around the collectives.
//!
//! Each wrapper performs (or models) the collective exactly as its
//! untraced counterpart — same arithmetic, same returned
//! [`CollectiveCost`] — and additionally records the event into a
//! [`Timeline`]: one authoritative depth-0 span on the network track whose
//! duration is the collective's total time, depth-1 child spans for the
//! individual exchange steps, and one [`WIRE_BYTES`] counter sample per
//! step.

use crate::collectives::{
    allgather_cost, allgather_with_steps, balanced_steps, broadcast_time, broadcast_wire_bytes,
    AllgatherAlgo, AllgatherPlacement, CollectiveCost, CollectiveStep,
};
use crate::model::NetModel;
use cucc_trace::{Category, Timeline, Track, WIRE_BYTES};

/// Lay one collective out on the timeline: parent span of `cost.time` at
/// `t0`, plus per-step children and wire-byte counters.
fn record(
    tl: &mut Timeline,
    t0: f64,
    label: &str,
    cost: &CollectiveCost,
    steps: &[CollectiveStep],
    staging_time: f64,
) {
    tl.span(label, Track::Network, Category::Allgather, t0, cost.time);
    let mut t = t0;
    for (k, step) in steps.iter().enumerate() {
        tl.child_span(
            format!("step {k}"),
            Track::Network,
            Category::Allgather,
            t,
            step.time,
        );
        if step.wire_bytes > 0 {
            tl.counter(WIRE_BYTES, Track::Network, t, step.wire_bytes);
        }
        t += step.time;
    }
    if staging_time > 0.0 {
        tl.child_span(
            "staging copy",
            Track::Network,
            Category::Allgather,
            t,
            staging_time,
        );
    }
}

/// Functional [`crate::collectives::allgather`] that records the collective
/// into `tl` starting at absolute simulated time `t0`.
#[allow(clippy::too_many_arguments)]
pub fn allgather_traced(
    regions: &mut [&mut [u8]],
    seg_sizes: &[u64],
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> CollectiveCost {
    let mut steps = Vec::new();
    let cost = allgather_with_steps(regions, seg_sizes, model, algo, placement, &mut steps);
    let staging = if placement == AllgatherPlacement::OutOfPlace {
        model.local_copy_time(seg_sizes.iter().copied().max().unwrap_or(0))
    } else {
        0.0
    };
    record(tl, t0, label, &cost, &steps, staging);
    cost
}

/// Analytic [`allgather_cost`] that records the modeled collective into
/// `tl` starting at absolute simulated time `t0`.
#[allow(clippy::too_many_arguments)]
pub fn allgather_cost_traced(
    n: usize,
    unit: u64,
    model: &NetModel,
    algo: AllgatherAlgo,
    placement: AllgatherPlacement,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> CollectiveCost {
    let cost = allgather_cost(n, unit, model, algo, placement);
    let steps = balanced_steps(n, unit, model, algo);
    let staging = if placement == AllgatherPlacement::OutOfPlace {
        model.local_copy_time(unit)
    } else {
        0.0
    };
    record(tl, t0, label, &cost, &steps, staging);
    cost
}

/// [`broadcast_time`] that records the broadcast — span plus the wire
/// traffic the legacy accounting dropped — into `tl` at time `t0`.
pub fn broadcast_traced(
    model: &NetModel,
    n: usize,
    bytes: u64,
    tl: &mut Timeline,
    t0: f64,
    label: &str,
) -> f64 {
    let time = broadcast_time(model, n, bytes);
    let wire = broadcast_wire_bytes(n, bytes);
    if time > 0.0 || wire > 0 {
        tl.span(label, Track::Network, Category::Broadcast, t0, time);
        if wire > 0 {
            tl.counter(WIRE_BYTES, Track::Network, t0, wire);
        }
    }
    time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_allgather_matches_untraced_and_emits_steps() {
        let model = NetModel::infiniband_100g();
        let n = 4usize;
        let seg = 256usize;
        let mk = || {
            let mut regions: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; n * seg]).collect();
            for (i, r) in regions.iter_mut().enumerate() {
                r[i * seg..(i + 1) * seg].fill(i as u8 + 1);
            }
            regions
        };

        let mut plain = mk();
        let mut views: Vec<&mut [u8]> = plain.iter_mut().map(|r| r.as_mut_slice()).collect();
        let want = crate::collectives::allgather(
            &mut views,
            &vec![seg as u64; n],
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
        );

        let mut tl = Timeline::new();
        let mut traced = mk();
        let mut views: Vec<&mut [u8]> = traced.iter_mut().map(|r| r.as_mut_slice()).collect();
        let got = allgather_traced(
            &mut views,
            &vec![seg as u64; n],
            &model,
            AllgatherAlgo::Ring,
            AllgatherPlacement::InPlace,
            &mut tl,
            0.0,
            "allgather",
        );
        assert_eq!(got, want);
        assert_eq!(plain, traced);
        // Parent span carries the authoritative time; counters the wire bytes.
        assert_eq!(tl.time_in(Category::Allgather), want.time);
        assert_eq!(tl.wire_bytes(), want.wire_bytes);
        // n−1 ring steps as children plus the parent.
        assert_eq!(tl.spans().len(), n);
    }

    #[test]
    fn traced_cost_matches_untraced() {
        let model = NetModel::infiniband_100g();
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
        ] {
            for n in [1usize, 2, 5, 8] {
                let mut tl = Timeline::new();
                let want = allgather_cost(n, 4096, &model, algo, AllgatherPlacement::OutOfPlace);
                let got = allgather_cost_traced(
                    n,
                    4096,
                    &model,
                    algo,
                    AllgatherPlacement::OutOfPlace,
                    &mut tl,
                    1.5,
                    "ag",
                );
                assert_eq!(got, want, "{algo:?} n={n}");
                assert_eq!(tl.wire_bytes(), want.wire_bytes, "{algo:?} n={n}");
                assert_eq!(tl.time_in(Category::Allgather), want.time);
            }
        }
    }

    #[test]
    fn broadcast_records_dropped_wire_traffic() {
        let model = NetModel::infiniband_100g();
        let mut tl = Timeline::new();
        let t = broadcast_traced(&model, 8, 1 << 20, &mut tl, 0.0, "h2d broadcast");
        assert_eq!(t, broadcast_time(&model, 8, 1 << 20));
        assert_eq!(tl.wire_bytes(), 7 << 20);
        assert_eq!(tl.time_in(Category::Broadcast), t);
        // Single-node broadcast records nothing.
        let before = tl.spans().len();
        broadcast_traced(&model, 1, 1 << 20, &mut tl, 0.0, "noop");
        assert_eq!(tl.spans().len(), before);
    }
}
