//! Deterministic fault injection for the simulated interconnect.
//!
//! A [`FaultPlan`] is a declarative script of failures pinned to simulated
//! time: kill a node, slow it down (straggler), or drop a collective step.
//! Because the plan is keyed on the *simulated* clock and the only source of
//! randomness is a seeded xorshift generator, a faulty run replays
//! bit-identically — the same events fire at the same sim times with the
//! same retry/backoff layout on the timeline.
//!
//! The [`FaultInjector`] is the runtime half: it owns the plan plus the
//! mutable consumption state (which one-shot drops already fired, the RNG
//! cursor) and answers the three questions the collective layer asks at each
//! step — *is a participant dead yet?*, *is this step dropped?*, *how much
//! slower is this node right now?*

use crate::model::NetModel;
use std::fmt;

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node stops responding permanently from the event time on —
    /// unless a later admitted `Join` for the same node supersedes the
    /// kill (the replacement process is a fresh, healthy peer).
    Kill {
        /// Logical node that dies.
        node: u32,
    },
    /// The node keeps working but every compute span it runs after the
    /// event time is stretched by `factor` (a straggler).
    Straggle {
        /// Logical node that slows down.
        node: u32,
        /// Multiplier applied to the node's span durations (> 1 slows).
        factor: f64,
    },
    /// One collective step is lost and must be retried (a transient link
    /// fault). Consumed by the first step at or after the event time.
    DropStep,
    /// A node joins (or rejoins) the cluster from the event time on. The
    /// runtime enlarges the communicator, transfers state to the joiner and
    /// re-partitions work onto the new shape — or defers the join to the
    /// next launch boundary when the paper's §6 balance rule forbids
    /// re-partitioning mid-collective. One-shot: consumed when admitted.
    Join {
        /// Logical node that joins. An id below the current cluster size
        /// revives a dead slot; an id equal to the cluster size grows it.
        node: u32,
    },
}

/// One scripted fault: a kind plus the simulated time it takes effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time (seconds) at which the fault becomes active.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Kill { node } => write!(f, "kill:node={node}@t={}", self.at),
            FaultKind::Straggle { node, factor } => {
                write!(f, "delay:node={node}@t={},factor={factor}", self.at)
            }
            FaultKind::DropStep => write!(f, "drop:step@t={}", self.at),
            FaultKind::Join { node } => write!(f, "join:node={node}@t={}", self.at),
        }
    }
}

/// Per-step retry discipline for collectives under faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// The per-step deadline is `timeout_factor × modeled step time` plus
    /// one `α + o` grace so zero-byte steps still get a positive deadline.
    pub timeout_factor: f64,
    /// Attempts before a peer is declared dead (attempt `k` waits
    /// `deadline × 2^(k−1)`, i.e. exponential backoff).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_factor: 2.0,
            max_attempts: 3,
        }
    }
}

impl RetryPolicy {
    /// Deadline for one attempt of a step whose modeled duration is
    /// `step_time`: `timeout_factor × step + (α + o)`.
    ///
    /// This is the **only** place the deadline formula lives — full
    /// Allgathers and partial gathers both step through
    /// `traced::run_fallible`, which calls here per step.
    pub fn deadline(&self, step_time: f64, model: &NetModel) -> f64 {
        self.timeout_factor * step_time + (model.alpha + model.overhead)
    }

    /// Total time burned confirming a dead peer on one step: the sum of all
    /// `max_attempts` backed-off deadlines, `deadline × (2^max − 1)`.
    pub fn detection_time(&self, step_time: f64, model: &NetModel) -> f64 {
        let d = self.deadline(step_time, model);
        d * ((1u64 << self.max_attempts) - 1) as f64
    }
}

/// A deterministic, replayable script of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scripted events.
    pub events: Vec<FaultEvent>,
    /// Seed for the internal RNG (random step drops).
    pub seed: u64,
    /// Probability that any individual collective step is dropped, on top
    /// of the scripted events. 0.0 disables random drops.
    pub drop_p: f64,
    /// Retry/timeout discipline.
    pub retry: RetryPolicy,
    /// Whether a launch may fall back to replicated execution on survivors
    /// when re-partitioning would break Allgather balance. When false such
    /// a launch fails with `Degraded` instead.
    pub allow_degraded: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            seed: 0xC0CC_FA17,
            drop_p: 0.0,
            retry: RetryPolicy::default(),
            allow_degraded: true,
        }
    }
}

impl FaultPlan {
    /// A plan with no events and no random drops (faults disabled).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan can never fire a fault.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.drop_p == 0.0
    }

    /// Add a node kill at simulated time `at`.
    pub fn kill(mut self, node: u32, at: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Kill { node },
        });
        self
    }

    /// Add a straggler: `node` runs `factor`× slower from `at` on.
    pub fn straggle(mut self, node: u32, at: f64, factor: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Straggle { node, factor },
        });
        self
    }

    /// Add a one-shot collective step drop at simulated time `at`.
    pub fn drop_step(mut self, at: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DropStep,
        });
        self
    }

    /// Add a node join at simulated time `at`.
    pub fn join(mut self, node: u32, at: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Join { node },
        });
        self
    }

    /// Parse one CLI fault spec and append it. Accepted forms:
    ///
    /// * `kill:node=3@t=0.5`
    /// * `delay:node=2@t=0.1,factor=3`
    /// * `drop:step@t=0.2`
    /// * `join:node=4@t=0.5`
    pub fn with_spec(mut self, spec: &str) -> Result<Self, String> {
        self.events.push(parse_event(spec)?);
        Ok(self)
    }
}

/// Parse a `kill:node=3@t=0.5`- or `join:node=4@t=0.5`-style fault spec.
pub fn parse_event(spec: &str) -> Result<FaultEvent, String> {
    let err = |m: &str| format!("bad fault spec `{spec}`: {m}");
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| err("expected `kind:...`"))?;
    let (target, params) = rest
        .split_once('@')
        .ok_or_else(|| err("expected `...@t=<time>`"))?;
    let mut at: Option<f64> = None;
    let mut factor: Option<f64> = None;
    for p in params.split(',') {
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| err("expected `key=value`"))?;
        let v: f64 = v.parse().map_err(|_| err("non-numeric value"))?;
        match k {
            "t" => at = Some(v),
            "factor" => factor = Some(v),
            other => return Err(err(&format!("unknown key `{other}`"))),
        }
    }
    let at = at.ok_or_else(|| err("missing `t=<time>`"))?;
    if !at.is_finite() || at < 0.0 {
        return Err(err("time must be finite and non-negative"));
    }
    let node = || -> Result<u32, String> {
        let v = target
            .strip_prefix("node=")
            .ok_or_else(|| err("expected `node=<id>`"))?;
        v.parse().map_err(|_| err("bad node id"))
    };
    let kind = match kind {
        "kill" => FaultKind::Kill { node: node()? },
        "delay" => {
            let factor = factor.unwrap_or(2.0);
            if !(factor.is_finite() && factor > 0.0) {
                return Err(err("factor must be finite and positive"));
            }
            FaultKind::Straggle {
                node: node()?,
                factor,
            }
        }
        "drop" => {
            if target != "step" {
                return Err(err("expected `drop:step@t=...`"));
            }
            FaultKind::DropStep
        }
        "join" => FaultKind::Join { node: node()? },
        other => {
            return Err(err(&format!(
                "unknown fault kind `{other}` (want kill|delay|drop|join)"
            )))
        }
    };
    Ok(FaultEvent { at, kind })
}

/// Seeded xorshift64* generator — deterministic, dependency-free.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        XorShift(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runtime state of a fault plan: the script plus consumption bookkeeping.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: XorShift,
    /// One flag per event; one-shot events (drops) set it when they fire.
    used: Vec<bool>,
}

impl FaultInjector {
    /// Build an injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let used = vec![false; plan.events.len()];
        let rng = XorShift::new(plan.seed);
        FaultInjector { plan, rng, used }
    }

    /// The plan's retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.plan.retry
    }

    /// Whether degraded (replicated-on-survivors) completion is allowed.
    pub fn allow_degraded(&self) -> bool {
        self.plan.allow_degraded
    }

    /// Slot (index into `participants`) of the first participant with a
    /// kill event active at simulated time `t`, if any. Kills absorbed by
    /// a later admitted join ([`FaultInjector::absorb_kills`]) no longer
    /// count.
    pub fn kill_pending(&self, participants: &[u32], t: f64) -> Option<usize> {
        for (i, ev) in self.plan.events.iter().enumerate() {
            if let FaultKind::Kill { node } = ev.kind {
                if !self.used[i] && ev.at <= t {
                    if let Some(slot) = participants.iter().position(|&p| p == node) {
                        return Some(slot);
                    }
                }
            }
        }
        None
    }

    /// Consume every kill event for `node` that is ripe at time `t`. An
    /// admitted join supersedes the kills that took the slot down — the
    /// replacement process is not killed by the event that killed its
    /// predecessor. Returns how many kills were absorbed.
    pub fn absorb_kills(&mut self, node: u32, t: f64) -> u32 {
        let mut absorbed = 0;
        for (i, ev) in self.plan.events.iter().enumerate() {
            if ev.kind == (FaultKind::Kill { node }) && !self.used[i] && ev.at <= t {
                self.used[i] = true;
                absorbed += 1;
            }
        }
        absorbed
    }

    /// True if `node` has a kill event active at time `t`.
    pub fn killed(&self, node: u32, t: f64) -> bool {
        self.kill_pending(&[node], t).is_some()
    }

    /// Stretch a compute span of base duration `dur` starting at `t_start`
    /// on `node` by any active stragglers. A straggler taking effect
    /// mid-span stretches only the remainder.
    pub fn stretch(&self, node: u32, t_start: f64, dur: f64) -> f64 {
        let mut d = dur;
        for ev in &self.plan.events {
            if let FaultKind::Straggle { node: n, factor } = ev.kind {
                if n != node {
                    continue;
                }
                if ev.at <= t_start {
                    d *= factor;
                } else if ev.at < t_start + d {
                    let done = ev.at - t_start;
                    d = done + (d - done) * factor;
                }
            }
        }
        d
    }

    /// Whether the collective step starting at time `t` is dropped.
    /// Scripted one-shot drops are consumed in event order; on top of
    /// those, each query rolls the seeded RNG against `drop_p` (when
    /// `drop_p == 0.0` the RNG is never advanced, keeping fault-free
    /// replays byte-stable).
    pub fn take_drop(&mut self, t: f64) -> bool {
        for (i, ev) in self.plan.events.iter().enumerate() {
            if ev.kind == FaultKind::DropStep && !self.used[i] && ev.at <= t {
                self.used[i] = true;
                return true;
            }
        }
        self.plan.drop_p > 0.0 && self.rng.next_f64() < self.plan.drop_p
    }

    /// Nodes with an unconsumed join event ripe at simulated time `t`, in
    /// event order. Peeking does not consume — the runtime decides whether
    /// a ripe join is admissible (§6 balance) before calling [`take_join`].
    ///
    /// [`take_join`]: FaultInjector::take_join
    pub fn joins_pending(&self, t: f64) -> Vec<u32> {
        let mut out = Vec::new();
        for (i, ev) in self.plan.events.iter().enumerate() {
            if let FaultKind::Join { node } = ev.kind {
                if !self.used[i] && ev.at <= t {
                    out.push(node);
                }
            }
        }
        out
    }

    /// Consume the first unconsumed join event for `node` that is ripe at
    /// time `t`. Returns false when no such event exists.
    pub fn take_join(&mut self, node: u32, t: f64) -> bool {
        for (i, ev) in self.plan.events.iter().enumerate() {
            if ev.kind == (FaultKind::Join { node }) && !self.used[i] && ev.at <= t {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Checkpoint cursor: the RNG state plus the per-event consumption
    /// flags. Restoring this cursor into a fresh injector over the same
    /// plan resumes the fault session exactly where it left off — consumed
    /// one-shot events never refire and random drops continue the same
    /// deterministic sequence.
    pub fn cursor(&self) -> (u64, Vec<bool>) {
        (self.rng.0, self.used.clone())
    }

    /// Restore a checkpoint cursor captured by [`cursor`]. Fails when the
    /// flag count does not match the plan's event count (the restored
    /// session was given a different fault plan).
    ///
    /// [`cursor`]: FaultInjector::cursor
    pub fn restore_cursor(&mut self, rng: u64, used: &[bool]) -> Result<(), String> {
        if used.len() != self.plan.events.len() {
            return Err(format!(
                "fault cursor has {} event flags but the plan has {} events",
                used.len(),
                self.plan.events.len()
            ));
        }
        self.rng = XorShift(rng);
        self.used = used.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_spec_forms() {
        assert_eq!(
            parse_event("kill:node=3@t=0.5").unwrap(),
            FaultEvent {
                at: 0.5,
                kind: FaultKind::Kill { node: 3 }
            }
        );
        assert_eq!(
            parse_event("delay:node=2@t=0.1,factor=3").unwrap(),
            FaultEvent {
                at: 0.1,
                kind: FaultKind::Straggle {
                    node: 2,
                    factor: 3.0
                }
            }
        );
        assert_eq!(
            parse_event("drop:step@t=0.2").unwrap(),
            FaultEvent {
                at: 0.2,
                kind: FaultKind::DropStep
            }
        );
        assert_eq!(
            parse_event("join:node=4@t=0.5").unwrap(),
            FaultEvent {
                at: 0.5,
                kind: FaultKind::Join { node: 4 }
            }
        );
        for bad in [
            "kill",
            "kill:node=3",
            "kill:node=x@t=0.5",
            "kill:node=3@t=-1",
            "delay:node=2@t=0.1,factor=0",
            "drop:node=1@t=0.2",
            "join:step@t=0.2",
            "explode:node=1@t=0.2",
        ] {
            assert!(parse_event(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn spec_display_round_trips() {
        for spec in [
            "kill:node=3@t=0.5",
            "delay:node=2@t=0.1,factor=3",
            "drop:step@t=0.2",
            "join:node=4@t=0.5",
        ] {
            let ev = parse_event(spec).unwrap();
            assert_eq!(parse_event(&ev.to_string()).unwrap(), ev);
        }
    }

    #[test]
    fn kills_fire_only_at_their_time_and_for_participants() {
        let inj = FaultInjector::new(FaultPlan::default().kill(2, 0.5));
        assert_eq!(inj.kill_pending(&[0, 1, 2, 3], 0.4), None);
        assert_eq!(inj.kill_pending(&[0, 1, 2, 3], 0.5), Some(2));
        // After eviction node 2 is no longer a participant.
        assert_eq!(inj.kill_pending(&[0, 1, 3], 0.9), None);
        assert!(inj.killed(2, 0.5));
        assert!(!inj.killed(1, 0.5));
    }

    #[test]
    fn straggler_stretches_whole_and_partial_spans() {
        let inj = FaultInjector::new(FaultPlan::default().straggle(1, 1.0, 3.0));
        // Fully after the event: ×3.
        assert_eq!(inj.stretch(1, 2.0, 4.0), 12.0);
        // Fully before the event: untouched.
        assert_eq!(inj.stretch(1, 0.0, 0.5), 0.5);
        // Straddling: 0.5 done + 1.5 remaining × 3.
        assert_eq!(inj.stretch(1, 0.5, 2.0), 0.5 + 1.5 * 3.0);
        // Other nodes untouched.
        assert_eq!(inj.stretch(0, 2.0, 4.0), 4.0);
    }

    #[test]
    fn scripted_drops_are_one_shot_and_rng_is_deterministic() {
        let mut inj = FaultInjector::new(FaultPlan::default().drop_step(0.2));
        assert!(!inj.take_drop(0.1));
        assert!(inj.take_drop(0.3));
        assert!(!inj.take_drop(0.4), "drop is consumed");

        let roll = |seed| {
            let mut i = FaultInjector::new(FaultPlan {
                drop_p: 0.5,
                seed,
                ..FaultPlan::default()
            });
            (0..64).map(|k| i.take_drop(k as f64)).collect::<Vec<_>>()
        };
        assert_eq!(roll(7), roll(7), "same seed, same drops");
        assert_ne!(roll(7), roll(8), "different seed, different drops");
    }

    #[test]
    fn joins_are_one_shot_and_peekable() {
        let mut inj = FaultInjector::new(FaultPlan::default().join(4, 0.5).join(2, 0.5));
        assert!(inj.joins_pending(0.4).is_empty());
        // Peeking does not consume.
        assert_eq!(inj.joins_pending(0.6), vec![4, 2]);
        assert_eq!(inj.joins_pending(0.6), vec![4, 2]);
        assert!(inj.take_join(4, 0.6));
        assert_eq!(inj.joins_pending(0.6), vec![2]);
        assert!(!inj.take_join(4, 0.9), "join is consumed");
        assert!(inj.take_join(2, 0.9));
        assert!(inj.joins_pending(1e9).is_empty());
    }

    #[test]
    fn cursor_round_trips_consumption_state() {
        let plan = FaultPlan {
            drop_p: 0.5,
            ..FaultPlan::default()
        }
        .drop_step(0.1)
        .join(3, 0.2);
        let mut inj = FaultInjector::new(plan.clone());
        assert!(inj.take_drop(0.15));
        assert!(inj.take_join(3, 0.25));
        let _ = inj.take_drop(0.3); // advance the RNG
        let (rng, used) = inj.cursor();

        let mut restored = FaultInjector::new(plan);
        restored.restore_cursor(rng, &used).unwrap();
        // Same RNG state → same continuation of the drop sequence.
        for k in 0..32 {
            let t = 1.0 + k as f64;
            assert_eq!(restored.take_drop(t), inj.take_drop(t));
        }
        assert!(
            restored.joins_pending(1e9).is_empty(),
            "join stays consumed"
        );
        assert_eq!(restored.cursor().1.len(), 2);

        let mut wrong = FaultInjector::new(FaultPlan::none());
        assert!(wrong.restore_cursor(rng, &used).is_err());
    }

    #[test]
    fn retry_deadline_and_detection_math() {
        let model = NetModel::infiniband_100g();
        let p = RetryPolicy::default();
        let d = p.deadline(1e-3, &model);
        assert_eq!(d, 2.0 * 1e-3 + model.alpha + model.overhead);
        // 3 attempts: d + 2d + 4d = 7d.
        assert_eq!(p.detection_time(1e-3, &model), d * 7.0);
        // Zero-time steps still get the α+o grace.
        assert!(p.deadline(0.0, &model) > 0.0);
    }
}
