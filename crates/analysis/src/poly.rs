//! Multivariate integer polynomials over launch-time symbols.
//!
//! The Allgather-distributable analysis treats kernel scalar parameters and
//! launch dimensions symbolically ("metadata values are based on symbolic
//! analysis", paper §5). Affine coefficients of write indices are therefore
//! polynomials over the symbols in [`Sym`], evaluated to concrete integers
//! once the launch configuration and arguments are known.

use cucc_ir::{Axis, ParamId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A launch-time symbol: fixed for the whole launch, identical on every
/// thread and block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sym {
    /// A scalar kernel parameter.
    Param(ParamId),
    /// `blockDim.{x,y,z}`
    BlockDim(Axis),
    /// `gridDim.{x,y,z}`
    GridDim(Axis),
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Param(p) => write!(f, "{p}"),
            Sym::BlockDim(a) => write!(f, "blockDim.{a}"),
            Sym::GridDim(a) => write!(f, "gridDim.{a}"),
        }
    }
}

/// Monomial: a sorted multiset of symbols (e.g. `n·blockDim.x`).
type Monomial = Vec<Sym>;

/// A multivariate polynomial with `i128` coefficients, kept in canonical
/// form (sorted monomials, no zero coefficients) so that structural equality
/// is semantic equality.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Poly {
    /// Map monomial → coefficient. The empty monomial is the constant term.
    terms: BTreeMap<Monomial, i128>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// Constant polynomial.
    pub fn constant(c: i128) -> Poly {
        let mut p = Poly::zero();
        if c != 0 {
            p.terms.insert(Vec::new(), c);
        }
        p
    }

    /// The polynomial consisting of a single symbol.
    pub fn sym(s: Sym) -> Poly {
        let mut p = Poly::zero();
        p.terms.insert(vec![s], 1);
        p
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Constant value if the polynomial has no symbolic terms.
    pub fn as_const(&self) -> Option<i128> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Vec::new() as &Monomial).copied(),
            _ => None,
        }
    }

    /// Add two polynomials.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            let e = out.terms.entry(m.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(m);
            }
        }
        out
    }

    /// Subtract.
    pub fn sub(&self, rhs: &Poly) -> Poly {
        self.add(&rhs.neg())
    }

    /// Negate.
    pub fn neg(&self) -> Poly {
        Poly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), -c)).collect(),
        }
    }

    /// Multiply.
    pub fn mul(&self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                let mut m = ma.clone();
                m.extend(mb.iter().copied());
                m.sort();
                let e = out.terms.entry(m.clone()).or_insert(0);
                *e += ca * cb;
                if *e == 0 {
                    out.terms.remove(&m);
                }
            }
        }
        out
    }

    /// Multiply by an integer constant.
    pub fn scale(&self, k: i128) -> Poly {
        if k == 0 {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), c * k)).collect(),
        }
    }

    /// Evaluate under a symbol assignment. Returns `None` if a symbol is
    /// missing from the environment.
    pub fn eval(&self, env: &impl Fn(Sym) -> Option<i128>) -> Option<i128> {
        let mut total: i128 = 0;
        for (m, c) in &self.terms {
            let mut v = *c;
            for s in m {
                v = v.checked_mul(env(*s)?)?;
            }
            total = total.checked_add(v)?;
        }
        Some(total)
    }

    /// The symbols mentioned by the polynomial.
    pub fn symbols(&self) -> Vec<Sym> {
        let mut out: Vec<Sym> = self.terms.keys().flatten().copied().collect();
        out.sort();
        out.dedup();
        out
    }

    /// Total degree (0 for constants and zero).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(|m| m.len()).max().unwrap_or(0)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if !first {
                f.write_str(if *c >= 0 { " + " } else { " - " })?;
            } else if *c < 0 {
                f.write_str("-")?;
            }
            first = false;
            let mag = c.unsigned_abs();
            if m.is_empty() {
                write!(f, "{mag}")?;
            } else {
                if mag != 1 {
                    write!(f, "{mag}*")?;
                }
                for (i, s) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str("*")?;
                    }
                    write!(f, "{s}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> Sym {
        Sym::Param(ParamId(0))
    }
    fn bdx() -> Sym {
        Sym::BlockDim(Axis::X)
    }

    #[test]
    fn canonical_equality() {
        // (n + 2) + (n - 2) == 2n
        let a = Poly::sym(n()).add(&Poly::constant(2));
        let b = Poly::sym(n()).sub(&Poly::constant(2));
        assert_eq!(a.add(&b), Poly::sym(n()).scale(2));
        // n - n == 0
        assert!(Poly::sym(n()).sub(&Poly::sym(n())).is_zero());
    }

    #[test]
    fn multiplication_commutes_and_sorts_monomials() {
        let p = Poly::sym(n()).mul(&Poly::sym(bdx()));
        let q = Poly::sym(bdx()).mul(&Poly::sym(n()));
        assert_eq!(p, q);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn distributivity() {
        // (n + 1)(n - 1) == n^2 - 1
        let p = Poly::sym(n()).add(&Poly::constant(1));
        let q = Poly::sym(n()).sub(&Poly::constant(1));
        let sq = Poly::sym(n()).mul(&Poly::sym(n())).sub(&Poly::constant(1));
        assert_eq!(p.mul(&q), sq);
    }

    #[test]
    fn evaluation() {
        // 3*n*blockDim.x + 7 at n=5, bd=4 => 67
        let p = Poly::sym(n())
            .mul(&Poly::sym(bdx()))
            .scale(3)
            .add(&Poly::constant(7));
        let v = p.eval(&|s| match s {
            Sym::Param(_) => Some(5),
            Sym::BlockDim(_) => Some(4),
            _ => None,
        });
        assert_eq!(v, Some(67));
        assert_eq!(p.eval(&|_| None), None);
    }

    #[test]
    fn as_const() {
        assert_eq!(Poly::constant(9).as_const(), Some(9));
        assert_eq!(Poly::zero().as_const(), Some(0));
        assert_eq!(Poly::sym(n()).as_const(), None);
    }

    #[test]
    fn display_readable() {
        let p = Poly::sym(n()).scale(2).sub(&Poly::constant(3));
        let s = p.to_string();
        assert!(s.contains("2*p0"), "{s}");
        assert!(s.contains("3"), "{s}");
    }

    #[test]
    fn symbols_listed() {
        let p = Poly::sym(n()).mul(&Poly::sym(bdx()));
        assert_eq!(p.symbols(), vec![n(), bdx()]);
    }
}
