//! Kernel lint pass: dead-code and style findings on top of the range
//! analysis.
//!
//! The verifier ([`crate::verify`]) answers "can this launch fault or
//! race?"; this module answers the softer question "is this kernel doing
//! work that cannot matter?". All findings are `Severity::Info` — a lint
//! never fails a build — and reuse the verifier's [`Diagnostic`] shape so
//! `cucc lint`, `cucc check` and `cucc analyze` share one rendering.
//!
//! Finding catalog (each message starts with its stable kind tag):
//!
//! * `dead store` — a store to a `__shared__` or local array that the
//!   kernel never reads back: the array is write-only, so the stores (and
//!   any barrier protecting them) are dead work.
//! * `redundant barrier` — a `__syncthreads()` in a kernel with no shared
//!   memory accesses at all: there is nothing to synchronize.
//! * `uniform branch barrier` — a barrier nested under `if`s whose
//!   conditions are all provably thread-uniform: legal (no divergence), but
//!   the barrier can be hoisted out of the conditional, where the phase
//!   splitter handles it without per-phase condition re-evaluation.
//! * `constant condition` — an `if` whose condition the range analysis
//!   proves always-true or always-false *under this launch* (attributed to
//!   a source line through the compiler's `if`-site table — `?:` selects
//!   also lower to conditional jumps, so jump-counting alone would
//!   misattribute).
//! * `unreachable code` — compiled instructions the abstract interpreter
//!   proves can never execute under this launch (dead branches of constant
//!   conditions, code after a uniform `return`).
//!
//! The launch-graph analogue (a statically dead *launch*) lives in
//! `cucc-core::graph`, which owns the graph structure; it reuses this
//! module's diagnostic shape.

use crate::range::{analyze_ranges, param_slot_extents, RangeAnalysis};
use crate::variance::{expr_variance, var_variance, Variance};
use crate::verify::{Diagnostic, Rule, Severity, SiteRef};
use cucc_exec::{Arg, Program};
use cucc_ir::{Expr, Kernel, LaunchConfig, MemRef, SourceMap, Stmt};

/// Result of [`lint_kernel`]: findings plus the range-analysis coverage
/// summary (`cucc check --builtin` prints the latter per kernel).
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, in catalog order (every severity is `Info`).
    pub diagnostics: Vec<Diagnostic>,
    /// `(certified, total)` reachable memory accesses.
    pub cert_stats: (usize, usize),
    /// `(reachable, total)` compiled instructions.
    pub reach_stats: (usize, usize),
}

impl LintReport {
    /// One-line range/lint summary (used by `cucc check --builtin`).
    pub fn summary(&self) -> String {
        let (c, t) = self.cert_stats;
        let (r, n) = self.reach_stats;
        format!(
            "certified {c}/{t} accesses, reachable {r}/{n} insts, {} lint finding(s)",
            self.diagnostics.len()
        )
    }

    /// Multi-line human rendering in the verifier's format.
    pub fn render(&self) -> String {
        let mut out = format!("  range   : {}\n", self.summary());
        for d in &self.diagnostics {
            out += &format!("  {d}\n");
        }
        if self.diagnostics.is_empty() {
            out += "  no lint findings\n";
        }
        out
    }
}

/// Run every kernel lint at one launch. `extents` are per-parameter element
/// counts (the [`crate::verify::verify_launch`] convention). Fails only
/// when the kernel does not compile.
pub fn lint_kernel(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    extents: &[Option<u64>],
    map: Option<&SourceMap>,
) -> Result<LintReport, String> {
    let prog = Program::compile(kernel, launch, args).map_err(|e| e.to_string())?;
    let slot_extents = param_slot_extents(&prog, args, extents);
    let ra = analyze_ranges(&prog, &slot_extents);

    let mut diags = Vec::new();
    lint_dead_stores(kernel, map, &mut diags);
    lint_barriers(kernel, map, &mut diags);
    lint_constant_conditions(&prog, &ra, map, &mut diags);
    lint_unreachable(&ra, &mut diags);

    let reachable = ra.reachable.iter().filter(|r| **r).count();
    Ok(LintReport {
        diagnostics: diags,
        cert_stats: ra.stats(),
        reach_stats: (reachable, ra.reachable.len()),
    })
}

fn info(msg: String) -> Diagnostic {
    Diagnostic::new(Rule::Lint, Severity::Info, msg)
}

// ------------------------------------------------------------ dead store --

/// Name of a shared/local array, for messages.
fn array_name(kernel: &Kernel, mem: MemRef) -> Option<&str> {
    match mem {
        MemRef::Shared(i) => kernel.shared.get(i as usize).map(|d| d.name.as_str()),
        MemRef::Local(i) => kernel.locals.get(i as usize).map(|d| d.name.as_str()),
        MemRef::Global(_) => None,
    }
}

/// Stores to shared/local arrays the kernel never reads. Global buffers are
/// exempt: their stores are the kernel's observable output.
fn lint_dead_stores(kernel: &Kernel, map: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    use std::collections::HashSet;
    let mut read: HashSet<MemRef> = HashSet::new();
    kernel.visit_stmts(&mut |s| {
        // Atomics read-modify-write their target.
        if let Stmt::AtomicRmw { mem, .. } = s {
            read.insert(*mem);
        }
        s.visit_exprs(&mut |e| {
            e.visit(&mut |e| {
                if let Expr::Load { mem, .. } = e {
                    read.insert(*mem);
                }
            });
        });
    });
    // Pre-order walk over non-global writes, tracking the shared-write
    // ordinal for source-line attribution.
    let mut ordinal = 0usize;
    kernel.visit_stmts(&mut |s| {
        let (Stmt::Store { mem, .. } | Stmt::AtomicRmw { mem, .. }) = s else {
            return;
        };
        if matches!(mem, MemRef::Global(_)) {
            return;
        }
        if !read.contains(mem) {
            let name = array_name(kernel, *mem).unwrap_or("?");
            let mut d = info(format!(
                "dead store: `{name}` is written but never read — the store (and any \
                 barrier ordering it) is dead work"
            ));
            d.site = Some(SiteRef {
                buffer: name.to_string(),
                ordinal,
                line: map.and_then(|m| m.shared_write_lines.get(ordinal).copied()),
            });
            out.push(d);
        }
        ordinal += 1;
    });
}

// -------------------------------------------------------------- barriers --

/// Redundant and uniformly-guarded barriers.
fn lint_barriers(kernel: &Kernel, map: Option<&SourceMap>, out: &mut Vec<Diagnostic>) {
    // Does the kernel touch shared memory at all?
    let mut touches_shared = false;
    kernel.visit_stmts(&mut |s| {
        if let Stmt::Store { mem, .. } | Stmt::AtomicRmw { mem, .. } = s {
            touches_shared |= matches!(mem, MemRef::Shared(_));
        }
        s.visit_exprs(&mut |e| {
            e.visit(&mut |e| {
                if let Expr::Load {
                    mem: MemRef::Shared(_),
                    ..
                } = e
                {
                    touches_shared = true;
                }
            });
        });
    });
    let variance = var_variance(kernel);
    let mut ordinal = 0usize;
    walk_barriers(
        &kernel.body,
        &variance,
        0,
        touches_shared,
        map,
        &mut ordinal,
        out,
    );
}

fn walk_barriers(
    stmts: &[Stmt],
    variance: &[Variance],
    uniform_depth: usize,
    touches_shared: bool,
    map: Option<&SourceMap>,
    ordinal: &mut usize,
    out: &mut Vec<Diagnostic>,
) {
    for s in stmts {
        match s {
            Stmt::SyncThreads => {
                let mut d = None;
                if !touches_shared {
                    d = Some(info(
                        "redundant barrier: the kernel never accesses shared memory, so \
                         `__syncthreads()` has nothing to order"
                            .into(),
                    ));
                } else if uniform_depth > 0 {
                    d = Some(info(format!(
                        "uniform branch barrier: `__syncthreads()` sits under {uniform_depth} \
                         provably thread-uniform condition(s) — hoisting it out of the \
                         conditional avoids per-phase condition re-evaluation"
                    )));
                }
                if let Some(mut d) = d {
                    d.site = Some(SiteRef {
                        buffer: String::new(),
                        ordinal: *ordinal,
                        line: map.and_then(|m| m.barrier_lines.get(*ordinal).copied()),
                    });
                    out.push(d);
                }
                *ordinal += 1;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // A thread-variant branch containing a barrier is the
                // verifier's MUST finding, not a lint; only count uniform
                // nesting here.
                let depth = if expr_variance(cond, variance).thread {
                    uniform_depth
                } else {
                    uniform_depth + 1
                };
                walk_barriers(
                    then_body,
                    variance,
                    depth,
                    touches_shared,
                    map,
                    ordinal,
                    out,
                );
                walk_barriers(
                    else_body,
                    variance,
                    depth,
                    touches_shared,
                    map,
                    ordinal,
                    out,
                );
            }
            Stmt::For { body, .. } => {
                walk_barriers(
                    body,
                    variance,
                    uniform_depth,
                    touches_shared,
                    map,
                    ordinal,
                    out,
                );
            }
            _ => {}
        }
    }
}

// --------------------------------------------------- constant conditions --

/// `if`s whose condition the range analysis proves constant at this launch.
fn lint_constant_conditions(
    prog: &Program,
    ra: &RangeAnalysis,
    map: Option<&SourceMap>,
    out: &mut Vec<Diagnostic>,
) {
    for fact in &ra.branches {
        let Some(outcome) = fact.outcome else {
            continue;
        };
        // Attribute the branch pc to a source `if` (selects are excluded
        // from the if-site table, so they never produce this lint).
        let Some(ord) = prog.if_sites().iter().position(|pc| *pc == fact.pc) else {
            continue;
        };
        let mut d = info(format!(
            "constant condition: `if` #{ord} is provably always {outcome} at this launch — \
             the {} branch is dead here",
            if outcome { "else" } else { "then" }
        ));
        d.site = Some(SiteRef {
            buffer: String::new(),
            ordinal: ord,
            line: map.and_then(|m| m.if_lines.get(ord).copied()),
        });
        out.push(d);
    }
}

// ------------------------------------------------------ unreachable code --

/// Instructions the abstract interpreter never reached under this launch.
fn lint_unreachable(ra: &RangeAnalysis, out: &mut Vec<Diagnostic>) {
    let dead = ra.reachable.iter().filter(|r| !**r).count();
    if dead > 0 {
        out.push(info(format!(
            "unreachable code: {dead} of {} compiled instruction(s) can never execute at \
             this launch",
            ra.reachable.len()
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_exec::BufferId;
    use cucc_ir::parse_kernel_with_map;

    fn lint(src: &str, args: Vec<Arg>, extents: Vec<Option<u64>>) -> LintReport {
        let (k, map) = parse_kernel_with_map(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        lint_kernel(
            &k,
            LaunchConfig::new(2u32, 32u32),
            &args,
            &extents,
            Some(&map),
        )
        .unwrap()
    }

    fn kinds(r: &LintReport) -> Vec<&str> {
        r.diagnostics
            .iter()
            .map(|d| d.message.split(':').next().unwrap())
            .collect()
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let r = lint(
            "__global__ void k(float* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = 1.0f;
            }",
            // n = 50 < 64 threads, so the guard genuinely cuts (a guard that
            // is always true at the launch is itself a constant-condition
            // finding, by design).
            vec![Arg::Buffer(BufferId(0)), Arg::int(50)],
            vec![Some(64), None],
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.cert_stats.0, r.cert_stats.1);
    }

    #[test]
    fn dead_store_to_unread_shared_array() {
        let r = lint(
            "__global__ void k(float* out) {
                __shared__ float tile[32];
                tile[threadIdx.x] = 1.0f;
                out[blockIdx.x * blockDim.x + threadIdx.x] = 2.0f;
            }",
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(64)],
        );
        assert!(kinds(&r).contains(&"dead store"), "{:?}", r.diagnostics);
        let d = &r.diagnostics[0];
        assert_eq!(d.site.as_ref().unwrap().line, Some(3));
    }

    #[test]
    fn redundant_barrier_without_shared_memory() {
        let r = lint(
            "__global__ void k(float* out) {
                out[threadIdx.x] = 1.0f;
                __syncthreads();
                out[threadIdx.x] = 2.0f;
            }",
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(32)],
        );
        assert!(
            kinds(&r).contains(&"redundant barrier"),
            "{:?}",
            r.diagnostics
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.message.starts_with("redundant barrier"))
            .unwrap();
        assert_eq!(d.site.as_ref().unwrap().line, Some(3));
    }

    #[test]
    fn uniform_branch_barrier_flagged() {
        let r = lint(
            "__global__ void k(float* out, int n) {
                __shared__ float tile[32];
                if (n > 0) {
                    tile[threadIdx.x] = 1.0f;
                    __syncthreads();
                    out[threadIdx.x] = tile[0];
                }
            }",
            vec![Arg::Buffer(BufferId(0)), Arg::int(4)],
            vec![Some(32), None],
        );
        assert!(
            kinds(&r).contains(&"uniform branch barrier"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn constant_condition_and_unreachable_reported_with_line() {
        let r = lint(
            "__global__ void k(float* out, int n) {
                int id = threadIdx.x;
                if (id < 100) {
                    out[id] = 1.0f;
                } else {
                    out[0] = 2.0f;
                }
            }",
            vec![Arg::Buffer(BufferId(0)), Arg::int(4)],
            vec![Some(32), None],
        );
        // blockDim 32 → id < 100 always true; the else branch is dead.
        let ks = kinds(&r);
        assert!(ks.contains(&"constant condition"), "{:?}", r.diagnostics);
        assert!(ks.contains(&"unreachable code"), "{:?}", r.diagnostics);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.message.starts_with("constant condition"))
            .unwrap();
        assert_eq!(d.site.as_ref().unwrap().line, Some(3));
    }

    #[test]
    fn select_does_not_masquerade_as_if() {
        // `?:` lowers to a conditional jump too; the if-site table must not
        // attribute its constant condition to a nonexistent `if`.
        let r = lint(
            "__global__ void k(float* out) {
                int id = threadIdx.x;
                out[id] = id < 100 ? 1.0f : 2.0f;
            }",
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(32)],
        );
        assert!(
            !kinds(&r).contains(&"constant condition"),
            "{:?}",
            r.diagnostics
        );
    }
}
