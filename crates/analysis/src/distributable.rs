//! The **Allgather distributable analysis** (paper §6).
//!
//! For every global-memory write instruction the analysis checks the three
//! conditions of §6.2:
//!
//! 1. treating block index and block size as constants, the write index is
//!    an affine function of the thread index with invariant coefficients;
//! 2. the write is not enclosed in thread-variant conditionals, unless the
//!    conditional is **tail divergent** (`affine(blockIdx,threadIdx) <
//!    launch-invariant bound`, true everywhere except trailing blocks) or
//!    *per-thread uniform* (block-invariant thread selection such as
//!    `threadIdx.x == 0`, which keeps per-block write lengths equal — a
//!    CuCC-rs generalization needed by kernels like BinomialOption);
//! 3. treating thread index as constant, the write index is an affine
//!    function of the block index with a positive coefficient (positivity
//!    and exact coverage are confirmed at launch time by the planner's
//!    probe, because the coefficients are symbolic polynomials).
//!
//! Kernels passing all conditions are [`Verdict::Distributable`]; the rest
//! fall back to replicated execution ([`Verdict::Trivial`]) with the reasons
//! recorded — these reasons drive the Figure 7 coverage evaluation.

use crate::affine::{affine_of_expr, AffineForm, IdxVar, VarForms};
use crate::poly::Poly;
use crate::variance::{expr_variance, var_variance, Variance};
use cucc_ir::{BinOp, Expr, Kernel, MemRef, ParamId, Stmt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tail-divergent guard `lhs < bound`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TailGuard {
    /// Affine form over thread/block indices (strictly less-than `bound`).
    pub lhs: AffineForm,
    /// Launch-invariant bound.
    pub bound: Poly,
}

/// Classification of one guard conjunct enclosing a write.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GuardClass {
    /// Launch-invariant condition: identical for every thread and block.
    Uniform,
    /// Thread-variant but block-invariant (e.g. `threadIdx.x == 0`): every
    /// block selects the same thread subset, so per-block write lengths stay
    /// equal.
    PerThreadUniform,
    /// The canonical out-of-bounds filter (`global_id < n`): true for all
    /// blocks except a trailing range, which become callback blocks.
    Tail(TailGuard),
    /// Anything else — disqualifies the write (condition 2).
    Variant,
}

/// One global-memory write instruction with its analysis context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WriteSite {
    /// The written buffer parameter.
    pub buffer: ParamId,
    /// Element size in bytes.
    pub elem_size: usize,
    /// Affine form of the write index (in elements), if affine.
    pub index: Option<AffineForm>,
    /// True for atomic read-modify-writes.
    pub atomic: bool,
    /// True when the index expression contains a memory load.
    pub indirect: bool,
    /// Classification of every enclosing guard conjunct.
    pub guards: Vec<GuardClass>,
    /// True when an enclosing loop has thread- or block-variant bounds.
    pub variant_loop: bool,
}

/// Why a kernel is only *trivially* Allgather distributable (replicated
/// execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reason {
    /// A write index is not an affine function of the indices.
    NonAffineIndex,
    /// A write index depends on loaded data (indirect access).
    IndirectIndex,
    /// Atomic updates imply overlapping write intervals across blocks.
    AtomicWrite,
    /// A write is guarded by an unsupported thread/block-variant condition.
    VariantGuard,
    /// A write sits in a loop with thread/block-variant bounds, so blocks
    /// would write unequal lengths.
    VariantLoopBounds,
    /// The write index does not grow with the block index: all blocks write
    /// the same interval (overlap).
    BlockInvariantIndex,
    /// The kernel writes no global memory at all.
    NoGlobalWrites,
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reason::NonAffineIndex => "non-affine write index",
            Reason::IndirectIndex => "indirect (data-dependent) write index",
            Reason::AtomicWrite => "atomic global update (overlapping write intervals)",
            Reason::VariantGuard => "write guarded by unsupported variant condition",
            Reason::VariantLoopBounds => "write inside loop with variant bounds",
            Reason::BlockInvariantIndex => "write interval does not advance with block index",
            Reason::NoGlobalWrites => "kernel writes no global memory",
        };
        f.write_str(s)
    }
}

/// A buffer that the three-phase workflow must synchronize with Allgather.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherBuffer {
    /// Buffer parameter id.
    pub param: ParamId,
    /// Element size in bytes.
    pub elem_size: usize,
}

/// Compiler metadata for a distributable kernel (the `metadata` box of the
/// paper's Figure 6: `tail_divergent`, `mem_ptr`, `unit_size` — unit sizes
/// are resolved at launch time from the affine forms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelMeta {
    /// Buffers to synchronize after the partial block execution phase.
    pub buffers: Vec<GatherBuffer>,
    /// Deduplicated tail guards (empty ⇒ no tail divergence).
    pub tail_guards: Vec<TailGuard>,
    /// All analyzed write sites (kept for the launch-time planner and for
    /// diagnostics).
    pub sites: Vec<WriteSite>,
}

impl KernelMeta {
    /// Whether the kernel contains tail-divergent guards (the
    /// `tail_divergent` metadata flag of Figure 6).
    pub fn tail_divergent(&self) -> bool {
        !self.tail_guards.is_empty()
    }
}

/// The analysis verdict for one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Verdict {
    /// Non-trivially distributable: the three-phase workflow applies.
    Distributable(KernelMeta),
    /// Only trivially distributable: execute replicated on every node.
    Trivial(Vec<Reason>),
}

impl Verdict {
    /// True for the non-trivial case.
    pub fn is_distributable(&self) -> bool {
        matches!(self, Verdict::Distributable(_))
    }

    /// Metadata of the distributable case.
    pub fn meta(&self) -> Option<&KernelMeta> {
        match self {
            Verdict::Distributable(m) => Some(m),
            Verdict::Trivial(_) => None,
        }
    }

    /// Reasons of the trivial case.
    pub fn reasons(&self) -> &[Reason] {
        match self {
            Verdict::Trivial(r) => r,
            Verdict::Distributable(_) => &[],
        }
    }
}

/// Run the Allgather distributable analysis on a kernel.
pub fn analyze_kernel(kernel: &Kernel) -> Verdict {
    let sites = collect_write_sites(kernel);
    if sites.is_empty() {
        return Verdict::Trivial(vec![Reason::NoGlobalWrites]);
    }
    let mut reasons = Vec::new();
    for site in &sites {
        if site.atomic {
            push_unique(&mut reasons, Reason::AtomicWrite);
            continue;
        }
        if site.indirect {
            push_unique(&mut reasons, Reason::IndirectIndex);
            continue;
        }
        let Some(index) = &site.index else {
            push_unique(&mut reasons, Reason::NonAffineIndex);
            continue;
        };
        if site.variant_loop {
            push_unique(&mut reasons, Reason::VariantLoopBounds);
        }
        if site.guards.iter().any(|g| matches!(g, GuardClass::Variant)) {
            push_unique(&mut reasons, Reason::VariantGuard);
        }
        // Condition 3 (static part): the index must advance with the block
        // index. Either the index itself mentions a block axis, or a tail
        // guard will confine divergence — but without any block dependence
        // all blocks write the same interval.
        let has_block_var = index.vars().any(|v| matches!(v, IdxVar::Block(_)));
        let negative_const_block = index.coeffs.iter().any(|(v, c)| {
            matches!(v, IdxVar::Block(_)) && matches!(c.as_const(), Some(x) if x <= 0)
        });
        if !has_block_var || negative_const_block {
            push_unique(&mut reasons, Reason::BlockInvariantIndex);
        }
    }
    if !reasons.is_empty() {
        return Verdict::Trivial(reasons);
    }
    // Assemble metadata.
    let mut buffers: Vec<GatherBuffer> = Vec::new();
    let mut tail_guards: Vec<TailGuard> = Vec::new();
    for site in &sites {
        if !buffers.iter().any(|b| b.param == site.buffer) {
            buffers.push(GatherBuffer {
                param: site.buffer,
                elem_size: site.elem_size,
            });
        }
        for g in &site.guards {
            if let GuardClass::Tail(t) = g {
                if !tail_guards.contains(t) {
                    tail_guards.push(t.clone());
                }
            }
        }
    }
    buffers.sort_by_key(|b| b.param);
    Verdict::Distributable(KernelMeta {
        buffers,
        tail_guards,
        sites,
    })
}

fn push_unique(v: &mut Vec<Reason>, r: Reason) {
    if !v.contains(&r) {
        v.push(r);
    }
}

/// Collect every global write instruction with its guard and loop context.
pub fn collect_write_sites(kernel: &Kernel) -> Vec<WriteSite> {
    let forms = VarForms::of_kernel(kernel);
    let variance = var_variance(kernel);
    let mut out = Vec::new();
    let mut guards: Vec<GuardClass> = Vec::new();
    walk(
        kernel,
        &kernel.body,
        &forms,
        &variance,
        &mut guards,
        false,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn walk(
    kernel: &Kernel,
    stmts: &[Stmt],
    forms: &VarForms,
    variance: &[Variance],
    guards: &mut Vec<GuardClass>,
    variant_loop: bool,
    out: &mut Vec<WriteSite>,
) {
    for s in stmts {
        match s {
            Stmt::Store { mem, index, value }
            | Stmt::AtomicRmw {
                mem, index, value, ..
            } => {
                let MemRef::Global(p) = mem else { continue };
                let _ = value;
                let atomic = matches!(s, Stmt::AtomicRmw { .. });
                let indirect = index.has_load();
                out.push(WriteSite {
                    buffer: *p,
                    elem_size: kernel.elem_type(*mem).size(),
                    index: affine_of_expr(index, forms),
                    atomic,
                    indirect,
                    guards: guards.clone(),
                    variant_loop,
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let classes = classify_guard(cond, forms, variance);
                let depth = classes.len();
                guards.extend(classes);
                walk(
                    kernel,
                    then_body,
                    forms,
                    variance,
                    guards,
                    variant_loop,
                    out,
                );
                guards.truncate(guards.len() - depth);
                if !else_body.is_empty() {
                    // In the else branch the condition is negated: uniform
                    // and per-thread-uniform conjuncts stay in their class
                    // (negation preserves invariance); tail guards become
                    // head-divergent, i.e. unsupported.
                    let neg: Vec<GuardClass> = classify_guard(cond, forms, variance)
                        .into_iter()
                        .map(|g| match g {
                            GuardClass::Uniform => GuardClass::Uniform,
                            GuardClass::PerThreadUniform => GuardClass::PerThreadUniform,
                            GuardClass::Tail(_) | GuardClass::Variant => GuardClass::Variant,
                        })
                        .collect();
                    let depth = neg.len();
                    guards.extend(neg);
                    walk(
                        kernel,
                        else_body,
                        forms,
                        variance,
                        guards,
                        variant_loop,
                        out,
                    );
                    guards.truncate(guards.len() - depth);
                }
            }
            Stmt::For {
                start,
                end,
                step,
                body,
                ..
            } => {
                let bounds = expr_variance(start, variance)
                    .join(expr_variance(end, variance))
                    .join(expr_variance(step, variance));
                let vl = variant_loop || bounds.thread || bounds.block;
                walk(kernel, body, forms, variance, guards, vl, out);
            }
            _ => {}
        }
    }
}

/// Split a guard condition into conjuncts and classify each.
fn classify_guard(cond: &Expr, forms: &VarForms, variance: &[Variance]) -> Vec<GuardClass> {
    let mut conjuncts = Vec::new();
    split_conjuncts(cond, &mut conjuncts);
    conjuncts
        .into_iter()
        .map(|c| classify_conjunct(c, forms, variance))
        .collect()
}

fn split_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::LAnd,
        lhs,
        rhs,
    } = e
    {
        split_conjuncts(lhs, out);
        split_conjuncts(rhs, out);
    } else {
        out.push(e);
    }
}

fn classify_conjunct(e: &Expr, forms: &VarForms, variance: &[Variance]) -> GuardClass {
    let v = expr_variance(e, variance);
    if !v.thread && !v.block {
        return GuardClass::Uniform;
    }
    // Block-invariant thread selection: identical subset in every block.
    // Loads are excluded (expr_variance marks them block-variant).
    if !v.block {
        return GuardClass::PerThreadUniform;
    }
    // Tail pattern: normalize to `variant < bound`.
    if let Expr::Binary { op, lhs, rhs } = e {
        let (small, big, inclusive) = match op {
            BinOp::Lt => (lhs, rhs, false),
            BinOp::Le => (lhs, rhs, true),
            BinOp::Gt => (rhs, lhs, false),
            BinOp::Ge => (rhs, lhs, true),
            _ => return GuardClass::Variant,
        };
        let (Some(small_f), Some(big_f)) =
            (affine_of_expr(small, forms), affine_of_expr(big, forms))
        else {
            return GuardClass::Variant;
        };
        // The variant side must be on the small side of `<`; the bound must
        // be launch-invariant; loop variables may not appear.
        if big_f.is_constant()
            && !small_f.is_constant()
            && !small_f.vars().any(|v| matches!(v, IdxVar::Loop(_)))
        {
            let bound = if inclusive {
                big_f.constant.add(&Poly::constant(1))
            } else {
                big_f.constant
            };
            return GuardClass::Tail(TailGuard {
                lhs: small_f,
                bound,
            });
        }
    }
    GuardClass::Variant
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::parse_kernel;

    fn verdict(src: &str) -> Verdict {
        let k = parse_kernel(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        analyze_kernel(&k)
    }

    #[test]
    fn listing1_is_distributable_and_tail_divergent() {
        let v = verdict(
            "__global__ void vec_copy(char* src, char* dest, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n)
                    dest[id] = src[id];
            }",
        );
        let meta = v.meta().expect("should be distributable");
        assert!(meta.tail_divergent());
        assert_eq!(meta.buffers.len(), 1);
        assert_eq!(meta.buffers[0].param, ParamId(1));
        assert_eq!(meta.tail_guards.len(), 1);
    }

    #[test]
    fn unguarded_affine_write_distributable_without_tail() {
        let v = verdict(
            "__global__ void k(float* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id] = 1.0f;
            }",
        );
        let meta = v.meta().unwrap();
        assert!(!meta.tail_divergent());
    }

    #[test]
    fn per_block_scalar_write_distributable() {
        // BinomialOption pattern: only thread 0 writes, one scalar per block.
        let v = verdict(
            "__global__ void k(float* out) {
                float acc = 1.0f;
                if (threadIdx.x == 0)
                    out[blockIdx.x] = acc;
            }",
        );
        let meta = v.meta().unwrap();
        assert!(!meta.tail_divergent());
        assert!(matches!(
            meta.sites[0].guards[0],
            GuardClass::PerThreadUniform
        ));
    }

    #[test]
    fn atomic_writes_are_trivial() {
        let v = verdict(
            "__global__ void hist(int* bins, int* data) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                atomicAdd(&bins[data[id] % 16], 1);
            }",
        );
        assert!(v.reasons().contains(&Reason::AtomicWrite));
    }

    #[test]
    fn indirect_index_is_trivial() {
        let v = verdict(
            "__global__ void scatter(int* out, int* idx, int* val) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[idx[id]] = val[id];
            }",
        );
        assert!(v.reasons().contains(&Reason::IndirectIndex));
    }

    #[test]
    fn block_invariant_write_is_overlap() {
        // Every block writes out[threadIdx.x]: intervals overlap.
        let v = verdict(
            "__global__ void k(int* out) {
                out[threadIdx.x] = 1;
            }",
        );
        assert!(v.reasons().contains(&Reason::BlockInvariantIndex));
    }

    #[test]
    fn data_dependent_guard_is_variant() {
        let v = verdict(
            "__global__ void k(int* out, int* data, int t) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (data[id] == t)
                    out[id] = 1;
            }",
        );
        assert!(v.reasons().contains(&Reason::VariantGuard));
    }

    #[test]
    fn reversed_tail_comparison_accepted() {
        // `n > id` is the same tail filter as `id < n`.
        let v = verdict(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (n > id)
                    out[id] = 1;
            }",
        );
        assert!(v.meta().unwrap().tail_divergent());
    }

    #[test]
    fn head_divergence_rejected() {
        // True only for LARGE ids: blocks at the head diverge, which the
        // three-phase workflow does not support.
        let v = verdict(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id >= n)
                    out[id] = 1;
            }",
        );
        assert!(v.reasons().contains(&Reason::VariantGuard));
    }

    #[test]
    fn else_branch_of_tail_guard_rejected() {
        let v = verdict(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n)
                    out[id] = 1;
                else
                    out[id] = 2;
            }",
        );
        assert!(v.reasons().contains(&Reason::VariantGuard));
    }

    #[test]
    fn variant_loop_bounds_rejected() {
        let v = verdict(
            "__global__ void k(int* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < threadIdx.x; i++)
                    out[id * 32 + i] = 1;
            }",
        );
        assert!(v.reasons().contains(&Reason::VariantLoopBounds));
    }

    #[test]
    fn uniform_loop_with_affine_write_ok() {
        // Each thread writes K consecutive elements: still distributable.
        let v = verdict(
            "__global__ void k(int* out, int k) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < k; i++)
                    out[id * k + i] = i;
            }",
        );
        assert!(v.is_distributable());
    }

    #[test]
    fn conjunction_of_uniform_and_tail() {
        let v = verdict(
            "__global__ void k(int* out, int n, int enable) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (enable > 0 && id < n)
                    out[id] = 1;
            }",
        );
        let meta = v.meta().unwrap();
        assert!(meta.tail_divergent());
        assert_eq!(meta.sites[0].guards.len(), 2);
        assert!(matches!(meta.sites[0].guards[0], GuardClass::Uniform));
        assert!(matches!(meta.sites[0].guards[1], GuardClass::Tail(_)));
    }

    #[test]
    fn multiple_buffers_collected() {
        let v = verdict(
            "__global__ void k(float* a, float* b, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) {
                    a[id] = 1.0f;
                    b[id] = 2.0f;
                }
            }",
        );
        let meta = v.meta().unwrap();
        assert_eq!(meta.buffers.len(), 2);
        // One deduplicated tail guard, not two.
        assert_eq!(meta.tail_guards.len(), 1);
    }

    #[test]
    fn no_global_writes_is_trivial() {
        let v = verdict(
            "__global__ void k(int* data) {
                __shared__ int tmp[32];
                tmp[threadIdx.x] = data[threadIdx.x];
            }",
        );
        assert_eq!(v.reasons(), &[Reason::NoGlobalWrites]);
    }

    #[test]
    fn two_d_row_partition_distributable() {
        // 2-D grid writing row bands: affine with blockIdx.y coefficient.
        let v = verdict(
            "__global__ void k(float* out, int width) {
                int x = blockIdx.x * blockDim.x + threadIdx.x;
                int y = blockIdx.y * blockDim.y + threadIdx.y;
                out[y * width + x] = 1.0f;
            }",
        );
        assert!(v.is_distributable());
    }
}
