//! Thread- and block-variance taint analysis.
//!
//! Condition 2 of the Allgather-distributable criteria (paper §6.2) needs to
//! know whether a guard condition is *thread-variant* (can differ between
//! threads of one block) and the equal-length condition additionally needs
//! *block-variance* (can differ between blocks). Both are computed here as a
//! joint conservative taint fixpoint, including control-dependence (a value
//! assigned under a variant condition is variant).

use cucc_ir::{Expr, Kernel, Stmt};

/// Per-variable variance flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Variance {
    /// Value may differ between threads of a block.
    pub thread: bool,
    /// Value may differ between blocks.
    pub block: bool,
}

impl Variance {
    /// Fully uniform (launch-invariant).
    pub fn uniform() -> Variance {
        Variance::default()
    }

    /// Join two variances (component-wise or).
    pub fn join(self, other: Variance) -> Variance {
        Variance {
            thread: self.thread || other.thread,
            block: self.block || other.block,
        }
    }
}

/// Compute the variance of every kernel variable.
pub fn var_variance(kernel: &Kernel) -> Vec<Variance> {
    let n = kernel.num_vars();
    let mut v = vec![Variance::uniform(); n];
    loop {
        let mut changed = false;
        // Data dependence.
        kernel.visit_stmts(&mut |s| match s {
            Stmt::Assign { var, value } => {
                let nv = v[var.index()].join(expr_variance(value, &v));
                if nv != v[var.index()] {
                    v[var.index()] = nv;
                    changed = true;
                }
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                ..
            } => {
                let nv = v[var.index()]
                    .join(expr_variance(start, &v))
                    .join(expr_variance(end, &v))
                    .join(expr_variance(step, &v));
                if nv != v[var.index()] {
                    v[var.index()] = nv;
                    changed = true;
                }
            }
            _ => {}
        });
        // Control dependence.
        control_taint(&kernel.body, Variance::uniform(), &mut v, &mut changed);
        if !changed {
            return v;
        }
    }
}

fn control_taint(stmts: &[Stmt], ctx: Variance, v: &mut [Variance], changed: &mut bool) {
    for s in stmts {
        match s {
            Stmt::Assign { var, .. } => {
                let nv = v[var.index()].join(ctx);
                if nv != v[var.index()] {
                    v[var.index()] = nv;
                    *changed = true;
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let inner = ctx.join(expr_variance(cond, v));
                control_taint(then_body, inner, v, changed);
                control_taint(else_body, inner, v, changed);
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let inner = ctx
                    .join(expr_variance(start, v))
                    .join(expr_variance(end, v))
                    .join(expr_variance(step, v));
                let nv = v[var.index()].join(inner);
                if nv != v[var.index()] {
                    v[var.index()] = nv;
                    *changed = true;
                }
                control_taint(body, inner, v, changed);
            }
            _ => {}
        }
    }
}

/// Variance of an expression given variable variances.
///
/// Memory loads are treated as thread- and block-variant: their value is
/// data-dependent and the analysis cannot prove it uniform.
pub fn expr_variance(e: &Expr, vars: &[Variance]) -> Variance {
    let mut out = Variance::uniform();
    e.visit(&mut |node| match node {
        Expr::ThreadIdx(_) => out.thread = true,
        Expr::BlockIdx(_) => out.block = true,
        Expr::Load { .. } => {
            out.thread = true;
            out.block = true;
        }
        Expr::Var(v) => out = out.join(vars[v.index()]),
        _ => {}
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::parse_kernel;

    fn variances(src: &str) -> (Vec<Variance>, Kernel) {
        let k = parse_kernel(src).unwrap();
        let v = var_variance(&k);
        (v, k)
    }

    fn var_named(k: &Kernel, name: &str) -> usize {
        k.var_names.iter().position(|n| n == name).unwrap()
    }

    #[test]
    fn classification_basics() {
        let (v, k) = variances(
            "__global__ void k(int* out, int n) {
                int t = threadIdx.x;
                int b = blockIdx.x;
                int u = n * 2;
                int g = b * blockDim.x + t;
                out[g] = u;
            }",
        );
        assert_eq!(
            v[var_named(&k, "t")],
            Variance {
                thread: true,
                block: false
            }
        );
        assert_eq!(
            v[var_named(&k, "b")],
            Variance {
                thread: false,
                block: true
            }
        );
        assert_eq!(v[var_named(&k, "u")], Variance::uniform());
        assert_eq!(
            v[var_named(&k, "g")],
            Variance {
                thread: true,
                block: true
            }
        );
    }

    #[test]
    fn load_is_fully_variant() {
        let (v, k) = variances(
            "__global__ void k(int* out, int* data) {
                int x = data[0];
                out[0] = x;
            }",
        );
        assert_eq!(
            v[var_named(&k, "x")],
            Variance {
                thread: true,
                block: true
            }
        );
    }

    #[test]
    fn control_dependence_taints() {
        let (v, k) = variances(
            "__global__ void k(int* out) {
                int x = 0;
                int y = 0;
                if (threadIdx.x < 4) x = 1;
                if (blockIdx.x < 2) y = 1;
                out[0] = x + y;
            }",
        );
        assert_eq!(
            v[var_named(&k, "x")],
            Variance {
                thread: true,
                block: false
            }
        );
        assert_eq!(
            v[var_named(&k, "y")],
            Variance {
                thread: false,
                block: true
            }
        );
    }

    #[test]
    fn loop_feedback_fixpoint() {
        // acc picks up thread variance through its own reassignment.
        let (v, k) = variances(
            "__global__ void k(int* out, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++)
                    acc = acc + threadIdx.x;
                out[0] = acc;
            }",
        );
        assert_eq!(
            v[var_named(&k, "acc")],
            Variance {
                thread: true,
                block: false
            }
        );
        assert_eq!(v[var_named(&k, "i")], Variance::uniform());
    }

    #[test]
    fn variant_loop_bounds_taint_induction_var() {
        let (v, k) = variances(
            "__global__ void k(int* out) {
                int s = 0;
                for (int i = 0; i < threadIdx.x; i++)
                    s = s + 1;
                out[0] = s;
            }",
        );
        assert!(v[var_named(&k, "i")].thread);
        assert!(v[var_named(&k, "s")].thread);
    }
}
