//! SIMD vectorizability analysis of the transformed thread loop.
//!
//! After GPU-to-CPU migration a GPU block becomes a CPU function whose
//! threads run as a loop (paper §2.2, Listing 2); CuPBoP marks that loop
//! `#pragma omp simd`. Whether the compiler can actually vectorize it
//! determines the huge SIMD-Focused vs Thread-Focused performance gaps of
//! §8.2 (BinomialOption: 55× — scalar on the SIMD CPU; Transpose: 1.3× —
//! fully vectorized; disabling SIMD slows the SIMD-Focused CPU 61.66×).
//!
//! This analysis reproduces the decision an outer-loop vectorizer makes on
//! the transformed code, using the heuristics the paper discusses in §8.3:
//!
//! * straight-line bodies (plus bound-check guards) vectorize fully;
//! * inner loops block outer-loop vectorization when they carry a
//!   **recurrence** (a scalar read and written in the same iteration —
//!   BinomialOption's binomial recurrence, FIR's accumulator, EP's RNG) or
//!   index a **per-thread local array** with a loop-variant subscript;
//! * data-dependent control flow and atomics force scalar execution;
//! * gather/scatter (non-unit thread stride) vectorizes at reduced
//!   efficiency.

use crate::affine::{affine_of_expr, IdxVar, VarForms};
use crate::variance::{expr_variance, var_variance, Variance};
use cucc_ir::{Axis, Expr, Kernel, MemRef, Stmt, VarId};
use serde::{Deserialize, Serialize};

/// Vectorization outcome class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimdClass {
    /// The whole thread loop maps to SIMD lanes.
    Full,
    /// Parts vectorize (e.g. inner loops without recurrences).
    Partial,
    /// No SIMD benefit: scalar execution.
    Scalar,
}

/// Result of the vectorizability analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimdReport {
    /// Overall class.
    pub class: SimdClass,
    /// Fraction of the peak SIMD speedup the transformed loop achieves
    /// (`0.0` = scalar, `1.0` = perfect lane utilization).
    pub efficiency: f64,
    /// Human-readable reasons for downgrades.
    pub reasons: Vec<String>,
}

impl SimdReport {
    /// One-line human-readable summary for CLI diagnostics (`cucc run -v`):
    /// the class, the efficiency, and why it was downgraded, if it was.
    pub fn summary(&self) -> String {
        let class = match self.class {
            SimdClass::Full => "full",
            SimdClass::Partial => "partial",
            SimdClass::Scalar => "scalar",
        };
        if self.reasons.is_empty() {
            format!("{class} ({:.0}% lane efficiency)", self.efficiency * 100.0)
        } else {
            format!(
                "{class} ({:.0}% lane efficiency): {}",
                self.efficiency * 100.0,
                self.reasons.join("; ")
            )
        }
    }
}

/// Analyze the kernel's thread loop for vectorizability.
pub fn analyze_simd(kernel: &Kernel) -> SimdReport {
    let variance = var_variance(kernel);
    let forms = VarForms::of_kernel(kernel);
    let mut reasons = Vec::new();
    let mut class = SimdClass::Full;
    let mut stride_penalty = 1.0f64;

    let downgrade =
        |class: &mut SimdClass, to: SimdClass, reasons: &mut Vec<String>, why: String| {
            let worse = matches!(
                (&class, to),
                (SimdClass::Full, SimdClass::Partial)
                    | (SimdClass::Full, SimdClass::Scalar)
                    | (SimdClass::Partial, SimdClass::Scalar)
            );
            if worse {
                *class = to;
            }
            if !reasons.contains(&why) {
                reasons.push(why);
            }
        };

    // Walk statements with loop-nesting context.
    fn walk(
        kernel: &Kernel,
        stmts: &[Stmt],
        in_loop: Option<&LoopInfo>,
        variance: &[Variance],
        forms: &VarForms,
        downgrade: &mut impl FnMut(SimdClass, String),
        stride_penalty: &mut f64,
    ) {
        for s in stmts {
            match s {
                Stmt::Assign { var, value } => {
                    if let Some(li) = in_loop {
                        if reads_var(value, *var) {
                            downgrade(
                                SimdClass::Scalar,
                                format!(
                                    "loop-carried recurrence on `{}` inside inner loop over `{}`",
                                    kernel.var_names[var.index()],
                                    kernel.var_names[li.var.index()]
                                ),
                            );
                        }
                    }
                    check_mem_exprs(kernel, value, in_loop, forms, downgrade, stride_penalty);
                }
                Stmt::Store { mem, index, value }
                | Stmt::AtomicRmw {
                    mem, index, value, ..
                } => {
                    if matches!(s, Stmt::AtomicRmw { .. }) {
                        downgrade(SimdClass::Scalar, "atomic update serializes lanes".into());
                    }
                    check_access(
                        kernel,
                        *mem,
                        index,
                        in_loop,
                        forms,
                        downgrade,
                        stride_penalty,
                    );
                    check_mem_exprs(kernel, value, in_loop, forms, downgrade, stride_penalty);
                    check_mem_exprs(kernel, index, in_loop, forms, downgrade, stride_penalty);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let v = expr_variance(cond, variance);
                    let data_dependent = cond.has_load();
                    if data_dependent {
                        downgrade(
                            SimdClass::Partial,
                            "data-dependent branch requires masking".into(),
                        );
                    } else if v.thread && !else_body.is_empty() {
                        downgrade(
                            SimdClass::Partial,
                            "divergent if/else requires both-sides execution".into(),
                        );
                    }
                    // A plain thread-variant guard (no else) is the tail
                    // bound-check pattern: vectorizers handle it with a mask
                    // at negligible cost.
                    walk(
                        kernel,
                        then_body,
                        in_loop,
                        variance,
                        forms,
                        downgrade,
                        stride_penalty,
                    );
                    walk(
                        kernel,
                        else_body,
                        in_loop,
                        variance,
                        forms,
                        downgrade,
                        stride_penalty,
                    );
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    let bounds = expr_variance(start, variance)
                        .join(expr_variance(end, variance))
                        .join(expr_variance(step, variance));
                    if bounds.thread {
                        downgrade(
                            SimdClass::Scalar,
                            "inner loop trip count varies per thread".into(),
                        );
                    } else if in_loop.is_none() {
                        // First level of nesting: outer-loop vectorization
                        // across threads must now handle a whole loop body
                        // per lane — partial at best.
                        downgrade(
                            SimdClass::Partial,
                            "inner loop forces outer-loop vectorization".into(),
                        );
                    }
                    let li = LoopInfo { var: *var };
                    walk(
                        kernel,
                        body,
                        Some(&li),
                        variance,
                        forms,
                        downgrade,
                        stride_penalty,
                    );
                }
                Stmt::SyncThreads | Stmt::Return => {}
            }
        }
    }

    struct LoopInfo {
        var: VarId,
    }

    fn reads_var(e: &Expr, var: VarId) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if matches!(n, Expr::Var(v) if *v == var) {
                found = true;
            }
        });
        found
    }

    /// Check memory accesses inside an expression tree.
    fn check_mem_exprs(
        kernel: &Kernel,
        e: &Expr,
        in_loop: Option<&LoopInfo>,
        forms: &VarForms,
        downgrade: &mut impl FnMut(SimdClass, String),
        stride_penalty: &mut f64,
    ) {
        e.visit(&mut |n| {
            if let Expr::Load { mem, index } = n {
                check_access(
                    kernel,
                    *mem,
                    index,
                    in_loop,
                    forms,
                    downgrade,
                    stride_penalty,
                );
            }
        });
    }

    /// Classify one memory access: unit thread stride is free, other strides
    /// gather/scatter, local arrays with loop-variant subscripts kill
    /// vectorization.
    fn check_access(
        kernel: &Kernel,
        mem: MemRef,
        index: &Expr,
        in_loop: Option<&LoopInfo>,
        forms: &VarForms,
        downgrade: &mut impl FnMut(SimdClass, String),
        stride_penalty: &mut f64,
    ) {
        let form = affine_of_expr(index, forms);
        if let MemRef::Local(i) = mem {
            if let Some(li) = in_loop {
                let loop_variant = match &form {
                    Some(f) => !f.coeff(IdxVar::Loop(li.var)).is_zero(),
                    None => true,
                };
                if loop_variant {
                    downgrade(
                        SimdClass::Scalar,
                        format!(
                            "per-thread array `{}` indexed by inner loop (no SIMD register mapping)",
                            kernel.locals[i as usize].name
                        ),
                    );
                    return;
                }
            }
        }
        match form {
            None => {
                downgrade(
                    SimdClass::Partial,
                    "non-affine access becomes gather/scatter".into(),
                );
                *stride_penalty = stride_penalty.min(0.5);
            }
            Some(f) => {
                let tx = f.coeff(IdxVar::Thread(Axis::X));
                match tx.as_const() {
                    Some(0) | Some(1) => {}
                    _ => {
                        // Strided or symbolic thread stride: gather/scatter.
                        *stride_penalty = stride_penalty.min(0.6);
                    }
                }
            }
        }
    }

    let mut dg = |to: SimdClass, why: String| downgrade(&mut class, to, &mut reasons, why);
    walk(
        kernel,
        &kernel.body,
        None,
        &variance,
        &forms,
        &mut dg,
        &mut stride_penalty,
    );

    let efficiency = match class {
        SimdClass::Full => 0.9 * stride_penalty,
        SimdClass::Partial => 0.45 * stride_penalty,
        SimdClass::Scalar => 0.0,
    };
    SimdReport {
        class,
        efficiency,
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::parse_kernel;

    fn report(src: &str) -> SimdReport {
        let k = parse_kernel(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        analyze_simd(&k)
    }

    #[test]
    fn copy_kernel_is_full() {
        let r = report(
            "__global__ void k(float* a, float* b, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) b[id] = a[id];
            }",
        );
        assert_eq!(r.class, SimdClass::Full);
        assert!(r.efficiency > 0.8, "{r:?}");
    }

    #[test]
    fn recurrence_in_inner_loop_is_scalar() {
        // FIR/BinomialOption shape: accumulator updated across iterations.
        let r = report(
            "__global__ void fir(float* in, float* coef, float* out, int taps, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0f;
                for (int t = 0; t < taps; t++)
                    acc += in[id + t] * coef[t];
                if (id < n) out[id] = acc;
            }",
        );
        assert_eq!(r.class, SimdClass::Scalar);
        assert!(r.reasons.iter().any(|m| m.contains("recurrence")), "{r:?}");
        assert_eq!(r.efficiency, 0.0);
    }

    #[test]
    fn local_array_loop_index_is_scalar() {
        // BinomialOption: per-thread valuation array walked by the loop.
        let r = report(
            "__global__ void k(float* out, int steps) {
                float vals[64];
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < steps; i++)
                    vals[i] = (float)(i);
                out[id] = vals[0];
            }",
        );
        assert_eq!(r.class, SimdClass::Scalar);
        assert!(
            r.reasons.iter().any(|m| m.contains("per-thread array")),
            "{r:?}"
        );
    }

    #[test]
    fn atomic_is_scalar() {
        let r = report(
            "__global__ void k(int* bins, int* d) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                atomicAdd(&bins[d[id] % 8], 1);
            }",
        );
        assert_eq!(r.class, SimdClass::Scalar);
    }

    #[test]
    fn inner_loop_without_recurrence_partial() {
        let r = report(
            "__global__ void k(float* out, int w) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < w; i++)
                    out[id * w + i] = 1.0f;
            }",
        );
        assert_eq!(r.class, SimdClass::Partial);
    }

    #[test]
    fn thread_variant_trip_count_scalar() {
        let r = report(
            "__global__ void k(float* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                float s = 1.0f;
                for (int i = 0; i < threadIdx.x; i++)
                    out[id * 32 + i] = s;
                out[id] = s;
            }",
        );
        assert_eq!(r.class, SimdClass::Scalar);
    }

    #[test]
    fn divergent_if_else_partial() {
        let r = report(
            "__global__ void k(float* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (threadIdx.x % 2 == 0)
                    out[id] = 1.0f;
                else
                    out[id] = 2.0f;
            }",
        );
        assert_eq!(r.class, SimdClass::Partial);
    }

    #[test]
    fn transpose_with_shared_memory_full() {
        // The paper's Transpose: memory movement through shared tiles,
        // barrier-phased, every phase straight-line — fully vectorizable.
        let r = report(
            "__global__ void transpose(float* in, float* out, int n) {
                __shared__ float tile[1024];
                int x = blockIdx.x * 32 + threadIdx.x;
                int y = blockIdx.y * 32 + threadIdx.y;
                tile[threadIdx.y * 32 + threadIdx.x] = in[y * n + x];
                __syncthreads();
                out[(blockIdx.y * 32 + threadIdx.x) * n + blockIdx.x * 32 + threadIdx.y]
                    = tile[threadIdx.x * 32 + threadIdx.y];
            }",
        );
        assert_eq!(r.class, SimdClass::Full);
        // Strided shared accesses cost some lane efficiency but stay SIMD.
        assert!(r.efficiency > 0.4, "{r:?}");
    }

    #[test]
    fn gather_reduces_efficiency_but_not_class() {
        let r = report(
            "__global__ void k(float* a, float* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id] = a[id * 4];
            }",
        );
        assert_eq!(r.class, SimdClass::Full);
        assert!(r.efficiency < 0.9);
    }
}
