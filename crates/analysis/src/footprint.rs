//! Launch-resolved, per-node-sliceable access footprints.
//!
//! The planner (`plan_launch`) proves *write* footprints by probing; the
//! verifier (`verify_launch`) reasons about write-write races. What neither
//! exports is the shape a **graph communication optimizer** needs: for a
//! given launch, which byte ranges of each buffer does a *block* read or
//! write — resolved against the concrete [`LaunchConfig`] and scalar
//! arguments, and sliceable per node (a node runs a contiguous range of
//! linear blocks plus the shared callback tail).
//!
//! This module re-runs the affine machinery ([`affine_of_expr`] over
//! [`VarForms`], resolved through [`launch_sym_env`]) on every global
//! access and classifies each buffer on the verifier's lattice:
//!
//! * [`BufferFootprint::Must`] — **every** access to the buffer provably
//!   falls inside a union of per-block intervals `span + coeff·b`
//!   (elements, inclusive, `b` the linear block id). This is an
//!   *over-approximation* of the accessed set (guards are ignored — they
//!   only shrink the real set), which is the sound direction for elision:
//!   if the `Must` hull is covered by resident data, the real reads are
//!   too.
//! * [`BufferFootprint::Unknown`] — the analysis gave up (non-affine or
//!   loop-dependent index, unresolvable scalar, multi-axis grid). The
//!   caller must assume the buffer is read/written anywhere; the
//!   communication optimizer keeps the full Allgather.
//!
//! There is deliberately no `May` here: a footprint either bounds *all*
//! accesses (`Must`) or bounds nothing (`Unknown`). Partial knowledge would
//! be unsound to elide on.

use crate::affine::{affine_of_expr, IdxVar, VarForms};
use crate::plan::launch_sym_env;
use crate::range::Interval;
use cucc_exec::Arg;
use cucc_ir::{Axis, Expr, Kernel, LaunchConfig, MemRef, Param, ParamId, Stmt};
use std::collections::BTreeMap;

/// One per-block access interval: linear block `b` touches elements
/// `span + coeff·b` (inclusive element offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterval {
    /// Elements the interval shifts per linear block.
    pub coeff: i128,
    /// Element offsets touched at block 0.
    pub span: Interval,
}

impl BlockInterval {
    /// Element offsets touched by linear block `b`.
    pub fn at(self, b: i128) -> Interval {
        self.span.translate(self.coeff.saturating_mul(b))
    }
}

/// Launch-resolved footprint of one buffer parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferFootprint {
    /// Every access provably falls inside the union of the intervals.
    Must {
        /// Element size in bytes (indices scale by this).
        elem_bytes: u64,
        /// Per-block access intervals (deduplicated, order of discovery).
        intervals: Vec<BlockInterval>,
    },
    /// The analysis could not bound the accesses.
    Unknown {
        /// Human-readable reason (diagnostics / trace labels).
        why: String,
    },
}

impl BufferFootprint {
    /// True when the footprint bounds every access.
    pub fn is_must(&self) -> bool {
        matches!(self, BufferFootprint::Must { .. })
    }

    /// Byte ranges (half-open, clamped at 0) touched by the linear blocks
    /// `[blocks.start, blocks.end)`; `None` for [`BufferFootprint::Unknown`].
    /// Each interval contributes its convex hull over the block range, so
    /// the union is an over-approximation of the touched set.
    pub fn byte_ranges(&self, blocks: std::ops::Range<u64>) -> Option<Vec<(u64, u64)>> {
        let BufferFootprint::Must {
            elem_bytes,
            intervals,
        } = self
        else {
            return None;
        };
        let mut out = Vec::new();
        if blocks.start >= blocks.end {
            return Some(out);
        }
        let (b0, b1) = (blocks.start as i128, blocks.end as i128 - 1);
        for iv in intervals {
            let hullv = iv.at(b0).hull(iv.at(b1));
            let lo = hullv.lo.max(0);
            if hullv.hi < lo {
                continue;
            }
            out.push((lo as u64 * elem_bytes, (hullv.hi as u64 + 1) * elem_bytes));
        }
        Some(out)
    }
}

/// Read and write footprints of one launch, keyed by buffer parameter.
/// Only parameters with at least one global access appear.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaunchFootprints {
    /// Loads plus the read half of atomics.
    pub reads: BTreeMap<ParamId, BufferFootprint>,
    /// Stores plus atomics.
    pub writes: BTreeMap<ParamId, BufferFootprint>,
}

impl LaunchFootprints {
    /// Read footprint of a parameter ([`BufferFootprint::Unknown`] when the
    /// kernel never reads it returns `None`).
    pub fn read(&self, p: ParamId) -> Option<&BufferFootprint> {
        self.reads.get(&p)
    }
}

/// Resolve the read/write footprints of `kernel` under a concrete launch.
///
/// Purely static — no probing, no memory access — so the result is a
/// function of `(kernel, launch, scalar args)` alone and can ride along a
/// captured graph node.
pub fn launch_footprints(kernel: &Kernel, launch: &LaunchConfig, args: &[Arg]) -> LaunchFootprints {
    let forms = VarForms::of_kernel(kernel);
    let env = launch_sym_env(*launch, args);
    let mut fp = LaunchFootprints::default();

    let record = |map: &mut BTreeMap<ParamId, BufferFootprint>, p: ParamId, index: &Expr| {
        let elem_bytes = match &kernel.params[p.index()] {
            Param::Buffer { elem, .. } => elem.size() as u64,
            Param::Scalar { .. } => return, // rejected by validation anyway
        };
        let next = match resolve_access(kernel, launch, &forms, &env, index) {
            Ok(iv) => iv,
            Err(why) => {
                map.insert(p, BufferFootprint::Unknown { why });
                return;
            }
        };
        match map.entry(p).or_insert_with(|| BufferFootprint::Must {
            elem_bytes,
            intervals: Vec::new(),
        }) {
            BufferFootprint::Must { intervals, .. } => {
                if !intervals.contains(&next) {
                    intervals.push(next);
                }
            }
            BufferFootprint::Unknown { .. } => {} // stays Unknown
        }
    };

    kernel.visit_stmts(&mut |s| {
        match s {
            Stmt::Store {
                mem: MemRef::Global(p),
                index,
                ..
            } => record(&mut fp.writes, *p, index),
            Stmt::AtomicRmw {
                mem: MemRef::Global(p),
                index,
                ..
            } => {
                record(&mut fp.writes, *p, index);
                record(&mut fp.reads, *p, index);
            }
            _ => {}
        }
        // All loads, including those inside store indices/values and guards.
        s.visit_exprs(&mut |e| {
            e.visit(&mut |e| {
                if let Expr::Load {
                    mem: MemRef::Global(p),
                    index,
                } = e
                {
                    record(&mut fp.reads, *p, index);
                }
            });
        });
    });
    fp
}

/// Resolve one access index to a per-block interval, or explain why not.
fn resolve_access(
    _kernel: &Kernel,
    launch: &LaunchConfig,
    forms: &VarForms,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
    index: &Expr,
) -> Result<BlockInterval, String> {
    let form = affine_of_expr(index, forms).ok_or_else(|| "non-affine index".to_string())?;
    let (coeffs, c0) = form
        .eval_coeffs(env)
        .ok_or_else(|| "unresolvable coefficient".to_string())?;
    let mut coeff = 0i128;
    let mut span = Interval::point(c0);
    for (v, c) in coeffs {
        if c == 0 {
            continue;
        }
        match v {
            IdxVar::Thread(a) => {
                let reach = c * (launch.block.get(a) as i128 - 1);
                span = span.add(Interval::point(0).hull(Interval::point(reach)));
            }
            IdxVar::Block(Axis::X) => {
                if launch.grid.y != 1 || launch.grid.z != 1 {
                    return Err("blockIdx on a multi-axis grid".to_string());
                }
                coeff += c;
            }
            IdxVar::Block(a) => {
                if launch.grid.get(a) != 1 {
                    return Err(format!("blockIdx.{a} in index"));
                }
                // extent-1 axis: the variable is constantly 0.
            }
            IdxVar::Loop(_) => return Err("loop-dependent index".to_string()),
        }
    }
    Ok(BlockInterval { coeff, span })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::parse_kernel;

    fn kernel_of(src: &str) -> Kernel {
        parse_kernel(src).expect("parse")
    }

    #[test]
    fn slice_local_kernel_is_must_with_block_coeff() {
        let k = kernel_of(
            "__global__ void f(float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = 2.0f * x[id];
            }",
        );
        let launch = LaunchConfig::cover1(1024, 128);
        let fp = launch_footprints(&k, &launch, &[Arg::int(0), Arg::int(0), Arg::int(1024)]);
        let x = k.param_by_name("x").unwrap();
        let y = k.param_by_name("y").unwrap();
        let read = fp.reads.get(&x).expect("x read");
        assert!(read.is_must());
        // block b reads elements [128b, 128b + 127] -> bytes [512b, 512b+512)
        assert_eq!(read.byte_ranges(2..3), Some(vec![(1024, 1536)]));
        assert_eq!(read.byte_ranges(0..8), Some(vec![(0, 4096)]));
        let write = fp.writes.get(&y).expect("y write");
        assert!(write.is_must());
        assert!(!fp.reads.contains_key(&y), "y is write-only");
    }

    #[test]
    fn indirect_index_is_unknown() {
        let k = kernel_of(
            "__global__ void g(int* idx, float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = x[idx[id]];
            }",
        );
        let launch = LaunchConfig::cover1(256, 64);
        let fp = launch_footprints(
            &k,
            &launch,
            &[Arg::int(0), Arg::int(0), Arg::int(0), Arg::int(256)],
        );
        let x = k.param_by_name("x").unwrap();
        assert!(
            !fp.reads.get(&x).expect("x read").is_must(),
            "data-dependent read must stay Unknown"
        );
        // The index buffer itself is still an affine Must read.
        let idx = k.param_by_name("idx").unwrap();
        assert!(fp.reads.get(&idx).unwrap().is_must());
    }

    #[test]
    fn block_invariant_read_has_zero_coeff() {
        let k = kernel_of(
            "__global__ void h(float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = x[id] + x[0];
            }",
        );
        let launch = LaunchConfig::cover1(512, 64);
        let fp = launch_footprints(&k, &launch, &[Arg::int(0), Arg::int(0), Arg::int(512)]);
        let x = k.param_by_name("x").unwrap();
        let BufferFootprint::Must { intervals, .. } = fp.reads.get(&x).unwrap() else {
            panic!("expected Must");
        };
        assert_eq!(intervals.len(), 2, "slice-local + broadcast element");
        assert!(intervals.contains(&BlockInterval {
            coeff: 0,
            span: Interval::point(0),
        }));
        // Blocks 4..8 read their slices plus element 0.
        let ranges = fp.reads.get(&x).unwrap().byte_ranges(4..8).unwrap();
        assert!(ranges.contains(&(4 * 64 * 4, 8 * 64 * 4)));
        assert!(ranges.contains(&(0, 4)));
    }

    #[test]
    fn loop_dependent_index_is_unknown() {
        let k = kernel_of(
            "__global__ void l(float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0f;
                for (int i = 0; i < 4; i++) { acc = acc + x[id + i]; }
                if (id < n) y[id] = acc;
            }",
        );
        let launch = LaunchConfig::cover1(256, 64);
        let fp = launch_footprints(&k, &launch, &[Arg::int(0), Arg::int(0), Arg::int(256)]);
        let x = k.param_by_name("x").unwrap();
        assert!(!fp.reads.get(&x).unwrap().is_must());
    }

    #[test]
    fn atomic_counts_as_read_and_write() {
        let k = kernel_of(
            "__global__ void a(int* c, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) atomicAdd(&c[0], 1);
            }",
        );
        let launch = LaunchConfig::cover1(128, 64);
        let fp = launch_footprints(&k, &launch, &[Arg::int(0), Arg::int(128)]);
        let c = k.param_by_name("c").unwrap();
        assert!(fp.reads.contains_key(&c));
        assert!(fp.writes.contains_key(&c));
    }
}
