//! # cucc-analysis — compiler analyses for GPU-to-CPU-cluster migration
//!
//! This crate implements the compiler side of CuCC (paper §5–§6):
//!
//! * [`poly`] / [`affine`] — symbolic polynomial and affine-form machinery
//!   used to reason about write indices with launch-time-unknown values;
//! * [`variance`] — thread-/block-variance taint analysis (condition 2);
//! * [`distributable`] — the **Allgather distributable analysis**: decides
//!   whether a kernel's blocks can be partitioned across cluster nodes so
//!   that a balanced in-place Allgather restores consistency, and records
//!   the metadata of Figure 6 (`tail_divergent`, `mem_ptr`, `unit_size`);
//! * [`plan`] — launch-time resolution of that metadata into an executable
//!   three-phase plan (full blocks, chunk granularity, gathered regions);
//! * [`oracle`] — a dynamic write-interval oracle that validates plans
//!   against the formal definition of §6.1 (used by the test suite to prove
//!   the static analysis sound);
//! * [`simd`] — vectorizability analysis of the transformed thread loop,
//!   driving the SIMD-Focused vs Thread-Focused performance model (§8.2);
//! * [`verify`] — the **kernel verifier**: static inter-block race /
//!   out-of-bounds / barrier-divergence checking on a MAY/MUST/UNKNOWN
//!   lattice, cross-validated by the dynamic sanitizer in `cucc-exec`;
//! * [`footprint`] — launch-resolved, per-node-sliceable read/write
//!   footprints (`Must`/`Unknown`) consumed by the launch-graph
//!   communication optimizer in `cucc-core`;
//! * [`range`] — flow-sensitive interval **abstract interpretation** over
//!   compiled bytecode, producing per-access bounds certificates that the
//!   engines consume to elide bounds checks and the verifier consumes to
//!   discharge MAY-bounds findings;
//! * [`lint`] — dead-store / redundant-barrier / constant-condition /
//!   unreachable-code findings on top of the range analysis (`cucc lint`).

pub mod affine;
pub mod distributable;
pub mod footprint;
pub mod lint;
pub mod oracle;
pub mod plan;
pub mod poly;
pub mod range;
pub mod simd;
pub mod variance;
pub mod verify;

pub use affine::{affine_of_expr, AffineForm, IdxVar, VarForms};
pub use distributable::{
    analyze_kernel, GatherBuffer, GuardClass, KernelMeta, Reason, TailGuard, Verdict, WriteSite,
};
pub use footprint::{launch_footprints, BlockInterval, BufferFootprint, LaunchFootprints};
pub use lint::{lint_kernel, LintReport};
pub use oracle::{verify_plan, OracleReport};
pub use plan::{
    full_blocks_under_guard, plan_launch, BufferRegion, Partition, Plan, ReplicationCause,
    ThreePhasePlan,
};
pub use poly::{Poly, Sym};
pub use range::{
    analyze_ranges, certify_program, global_extents, param_slot_extents, AccessCert, AccessKind,
    BranchFact, Interval, RangeAnalysis,
};
pub use simd::{analyze_simd, SimdClass, SimdReport};
pub use variance::{var_variance, Variance};
pub use verify::{
    analyze_block_races, canonical_check_input, cause_diagnostic, reason_diagnostics,
    verify_launch, Diagnostic, PropertyVerdict, RaceAnalysis, Rule, Severity, SiteRef,
    VerifyReport,
};

/// Complete compile-time analysis result for one kernel.
#[derive(Debug, Clone)]
pub struct KernelAnalysis {
    /// Allgather-distributable verdict (with metadata or fallback reasons).
    pub verdict: Verdict,
    /// Thread-loop vectorizability.
    pub simd: SimdReport,
}

/// Run every CuCC analysis on a kernel.
pub fn analyze(kernel: &cucc_ir::Kernel) -> KernelAnalysis {
    KernelAnalysis {
        verdict: analyze_kernel(kernel),
        simd: analyze_simd(kernel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::parse_kernel;

    #[test]
    fn analyze_bundles_both_results() {
        let k = parse_kernel(
            "__global__ void k(float* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = 1.0f;
            }",
        )
        .unwrap();
        let a = analyze(&k);
        assert!(a.verdict.is_distributable());
        assert_eq!(a.simd.class, SimdClass::Full);
    }
}
