//! # Flow-sensitive interval range analysis over compiled bytecode
//!
//! An abstract interpreter for [`cucc_exec::bytecode`] programs: it runs the
//! compiled instruction stream over an interval domain instead of concrete
//! values, computing for every register at every program point a sound
//! enclosure of the values it can hold on *any* thread of *any* block of the
//! launch. The launch configuration is part of the abstraction —
//! `threadIdx`/`blockIdx` registers start at `[0, dim-1]` and scalar
//! arguments were already constant-folded by [`Program::compile`] — so the
//! results are launch-resolved facts, exactly what the paper's §6 machinery
//! needs to discharge checks statically.
//!
//! Three consumers:
//!
//! 1. **Certified bounds-check elision** — [`certify_program`] proves
//!    individual `Load`/`Store`/`AtomicRmw` sites in-bounds against the
//!    launch-resolved buffer extents and attaches the certificate table to
//!    the [`Program`]; the bytecode and lane engines then take unchecked
//!    fast paths for certified accesses ([`CertMode::Elide`]) or
//!    cross-validate every certificate at runtime ([`CertMode::Validate`]).
//! 2. **Verifier discharge** — `verify.rs` upgrades MAY-bounds diagnostics
//!    to Safe when every reachable access to a buffer is certified.
//! 3. **Lint** — [`RangeAnalysis::branches`] and
//!    [`RangeAnalysis::reachable`] drive the constant-condition and
//!    unreachable-code lints in `lint.rs`.
//!
//! ## Domain and soundness
//!
//! The element is `[lo, hi] ⊆ i128` with the invariant that any value a
//! register actually holds (interpreted via `Value::as_i64`) lies inside.
//! Arithmetic is evaluated exactly in `i128` (no intermediate can overflow)
//! and the result is kept only when it fits `i64`; otherwise the transfer
//! yields ⊤ = `[i64::MIN, i64::MAX]`, which makes the analysis sound for the
//! engines' *wrapping* integer semantics. Floats are ⊤ unconditionally
//! (`as_i64` of any float saturates into the `i64` range), tracked by a
//! may-be-float bit so integer-only facts (comparison results, bit-ops) stay
//! precise.
//!
//! ## Fixpoint and widening
//!
//! Loops always lower to `ForInit`/`ForNext`, so the only back-edges in a
//! segment are `ForNext → back`. The worklist widens at exactly those
//! targets, using *threshold widening*: a grown bound snaps outward to the
//! nearest member of a constant pool harvested from the program (folded
//! constants, launch dimensions, buffer extents, each ±1) before giving up
//! and jumping to the `i64` extremes. That keeps `for (i = 0; i < n; ++i)`
//! at `i ∈ [0, n-1]` instead of ⊤ without iterating `n` times. Two plain
//! narrowing passes afterwards recover precision lost to overshoot (any
//! post-fixpoint re-applied through the monotone transfer stays sound).
//!
//! Guard refinement: integer comparisons record a provenance tag on their
//! destination register; `JumpIfFalse`/`JumpIfTrue` edges re-apply the
//! (possibly negated) comparison to narrow both operands, and `Return`
//! simply ends the path — which is how the ubiquitous
//! `if (id >= n) return;` tail guard propagates to every later phase.

use std::collections::BTreeMap;

use cucc_exec::bytecode::{CertMode, Inst, PhaseOp, Program, Reg, SlotKind};
use cucc_exec::memory::BufferId;
use cucc_exec::Arg;
use cucc_ir::{Axis, BinOp, Dim3, Intrinsic, Scalar, UnOp, Value};

const I64MIN: i128 = i64::MIN as i128;
const I64MAX: i128 = i64::MAX as i128;

/// Widen (at loop heads) after this many growing joins at one program point.
const WIDEN_AFTER: u32 = 3;
/// Fall back from threshold widening to the `i64` extremes after this many.
const EXTREME_AFTER: u32 = 24;
/// Decreasing (narrowing) passes run after the ascending fixpoint.
const NARROW_PASSES: usize = 2;

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

/// A closed integer interval `[lo, hi]` over `i128`.
///
/// This is the shared interval algebra of the analysis crate: the abstract
/// interpreter uses it clamped to `i64` (see [`Interval::fit_i64`]), while
/// the footprint and verifier layers use the exact `i128` operations for
/// byte-offset hulls. All arithmetic saturates at the `i128` extremes, which
/// is sound for enclosures (the true set is always contained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: i128,
    pub hi: i128,
}

impl Interval {
    /// The full `i64` range — ⊤ of the bytecode value domain.
    pub const I64_FULL: Interval = Interval {
        lo: I64MIN,
        hi: I64MAX,
    };

    /// Single-point interval.
    pub const fn point(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; callers must pass `lo <= hi`.
    pub fn new(lo: i128, hi: i128) -> Interval {
        debug_assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Smallest interval containing both operands (join).
    pub fn hull(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Intersection (meet); `None` when empty.
    pub fn meet(self, o: Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Clamp from above: `self ∩ (-∞, hi]`.
    pub fn meet_hi(self, hi: i128) -> Option<Interval> {
        (self.lo <= hi).then(|| Interval::new(self.lo, self.hi.min(hi)))
    }

    /// Clamp from below: `self ∩ [lo, +∞)`.
    pub fn meet_lo(self, lo: i128) -> Option<Interval> {
        (self.hi >= lo).then(|| Interval::new(self.lo.max(lo), self.hi))
    }

    /// Pointwise sum (saturating).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    /// Pointwise difference (saturating).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }

    /// Pointwise product: hull of the four corner products (saturating).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: *c.iter().min().unwrap(),
            hi: *c.iter().max().unwrap(),
        }
    }

    /// Multiply by a constant.
    pub fn scale(self, k: i128) -> Interval {
        self.mul(Interval::point(k))
    }

    /// Shift both bounds by a constant (saturating).
    pub fn translate(self, d: i128) -> Interval {
        Interval {
            lo: self.lo.saturating_add(d),
            hi: self.hi.saturating_add(d),
        }
    }

    /// Exact negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Interval {
        Interval {
            lo: self.hi.saturating_neg(),
            hi: self.lo.saturating_neg(),
        }
    }

    pub fn contains(self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `Some(v)` when the interval is the single point `v`.
    pub fn as_point(self) -> Option<i128> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Does every member fit in `i64`?
    pub fn fits_i64(self) -> bool {
        self.lo >= I64MIN && self.hi <= I64MAX
    }

    /// The enclosure a *wrapping* `i64` computation admits: the exact result
    /// if it fits, the full `i64` range otherwise (the computation may have
    /// wrapped anywhere).
    pub fn fit_i64(self) -> Interval {
        if self.fits_i64() {
            self
        } else {
            Interval::I64_FULL
        }
    }

    /// Largest absolute value of any member.
    pub fn abs_hi(self) -> i128 {
        self.lo.saturating_abs().max(self.hi.saturating_abs())
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self == &Interval::I64_FULL {
            write!(f, "⊤")
        } else if let Some(v) = self.as_point() {
            write!(f, "{{{v}}}")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

// ---------------------------------------------------------------------------
// Abstract values and states
// ---------------------------------------------------------------------------

/// Abstract register value: an interval enclosing `as_i64` of every concrete
/// value, plus a definitely-integer bit. May-be-float values are pinned at ⊤
/// (float payloads are not tracked; `as_i64` of a float saturates into the
/// `i64` range, so ⊤ is the correct enclosure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsVal {
    iv: Interval,
    int: bool,
}

impl AbsVal {
    fn int(iv: Interval) -> AbsVal {
        AbsVal {
            iv: iv.fit_i64(),
            int: true,
        }
    }

    fn point(v: i64) -> AbsVal {
        AbsVal::int(Interval::point(v as i128))
    }

    fn float() -> AbsVal {
        AbsVal {
            iv: Interval::I64_FULL,
            int: false,
        }
    }

    fn top_int() -> AbsVal {
        AbsVal::int(Interval::I64_FULL)
    }

    fn from_value(v: Value) -> AbsVal {
        match v {
            Value::I64(x) => AbsVal::point(x),
            Value::F64(_) => AbsVal::float(),
        }
    }

    /// Interval of `as_i64` readings of this value.
    fn as_int(self) -> Interval {
        if self.int {
            self.iv
        } else {
            Interval::I64_FULL
        }
    }

    fn join(self, o: AbsVal) -> AbsVal {
        if self.int && o.int {
            AbsVal::int(self.iv.hull(o.iv))
        } else {
            AbsVal::float()
        }
    }
}

/// Comparison provenance: register `dst` holds the 0/1 result of
/// `lhs <op> rhs` where both operand registers were definitely-integer and
/// still hold the compared values. Branch edges re-apply the comparison to
/// narrow the operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Prov {
    op: BinOp,
    lhs: Reg,
    rhs: Reg,
}

/// Abstract machine state at one program point: one generic thread's
/// register file (per-thread semantics are identical across threads and
/// engine tiers, so a single frame abstracts them all).
#[derive(Debug, Clone, PartialEq)]
struct State {
    vals: Vec<AbsVal>,
    prov: Vec<Option<Prov>>,
}

impl State {
    fn get(&self, r: Reg) -> AbsVal {
        self.vals[r as usize]
    }

    /// Overwrite a register: kills its provenance and any provenance that
    /// mentions it as a comparison operand.
    fn set(&mut self, r: Reg, v: AbsVal) {
        self.vals[r as usize] = v;
        self.prov[r as usize] = None;
        for p in &mut self.prov {
            if let Some(q) = p {
                if q.lhs == r || q.rhs == r {
                    *p = None;
                }
            }
        }
    }

    /// Narrow a register in place without touching provenance (the value is
    /// unchanged, only the enclosure shrank).
    fn narrow(&mut self, r: Reg, iv: Interval) {
        let v = &mut self.vals[r as usize];
        v.iv = iv;
    }

    /// Pointwise join; true when `self` changed.
    fn join_from(&mut self, o: &State) -> bool {
        let mut changed = false;
        for (a, b) in self.vals.iter_mut().zip(&o.vals) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        for (a, b) in self.prov.iter_mut().zip(&o.prov) {
            if a.is_some() && *a != *b {
                *a = None;
                changed = true;
            }
        }
        changed
    }
}

fn join_opt(a: Option<State>, b: Option<State>) -> Option<State> {
    match (a, b) {
        (Some(mut x), Some(y)) => {
            x.join_from(&y);
            Some(x)
        }
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// What kind of memory instruction an [`AccessCert`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
    Atomic,
}

/// The analysis verdict for one reachable memory instruction.
#[derive(Debug, Clone)]
pub struct AccessCert {
    /// Instruction index in [`Program::code`].
    pub pc: u32,
    /// Memory-slot id the instruction addresses.
    pub slot: u32,
    pub kind: AccessKind,
    /// Enclosure of the element index, or `None` when the index register may
    /// hold a float (then no integer enclosure better than ⊤ exists).
    pub index: Option<Interval>,
    /// Launch-resolved slot extent in elements, when known.
    pub extent: Option<u64>,
    /// Proven `0 <= index < extent` on every execution — the engines may
    /// skip the bounds check.
    pub certified: bool,
}

/// Truth verdict for one reachable conditional branch.
#[derive(Debug, Clone, Copy)]
pub struct BranchFact {
    /// The `JumpIfFalse`/`JumpIfTrue` instruction (or, for a uniform `if`,
    /// the final instruction of its condition segment).
    pub pc: u32,
    /// `Some(true)`: the condition is provably always truthy;
    /// `Some(false)`: provably always falsy; `None`: both outcomes possible.
    pub outcome: Option<bool>,
}

/// Full result of [`analyze_ranges`].
#[derive(Debug, Clone)]
pub struct RangeAnalysis {
    /// One entry per *reachable* memory instruction, in pc order.
    pub certs: Vec<AccessCert>,
    /// Per-pc certificate bits, aligned with [`Program::code`] — the exact
    /// table [`Program::attach_certs`] consumes.
    pub pc_certified: Vec<bool>,
    /// Per-pc reachability under this launch.
    pub reachable: Vec<bool>,
    /// Truth facts for every reachable conditional, in pc order.
    pub branches: Vec<BranchFact>,
}

impl RangeAnalysis {
    /// `(certified, total)` over reachable memory instructions.
    pub fn stats(&self) -> (usize, usize) {
        let c = self.certs.iter().filter(|c| c.certified).count();
        (c, self.certs.len())
    }

    /// Per-slot discharge map: slot id → true when every *reachable* access
    /// to the slot is certified in-bounds (the verifier's MAY→Safe hook).
    pub fn certified_slots(&self) -> BTreeMap<u32, bool> {
        let mut m = BTreeMap::new();
        for c in &self.certs {
            let e = m.entry(c.slot).or_insert(true);
            *e &= c.certified;
        }
        m
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Launch-resolved element extents per memory slot, for [`analyze_ranges`]:
/// shared/local slots from their compile-time lengths, global slots through
/// `size_of` (byte size of the bound buffer, e.g. [`MemPool::size_of`]).
///
/// [`MemPool::size_of`]: cucc_exec::MemPool::size_of
pub fn global_extents(
    prog: &Program,
    size_of: impl Fn(BufferId) -> Option<usize>,
) -> Vec<Option<u64>> {
    prog.slots()
        .iter()
        .map(|s| {
            let info = s.as_ref()?;
            match info.kind {
                SlotKind::Global { buf } => {
                    size_of(buf).map(|bytes| (bytes / info.elem.size()) as u64)
                }
                SlotKind::Shared { .. } | SlotKind::Local { .. } => Some(info.len_elems as u64),
            }
        })
        .collect()
}

/// Map per-*parameter* extents (the verifier's convention) onto per-*slot*
/// extents (this module's): a global slot looks up the parameter its buffer
/// is bound to in `args`, shared/local slots use their compile-time lengths.
pub fn param_slot_extents(
    prog: &Program,
    args: &[Arg],
    extents: &[Option<u64>],
) -> Vec<Option<u64>> {
    prog.slots()
        .iter()
        .map(|s| {
            let info = s.as_ref()?;
            match info.kind {
                SlotKind::Global { buf } => {
                    let p = args
                        .iter()
                        .position(|a| matches!(a, Arg::Buffer(b) if *b == buf))?;
                    extents.get(p).copied().flatten()
                }
                SlotKind::Shared { .. } | SlotKind::Local { .. } => Some(info.len_elems as u64),
            }
        })
        .collect()
}

/// Run the abstract interpreter over `prog`. `extents` gives the element
/// count of each memory slot (index = slot id, `None` = unknown); shared and
/// local slots always use their compile-time lengths regardless.
pub fn analyze_ranges(prog: &Program, extents: &[Option<u64>]) -> RangeAnalysis {
    let n = prog.code().len();
    assert_eq!(
        extents.len(),
        prog.slots().len(),
        "one extent entry per memory slot"
    );
    let mut col = Collector {
        reached: vec![false; n],
        access: BTreeMap::new(),
        branch: BTreeMap::new(),
    };
    let mut az = Analyzer {
        prog,
        thresholds: harvest_thresholds(prog, extents),
    };
    az.exec_ops(prog.phases(), Some(entry_state(prog)), &mut col);

    let mut pc_certified = vec![false; n];
    let mut certs = Vec::with_capacity(col.access.len());
    for (pc, rec) in col.access {
        let extent = slot_extent(prog, extents, rec.slot);
        let certified = match (rec.idx, extent) {
            (Some(iv), Some(e)) => iv.lo >= 0 && iv.hi < e as i128,
            _ => false,
        };
        pc_certified[pc as usize] = certified;
        certs.push(AccessCert {
            pc,
            slot: rec.slot,
            kind: rec.kind,
            index: rec.idx,
            extent,
            certified,
        });
    }
    let branches = col
        .branch
        .into_iter()
        .map(|(pc, (can_true, can_false))| BranchFact {
            pc,
            outcome: match (can_true, can_false) {
                (true, false) => Some(true),
                (false, true) => Some(false),
                _ => None,
            },
        })
        .collect();
    RangeAnalysis {
        certs,
        pc_certified,
        reachable: col.reached,
        branches,
    }
}

/// Analyze `prog` and attach the resulting certificate table (see
/// [`Program::attach_certs`]). Returns the analysis for inspection.
pub fn certify_program(
    prog: &mut Program,
    extents: &[Option<u64>],
    mode: CertMode,
) -> RangeAnalysis {
    let ra = analyze_ranges(prog, extents);
    prog.attach_certs(&ra.pc_certified, mode);
    ra
}

fn slot_extent(prog: &Program, extents: &[Option<u64>], slot: u32) -> Option<u64> {
    let info = prog.slots()[slot as usize].as_ref()?;
    match info.kind {
        SlotKind::Global { .. } => extents[slot as usize],
        SlotKind::Shared { .. } | SlotKind::Local { .. } => Some(info.len_elems as u64),
    }
}

fn axis_len(d: Dim3, ax: Axis) -> u32 {
    match ax {
        Axis::X => d.x,
        Axis::Y => d.y,
        Axis::Z => d.z,
    }
}

fn entry_state(prog: &Program) -> State {
    let nr = prog.num_regs() as usize;
    // Temporaries may hold stale values from the previous block (`reset`
    // rezeroes only the variables), so they start at may-be-float ⊤.
    let mut vals = vec![AbsVal::float(); nr];
    for v in vals.iter_mut().take(prog.num_vars() as usize) {
        *v = AbsVal::point(0); // vars are zeroed per block
    }
    let base = prog.const_base() as usize;
    for (i, c) in prog.const_pool().iter().enumerate() {
        vals[base + i] = AbsVal::from_value(*c);
    }
    let tid_base = base + prog.const_pool().len();
    let block = prog.launch().block;
    for (i, ax) in prog.tid_pool().iter().enumerate() {
        let n = axis_len(block, *ax).max(1) as i128;
        vals[tid_base + i] = AbsVal::int(Interval::new(0, n - 1));
    }
    State {
        prov: vec![None; nr],
        vals,
    }
}

/// Threshold set for widening: every folded integer constant, launch
/// dimension and known extent, each with its ±1 neighbours, so loop bounds
/// like `i < n` stabilize at `[0, n-1]` in a handful of joins.
fn harvest_thresholds(prog: &Program, extents: &[Option<u64>]) -> Vec<i128> {
    let mut t = vec![I64MIN, -1, 0, 1, I64MAX];
    let mut push = |v: i128| {
        t.push(v.saturating_sub(1));
        t.push(v);
        t.push(v.saturating_add(1));
    };
    for c in prog.const_pool() {
        if let Value::I64(v) = c {
            push(*v as i128);
        }
    }
    let l = prog.launch();
    for d in [l.block, l.grid] {
        for ax in [Axis::X, Axis::Y, Axis::Z] {
            push(axis_len(d, ax) as i128);
        }
    }
    push(l.block.count() as i128);
    push((l.block.count() * l.grid.count()) as i128);
    for e in extents.iter().flatten() {
        push(*e as i128);
    }
    t.sort_unstable();
    t.dedup();
    t
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

struct AccessRec {
    slot: u32,
    kind: AccessKind,
    /// Joined index enclosure; `None` once any visit saw a may-be-float
    /// index.
    idx: Option<Interval>,
}

struct Collector {
    reached: Vec<bool>,
    access: BTreeMap<u32, AccessRec>,
    /// pc → (can be truthy, can be falsy), joined across visits.
    branch: BTreeMap<u32, (bool, bool)>,
}

impl Collector {
    fn rec_access(&mut self, pc: u32, slot: u32, kind: AccessKind, idx: AbsVal) {
        let iv = idx.int.then_some(idx.iv);
        self.access
            .entry(pc)
            .and_modify(|r| {
                r.idx = match (r.idx, iv) {
                    (Some(a), Some(b)) => Some(a.hull(b)),
                    _ => None,
                };
            })
            .or_insert(AccessRec {
                slot,
                kind,
                idx: iv,
            });
    }

    fn rec_branch(&mut self, pc: u32, cond: AbsVal) {
        let can_false = !cond.int || cond.iv.contains(0);
        let can_true = !cond.int || cond.iv != Interval::point(0);
        let e = self.branch.entry(pc).or_insert((false, false));
        e.0 |= can_true;
        e.1 |= can_false;
    }
}

// ---------------------------------------------------------------------------
// The interpreter
// ---------------------------------------------------------------------------

struct Analyzer<'a> {
    prog: &'a Program,
    thresholds: Vec<i128>,
}

impl<'a> Analyzer<'a> {
    /// Interpret a phase-op sequence. `None` in/out means no thread reaches
    /// this point (all paths returned) — subsequent ops stay unreached.
    fn exec_ops(
        &mut self,
        ops: &[PhaseOp],
        st: Option<State>,
        col: &mut Collector,
    ) -> Option<State> {
        let mut st = st;
        for op in ops {
            let cur = st?;
            st = match op {
                PhaseOp::Seg { start, end, .. } => self.seg_fix(*start, *end, cur, col),
                PhaseOp::Barrier => Some(cur),
                PhaseOp::UniformIf {
                    cond,
                    creg,
                    then_ops,
                    else_ops,
                } => self.uniform_if(*cond, *creg, then_ops, else_ops, cur, col),
                PhaseOp::UniformFor {
                    var,
                    bounds,
                    sreg,
                    ereg,
                    streg,
                    body,
                } => self.uniform_for(*var, *bounds, *sreg, *ereg, *streg, body, cur, col),
            };
        }
        st
    }

    fn uniform_if(
        &mut self,
        cond: (u32, u32),
        creg: Reg,
        then_ops: &[PhaseOp],
        else_ops: &[PhaseOp],
        cur: State,
        col: &mut Collector,
    ) -> Option<State> {
        // The condition segment runs on thread 0 only; other threads keep
        // their old temporaries, so the branch bodies start from the join.
        let sb = self.seg_fix(cond.0, cond.1, cur.clone(), col)?;
        let cv = sb.get(creg);
        if cond.1 > cond.0 {
            col.rec_branch(cond.1 - 1, cv);
        }
        let can_true = !cv.int || cv.iv != Interval::point(0);
        let can_false = !cv.int || cv.iv.contains(0);
        let mut base = cur;
        base.join_from(&sb);
        let t = can_true
            .then(|| self.exec_ops(then_ops, Some(base.clone()), col))
            .flatten();
        let e = can_false
            .then(|| self.exec_ops(else_ops, Some(base), col))
            .flatten();
        join_opt(t, e)
    }

    #[allow(clippy::too_many_arguments)]
    fn uniform_for(
        &mut self,
        var: Reg,
        bounds: (u32, u32),
        sreg: Reg,
        ereg: Reg,
        streg: Reg,
        body: &[PhaseOp],
        cur: State,
        col: &mut Collector,
    ) -> Option<State> {
        let sb = self.seg_fix(bounds.0, bounds.1, cur.clone(), col)?;
        let s = sb.get(sreg).as_int();
        let e = sb.get(ereg).as_int();
        let stp = sb.get(streg).as_int();
        if stp.as_point() == Some(0) {
            return None; // zero step faults the launch
        }
        let mut base = cur;
        base.join_from(&sb);

        // Enclosure of the loop variable while the body runs (`v < e` for
        // positive step, `v > e` for negative).
        let body_var = if stp.lo > 0 {
            s.meet_hi(e.hi.saturating_sub(1))
        } else if stp.hi < 0 {
            s.meet_lo(e.lo.saturating_add(1))
        } else {
            Some(Interval::I64_FULL)
        }
        .map(|first| {
            if stp.lo > 0 {
                Interval::new(first.lo, e.hi.saturating_sub(1).max(first.lo))
            } else if stp.hi < 0 {
                Interval::new(e.lo.saturating_add(1).min(first.hi), first.hi)
            } else {
                Interval::I64_FULL
            }
        });

        let zero_trip_possible = if stp.lo > 0 {
            s.hi >= e.lo
        } else if stp.hi < 0 {
            s.lo <= e.hi
        } else {
            true
        };

        let mut acc = base.clone();
        let mut any_out = false;
        if let Some(hull) = body_var {
            let mut iters = 0u32;
            loop {
                let mut bi = acc.clone();
                bi.set(var, AbsVal::int(hull));
                let out = self.exec_ops(body, Some(bi), col);
                let Some(out) = out else { break };
                any_out = true;
                let before = acc.clone();
                let changed = acc.join_from(&out);
                if !changed {
                    break;
                }
                iters += 1;
                if iters > WIDEN_AFTER {
                    self.widen(&before, &mut acc, iters > EXTREME_AFTER);
                }
            }
        }
        if body_var.is_some() && !zero_trip_possible && !any_out {
            return None; // at least one trip, and every body path returned
        }
        // Final `var` value: `s` on a zero-trip, first past-the-end value
        // otherwise.
        let after = if stp.lo > 0 {
            Interval::new(
                s.lo.min(e.lo),
                s.hi.max(e.hi.saturating_add(stp.hi).saturating_sub(1)),
            )
        } else if stp.hi < 0 {
            Interval::new(
                s.lo.min(e.lo.saturating_add(stp.lo).saturating_add(1)),
                s.hi.max(e.hi),
            )
        } else {
            Interval::I64_FULL
        };
        acc.set(var, AbsVal::int(after.fit_i64()));
        Some(acc)
    }

    /// Threshold-widen `now` against `before`: bounds that grew snap outward
    /// to the nearest harvested constant (or the `i64` extremes once
    /// `extreme` is set).
    fn widen(&self, before: &State, now: &mut State, extreme: bool) {
        for (b, n) in before.vals.iter().zip(now.vals.iter_mut()) {
            if n.iv.lo < b.iv.lo {
                n.iv.lo = if extreme {
                    I64MIN
                } else {
                    self.snap_down(n.iv.lo)
                };
            }
            if n.iv.hi > b.iv.hi {
                n.iv.hi = if extreme {
                    I64MAX
                } else {
                    self.snap_up(n.iv.hi)
                };
            }
        }
    }

    fn snap_up(&self, v: i128) -> i128 {
        match self.thresholds.binary_search(&v) {
            Ok(_) => v,
            Err(i) => self.thresholds.get(i).copied().unwrap_or(I64MAX),
        }
    }

    fn snap_down(&self, v: i128) -> i128 {
        match self.thresholds.binary_search(&v) {
            Ok(_) => v,
            Err(0) => I64MIN,
            Err(i) => self.thresholds[i - 1],
        }
    }

    /// Worklist fixpoint over one code segment `[start, end)`; returns the
    /// join over all paths that fall off the end (`None` when every path
    /// returns). Records reachability, access and branch facts.
    fn seg_fix(
        &mut self,
        start: u32,
        end: u32,
        entry: State,
        col: &mut Collector,
    ) -> Option<State> {
        let n = (end - start) as usize;
        if n == 0 {
            return Some(entry);
        }
        let code = self.prog.code();
        // The only back-edges are ForNext → back; widen exactly there.
        let mut widen_at = vec![false; n + 1];
        for pc in start..end {
            if let Inst::ForNext { back, .. } = &code[pc as usize] {
                widen_at[(*back - start) as usize] = true;
            }
        }
        let mut ins: Vec<Option<State>> = vec![None; n + 1];
        ins[0] = Some(entry);
        let mut visits = vec![0u32; n + 1];
        let mut in_wl = vec![false; n + 1];
        let mut wl: Vec<usize> = vec![0];
        in_wl[0] = true;
        while let Some(rel) = wl.pop() {
            in_wl[rel] = false;
            if rel == n {
                continue;
            }
            let st = ins[rel].clone().expect("worklist entries have states");
            for (t, s) in self.edges(start, rel, st) {
                let merged = match &ins[t] {
                    None => {
                        ins[t] = Some(s);
                        true
                    }
                    Some(old) => {
                        let mut j = old.clone();
                        if j.join_from(&s) {
                            visits[t] += 1;
                            if widen_at[t] && visits[t] > WIDEN_AFTER {
                                let old = old.clone();
                                self.widen(&old, &mut j, visits[t] > EXTREME_AFTER);
                            }
                            ins[t] = Some(j);
                            true
                        } else {
                            false
                        }
                    }
                };
                if merged && !in_wl[t] {
                    in_wl[t] = true;
                    wl.push(t);
                }
            }
        }
        // Narrowing: re-apply the (monotone) transfer from the entry a few
        // times. Starting from a post-fixpoint this only shrinks states and
        // stays sound, clawing back precision the widening overshot.
        for _ in 0..NARROW_PASSES {
            let mut next: Vec<Option<State>> = vec![None; n + 1];
            next[0] = Some(ins[0].clone().expect("entry state"));
            // Two sweeps so forward edges see updated predecessors and back
            // edges still contribute (from the previous iterate).
            for sweep in 0..2 {
                for rel in 0..n {
                    let src = if sweep == 0 { &ins } else { &next };
                    let Some(st) = src[rel].clone() else { continue };
                    for (t, s) in self.edges(start, rel, st) {
                        match &mut next[t] {
                            slot @ None => *slot = Some(s),
                            Some(old) => {
                                old.join_from(&s);
                            }
                        }
                    }
                }
                if sweep == 0 {
                    // keep entry present for the second sweep
                    if next[0].is_none() {
                        next[0] = ins[0].clone();
                    }
                }
            }
            // Soundness guard: never let a narrowing pass *grow* a state
            // (paranoia against non-monotone corner cases); meet with the
            // widened solution.
            for (new, old) in next.iter_mut().zip(&ins) {
                match (new.as_mut(), old) {
                    (Some(nst), Some(ost)) => {
                        for (nv, ov) in nst.vals.iter_mut().zip(&ost.vals) {
                            if let Some(m) = nv.iv.meet(ov.iv) {
                                nv.iv = m;
                            }
                        }
                    }
                    (Some(_), None) => *new = None,
                    _ => {}
                }
            }
            ins = next;
        }
        // Final pass: record facts from the converged states.
        for (rel, slot) in ins.iter().enumerate().take(n) {
            let Some(st) = slot else { continue };
            let pc = start + rel as u32;
            col.reached[pc as usize] = true;
            match &code[pc as usize] {
                Inst::Load { slot, idx, .. } => {
                    col.rec_access(pc, *slot, AccessKind::Load, st.get(*idx));
                }
                Inst::Store { slot, idx, .. } => {
                    col.rec_access(pc, *slot, AccessKind::Store, st.get(*idx));
                }
                Inst::AtomicRmw { slot, idx, .. } => {
                    col.rec_access(pc, *slot, AccessKind::Atomic, st.get(*idx));
                }
                Inst::JumpIfFalse { cond, .. } | Inst::JumpIfTrue { cond, .. } => {
                    col.rec_branch(pc, st.get(*cond));
                }
                _ => {}
            }
        }
        ins[n].take()
    }

    /// Successor edges of the instruction at `start + rel`, with the state
    /// transformed and (on branch edges) refined. Relative target `n` is the
    /// segment exit.
    fn edges(&self, start: u32, rel: usize, mut st: State) -> Vec<(usize, State)> {
        let pc = start + rel as u32;
        let inst = &self.prog.code()[pc as usize];
        let r = |abs: u32| (abs - start) as usize;
        match inst {
            Inst::Jump { target } => vec![(r(*target), st)],
            Inst::JumpIfFalse { cond, target, .. } => {
                let mut out = Vec::with_capacity(2);
                let mut taken = st.clone();
                if refine_cond(&mut taken, *cond, false) {
                    out.push((r(*target), taken));
                }
                if refine_cond(&mut st, *cond, true) {
                    out.push((rel + 1, st));
                }
                out
            }
            Inst::JumpIfTrue { cond, target, .. } => {
                let mut out = Vec::with_capacity(2);
                let mut taken = st.clone();
                if refine_cond(&mut taken, *cond, true) {
                    out.push((r(*target), taken));
                }
                if refine_cond(&mut st, *cond, false) {
                    out.push((rel + 1, st));
                }
                out
            }
            Inst::ForInit {
                var,
                start: sreg,
                end: ereg,
                step: streg,
                exit,
            } => {
                let s = st.get(*sreg).as_int();
                let e = st.get(*ereg).as_int();
                let stp = st.get(*streg).as_int();
                // Bounds normalize to I64 in place; `sreg` becomes the
                // private induction register.
                st.set(*sreg, AbsVal::int(s));
                st.set(*ereg, AbsVal::int(e));
                st.set(*streg, AbsVal::int(stp));
                st.set(*var, AbsVal::int(s));
                if stp.as_point() == Some(0) {
                    return vec![]; // zero step faults
                }
                let mut out = Vec::with_capacity(2);
                // Body edge: the loop condition held at entry.
                let body = if stp.lo > 0 {
                    match (
                        s.meet_hi(e.hi.saturating_sub(1)),
                        e.meet_lo(s.lo.saturating_add(1)),
                    ) {
                        (Some(si), Some(ei)) => Some((si, ei)),
                        _ => None,
                    }
                } else if stp.hi < 0 {
                    match (
                        s.meet_lo(e.lo.saturating_add(1)),
                        e.meet_hi(s.hi.saturating_sub(1)),
                    ) {
                        (Some(si), Some(ei)) => Some((si, ei)),
                        _ => None,
                    }
                } else {
                    Some((s, e))
                };
                if let Some((si, ei)) = body {
                    let mut b = st.clone();
                    b.narrow(*sreg, si);
                    b.narrow(*var, si);
                    b.narrow(*ereg, ei);
                    out.push((rel + 1, b));
                }
                out.push((r(*exit), st));
                out
            }
            Inst::ForNext {
                var,
                ind,
                end: ereg,
                step: streg,
                back,
            } => {
                let stp = st.get(*streg).as_int();
                let e = st.get(*ereg).as_int();
                let v = st.get(*ind).as_int().add(stp).fit_i64();
                if stp.as_point() == Some(0) {
                    return vec![]; // unreachable: ForInit faulted
                }
                let mut out = Vec::with_capacity(2);
                let vb = if stp.lo > 0 {
                    v.meet_hi(e.hi.saturating_sub(1))
                } else if stp.hi < 0 {
                    v.meet_lo(e.lo.saturating_add(1))
                } else {
                    Some(v)
                };
                if let Some(vb) = vb {
                    let mut b = st.clone();
                    b.set(*ind, AbsVal::int(vb));
                    b.set(*var, AbsVal::int(vb));
                    out.push((r(*back), b));
                }
                let vf = if stp.lo > 0 {
                    v.meet_lo(e.lo)
                } else if stp.hi < 0 {
                    v.meet_hi(e.hi)
                } else {
                    Some(v)
                };
                if let Some(vf) = vf {
                    st.set(*ind, AbsVal::int(vf));
                    st.set(*var, AbsVal::int(vf));
                    out.push((rel + 1, st));
                }
                out
            }
            Inst::Return => vec![],
            _ => {
                apply_straight(&mut st, inst, self.prog);
                vec![(rel + 1, st)]
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Straight-line transfer functions
// ---------------------------------------------------------------------------

/// Interval enclosing every value a load of element type `ty` can produce
/// (as seen through `as_i64`), or `None` for float element types.
fn scalar_range(ty: Scalar) -> Option<Interval> {
    match ty {
        Scalar::U8 => Some(Interval::new(0, u8::MAX as i128)),
        Scalar::I8 => Some(Interval::new(i8::MIN as i128, i8::MAX as i128)),
        Scalar::I32 => Some(Interval::new(i32::MIN as i128, i32::MAX as i128)),
        Scalar::U32 => Some(Interval::new(0, u32::MAX as i128)),
        Scalar::I64 => Some(Interval::I64_FULL),
        Scalar::F32 | Scalar::F64 => None,
    }
}

fn apply_straight(st: &mut State, inst: &Inst, prog: &Program) {
    match inst {
        Inst::Const { dst, v, .. } => st.set(*dst, AbsVal::from_value(*v)),
        Inst::Tid { dst, axis } => {
            let n = axis_len(prog.launch().block, *axis).max(1) as i128;
            st.set(*dst, AbsVal::int(Interval::new(0, n - 1)));
        }
        Inst::Bid { dst, axis } => {
            let n = axis_len(prog.launch().grid, *axis).max(1) as i128;
            st.set(*dst, AbsVal::int(Interval::new(0, n - 1)));
        }
        Inst::Copy { dst, src } => {
            let v = st.get(*src);
            st.set(*dst, v);
            if dst != src {
                st.prov[*dst as usize] = st.prov[*src as usize];
            }
        }
        Inst::Unary { dst, op, src } => {
            let v = unary_transfer(*op, st.get(*src));
            st.set(*dst, v);
        }
        Inst::Binary { dst, op, lhs, rhs } => {
            let (a, b) = (st.get(*lhs), st.get(*rhs));
            let v = binary_transfer(*op, a, b);
            st.set(*dst, v);
            // Record comparison provenance for later branch refinement, but
            // only when the operand registers survive the write untouched.
            if matches!(
                op,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
            ) && a.int
                && b.int
                && *dst != *lhs
                && *dst != *rhs
            {
                st.prov[*dst as usize] = Some(Prov {
                    op: *op,
                    lhs: *lhs,
                    rhs: *rhs,
                });
            }
        }
        Inst::MulAdd { dst, a, b, c } => {
            let (av, bv, cv) = (st.get(*a), st.get(*b), st.get(*c));
            let v = if av.int && bv.int && cv.int {
                AbsVal::int(av.iv.mul(bv.iv).fit_i64().add(cv.iv).fit_i64())
            } else {
                AbsVal::float()
            };
            st.set(*dst, v);
        }
        Inst::Cast { dst, ty, src } => {
            let a = st.get(*src);
            let v = match scalar_range(*ty) {
                None => AbsVal::float(),
                Some(range) => {
                    if a.int && a.iv.meet(range) == Some(a.iv) {
                        a // in-range values survive the narrowing unchanged
                    } else {
                        AbsVal::int(range)
                    }
                }
            };
            st.set(*dst, v);
        }
        Inst::Intrin1 { dst, f, a } => {
            let av = st.get(*a);
            let v = if *f == Intrinsic::Abs && av.int {
                let iv = av.iv;
                let abs = if iv.lo >= 0 {
                    iv
                } else if iv.hi <= 0 {
                    iv.neg()
                } else {
                    Interval::new(0, iv.abs_hi())
                };
                AbsVal::int(abs.fit_i64())
            } else {
                AbsVal::float()
            };
            st.set(*dst, v);
        }
        Inst::Intrin2 { dst, f, a, b } => {
            let (av, bv) = (st.get(*a), st.get(*b));
            let v = match f {
                Intrinsic::Min if av.int && bv.int => AbsVal::int(Interval::new(
                    av.iv.lo.min(bv.iv.lo),
                    av.iv.hi.min(bv.iv.hi),
                )),
                Intrinsic::Max if av.int && bv.int => AbsVal::int(Interval::new(
                    av.iv.lo.max(bv.iv.lo),
                    av.iv.hi.max(bv.iv.hi),
                )),
                _ => AbsVal::float(),
            };
            st.set(*dst, v);
        }
        Inst::Test { dst, src } => {
            let v = truthiness(st.get(*src));
            st.set(*dst, v);
            if dst != src {
                // `Test` preserves truthiness, so provenance flows through.
                st.prov[*dst as usize] = st.prov[*src as usize];
            }
        }
        Inst::Load { dst, slot, .. } => {
            let info = prog.slots()[*slot as usize]
                .as_ref()
                .expect("referenced slot is resolved at compile time");
            let v = match scalar_range(info.elem) {
                Some(iv) => AbsVal::int(iv),
                None => AbsVal::float(),
            };
            st.set(*dst, v);
        }
        Inst::Store { .. } | Inst::AtomicRmw { .. } => {}
        Inst::Jump { .. }
        | Inst::JumpIfFalse { .. }
        | Inst::JumpIfTrue { .. }
        | Inst::ForInit { .. }
        | Inst::ForNext { .. }
        | Inst::Return => unreachable!("control instructions handled by edges()"),
    }
}

/// 0/1 truthiness enclosure of a value.
fn truthiness(v: AbsVal) -> AbsVal {
    if v.int {
        if v.iv == Interval::point(0) {
            AbsVal::point(0)
        } else if !v.iv.contains(0) {
            AbsVal::point(1)
        } else {
            AbsVal::int(Interval::new(0, 1))
        }
    } else {
        AbsVal::int(Interval::new(0, 1))
    }
}

fn unary_transfer(op: UnOp, a: AbsVal) -> AbsVal {
    match op {
        UnOp::Neg => {
            if a.int {
                AbsVal::int(a.iv.neg().fit_i64())
            } else {
                AbsVal::float()
            }
        }
        UnOp::Not => {
            // `!x` = 1 - truthiness(x)
            let t = truthiness(a);
            AbsVal::int(Interval::new(1 - t.iv.hi, 1 - t.iv.lo))
        }
        UnOp::BitNot => {
            // `!v` on i64: exactly `-v - 1`; `as_i64` floats are ⊤ already.
            let iv = a.as_int();
            AbsVal::int(iv.neg().translate(-1))
        }
    }
}

fn cmp_interval(op: BinOp, a: Interval, b: Interval) -> Interval {
    let (t, f) = (Interval::point(1), Interval::point(0));
    let both = Interval::new(0, 1);
    match op {
        BinOp::Lt => {
            if a.hi < b.lo {
                t
            } else if a.lo >= b.hi {
                f
            } else {
                both
            }
        }
        BinOp::Le => {
            if a.hi <= b.lo {
                t
            } else if a.lo > b.hi {
                f
            } else {
                both
            }
        }
        BinOp::Gt => cmp_interval(BinOp::Lt, b, a),
        BinOp::Ge => cmp_interval(BinOp::Le, b, a),
        BinOp::Eq => match (a.as_point(), b.as_point()) {
            (Some(x), Some(y)) if x == y => t,
            _ if a.meet(b).is_none() => f,
            _ => both,
        },
        BinOp::Ne => {
            let eq = cmp_interval(BinOp::Eq, a, b);
            Interval::new(1 - eq.hi, 1 - eq.lo)
        }
        _ => unreachable!("not a comparison"),
    }
}

fn binary_transfer(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    use BinOp::*;
    let float = !a.int || !b.int;
    if float {
        return match op {
            Add | Sub | Mul | Div => AbsVal::float(),
            Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr => AbsVal::int(Interval::new(0, 1)),
            // Integer-only operators fall back to `as_i64` semantics with ⊤
            // operands.
            Rem | And | Or | Xor | Shl | Shr => {
                binary_transfer(op, AbsVal::top_int(), AbsVal::top_int())
            }
        };
    }
    let (x, y) = (a.iv, b.iv);
    let iv = match op {
        Add => x.add(y).fit_i64(),
        Sub => x.sub(y).fit_i64(),
        Mul => x.mul(y).fit_i64(),
        Div => {
            // Zero divisors fault (no continuation) or defensively yield 0;
            // otherwise |x / y| <= |x|, with exact corner division when the
            // divisor has a single known sign.
            if !y.contains(0) {
                let c = [x.lo / y.lo, x.lo / y.hi, x.hi / y.lo, x.hi / y.hi];
                Interval::new(*c.iter().min().unwrap(), *c.iter().max().unwrap()).fit_i64()
            } else {
                let m = x.abs_hi();
                Interval::new(-m, m).fit_i64()
            }
        }
        Rem => {
            // `x % y` has |result| < |y|, the sign of `x` (0 on a zero
            // divisor, which either faults or yields the defensive 0).
            let m = y.abs_hi().saturating_sub(1).max(0);
            let lo = if x.lo >= 0 { 0 } else { (-m).max(x.lo) };
            let hi = if x.hi <= 0 { 0 } else { m.min(x.hi) };
            Interval::new(lo.min(hi), hi.max(lo)).fit_i64()
        }
        Lt | Le | Gt | Ge | Eq | Ne => cmp_interval(op, x, y),
        And => {
            if x.lo >= 0 && y.lo >= 0 {
                Interval::new(0, x.hi.min(y.hi))
            } else {
                Interval::I64_FULL
            }
        }
        Or | Xor => {
            if x.lo >= 0 && y.lo >= 0 {
                // Result fits in the bit-width covering both operands.
                let bits = 128 - (x.hi.max(y.hi) as u128).leading_zeros();
                Interval::new(0, ((1u128 << bits) - 1).min(i64::MAX as u128) as i128)
            } else {
                Interval::I64_FULL
            }
        }
        Shl => {
            // `wrapping_shl` masks the shift to [0, 63]; model `x * 2^s`
            // exactly when the shift range needs no masking.
            if y.lo >= 0 && y.hi <= 63 {
                let c = [x.lo << y.lo, x.lo << y.hi, x.hi << y.lo, x.hi << y.hi];
                Interval::new(*c.iter().min().unwrap(), *c.iter().max().unwrap()).fit_i64()
            } else {
                Interval::I64_FULL
            }
        }
        Shr => {
            if y.lo >= 0 && y.hi <= 63 {
                // Arithmetic shift is monotone in each argument separately,
                // so the extreme values are at the corners.
                let c = [x.lo >> y.lo, x.lo >> y.hi, x.hi >> y.lo, x.hi >> y.hi];
                Interval::new(*c.iter().min().unwrap(), *c.iter().max().unwrap())
            } else {
                Interval::I64_FULL
            }
        }
        LAnd => {
            let (ta, tb) = (truthiness(a).iv, truthiness(b).iv);
            Interval::new(ta.lo.min(tb.lo), ta.hi.min(tb.hi))
        }
        LOr => {
            let (ta, tb) = (truthiness(a).iv, truthiness(b).iv);
            Interval::new(ta.lo.max(tb.lo), ta.hi.max(tb.hi))
        }
    };
    AbsVal::int(iv)
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        _ => unreachable!("not a comparison"),
    }
}

/// Narrow `st` along a branch edge where register `cond` is known truthy or
/// falsy; false when the edge is infeasible.
fn refine_cond(st: &mut State, cond: Reg, truthy: bool) -> bool {
    let cv = st.get(cond);
    if cv.int {
        if truthy {
            if cv.iv == Interval::point(0) {
                return false;
            }
            // Trim a zero endpoint (interior zeros are inexpressible).
            let mut iv = cv.iv;
            if iv.lo == 0 && iv.hi > 0 {
                iv.lo = 1;
            } else if iv.hi == 0 && iv.lo < 0 {
                iv.hi = -1;
            }
            st.narrow(cond, iv);
        } else {
            if !cv.iv.contains(0) {
                return false;
            }
            st.narrow(cond, Interval::point(0));
        }
    }
    if let Some(p) = st.prov[cond as usize] {
        let (la, ra) = (st.get(p.lhs), st.get(p.rhs));
        if la.int && ra.int {
            let op = if truthy { p.op } else { negate_cmp(p.op) };
            return refine_by_cmp(st, op, p.lhs, p.rhs);
        }
    }
    true
}

/// Apply `lhs <op> rhs` as a fact, narrowing both operand registers; false
/// when the combination is infeasible.
fn refine_by_cmp(st: &mut State, op: BinOp, lhs: Reg, rhs: Reg) -> bool {
    let a = st.get(lhs).iv;
    let b = st.get(rhs).iv;
    let (na, nb) = match op {
        BinOp::Lt => (
            a.meet_hi(b.hi.saturating_sub(1)),
            b.meet_lo(a.lo.saturating_add(1)),
        ),
        BinOp::Le => (a.meet_hi(b.hi), b.meet_lo(a.lo)),
        BinOp::Gt => (
            a.meet_lo(b.lo.saturating_add(1)),
            b.meet_hi(a.hi.saturating_sub(1)),
        ),
        BinOp::Ge => (a.meet_lo(b.lo), b.meet_hi(a.hi)),
        BinOp::Eq => {
            let m = a.meet(b);
            (m, m)
        }
        BinOp::Ne => {
            // Endpoint trims when the other side is a single point.
            let trim = |x: Interval, y: Interval| -> Option<Interval> {
                match y.as_point() {
                    Some(p) if x.as_point() == Some(p) => None,
                    Some(p) if x.lo == p => Some(Interval::new(p + 1, x.hi)),
                    Some(p) if x.hi == p => Some(Interval::new(x.lo, p - 1)),
                    _ => Some(x),
                }
            };
            (trim(a, b), trim(b, a))
        }
        _ => (Some(a), Some(b)),
    };
    match (na, nb) {
        (Some(na), Some(nb)) => {
            st.narrow(lhs, na);
            st.narrow(rhs, nb);
            true
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_exec::{Arg, BufferId};
    use cucc_ir::{parse_kernel, LaunchConfig};

    fn program(src: &str, launch: LaunchConfig, args: &[Arg]) -> Program {
        let k = parse_kernel(src).expect("parse");
        Program::compile(&k, launch, args).expect("compile")
    }

    /// Extents vector with every global slot set to `n` elements.
    fn uniform_extents(prog: &Program, n: u64) -> Vec<Option<u64>> {
        global_extents(prog, |_| Some(n as usize * 8))
            .iter()
            .zip(prog.slots())
            .map(|(e, s)| match s {
                Some(info) if matches!(info.kind, SlotKind::Global { .. }) => Some(n),
                _ => *e,
            })
            .collect()
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::new(-3, 5);
        let b = Interval::new(2, 4);
        assert_eq!(a.add(b), Interval::new(-1, 9));
        assert_eq!(a.sub(b), Interval::new(-7, 3));
        assert_eq!(a.mul(b), Interval::new(-12, 20));
        assert_eq!(a.hull(b), Interval::new(-3, 5));
        assert_eq!(a.meet(b), Some(Interval::new(2, 4)));
        assert_eq!(Interval::new(0, 1).meet(Interval::new(3, 4)), None);
        assert_eq!(a.scale(-2), Interval::new(-10, 6));
        assert_eq!(a.neg(), Interval::new(-5, 3));
        assert!(Interval::new(I64MIN - 1, 0).fit_i64() == Interval::I64_FULL);
        assert_eq!(Interval::new(-7, 3).abs_hi(), 7);
    }

    #[test]
    fn guarded_kernel_certifies() {
        let launch = LaunchConfig::cover1(1000, 128);
        let mut prog = program(
            "__global__ void saxpy(float a, float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
            launch,
            &[
                Arg::float(2.0),
                Arg::Buffer(BufferId(0)),
                Arg::Buffer(BufferId(1)),
                Arg::int(1000),
            ],
        );
        let ext = uniform_extents(&prog, 1000);
        let ra = certify_program(&mut prog, &ext, CertMode::Elide);
        let (certified, total) = ra.stats();
        assert_eq!(total, 3, "x load, y load, y store");
        assert_eq!(
            certified, 3,
            "guard `id < n` proves every access: {:?}",
            ra.certs
        );
        assert_eq!(prog.cert_stats().0, 3);
    }

    #[test]
    fn unguarded_tail_is_uncertified() {
        // 1024 threads over extent 1000: ids 1000..=1023 are out of bounds.
        let launch = LaunchConfig::cover1(1000, 128);
        let prog = program(
            "__global__ void copy(float* x, float* y) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                y[id] = x[id];
            }",
            launch,
            &[Arg::Buffer(BufferId(0)), Arg::Buffer(BufferId(1))],
        );
        let ext = uniform_extents(&prog, 1000);
        let ra = analyze_ranges(&prog, &ext);
        assert_eq!(ra.stats(), (0, 2));
        // The witness interval pinpoints the overrun.
        for c in &ra.certs {
            assert_eq!(c.index, Some(Interval::new(0, 1023)), "{c:?}");
        }
    }

    #[test]
    fn return_guard_refines_later_phases() {
        let launch = LaunchConfig::cover1(1000, 128);
        let mut prog = program(
            "__global__ void f(float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id >= n) return;
                __syncthreads();
                y[id] = x[id];
            }",
            launch,
            &[
                Arg::Buffer(BufferId(0)),
                Arg::Buffer(BufferId(1)),
                Arg::int(1000),
            ],
        );
        let ext = uniform_extents(&prog, 1000);
        let ra = certify_program(&mut prog, &ext, CertMode::Validate);
        assert_eq!(ra.stats(), (2, 2), "{:?}", ra.certs);
    }

    #[test]
    fn loop_bound_certifies_with_widening() {
        let launch = LaunchConfig::new(1, 64);
        let mut prog = program(
            "__global__ void sum(float* x, float* y, int n) {
                int id = threadIdx.x;
                float s = 0.0f;
                for (int i = 0; i < n; i++) s = s + x[i];
                y[id] = s;
            }",
            launch,
            &[
                Arg::Buffer(BufferId(0)),
                Arg::Buffer(BufferId(1)),
                Arg::int(1000),
            ],
        );
        let ext = uniform_extents(&prog, 1000);
        let ra = certify_program(&mut prog, &ext, CertMode::Elide);
        assert_eq!(ra.stats(), (2, 2), "{:?}", ra.certs);
        let xl = ra
            .certs
            .iter()
            .find(|c| c.kind == AccessKind::Load)
            .unwrap();
        assert_eq!(
            xl.index,
            Some(Interval::new(0, 999)),
            "loop head stabilizes at [0, n-1]"
        );
    }

    #[test]
    fn modulo_bounds_certify() {
        let launch = LaunchConfig::cover1(4096, 256);
        let prog = program(
            "__global__ void f(float* x, float* y) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                y[id % 64] = x[id % 64];
            }",
            launch,
            &[Arg::Buffer(BufferId(0)), Arg::Buffer(BufferId(1))],
        );
        let ext = uniform_extents(&prog, 64);
        let ra = analyze_ranges(&prog, &ext);
        assert_eq!(ra.stats(), (2, 2), "{:?}", ra.certs);
    }

    #[test]
    fn constant_branch_fact_and_unreachable() {
        let launch = LaunchConfig::new(1, 32);
        let prog = program(
            "__global__ void f(float* y, int n) {
                int id = threadIdx.x;
                if (n > 0) { y[id] = 1.0f; } else { y[id] = 2.0f; }
            }",
            launch,
            &[Arg::Buffer(BufferId(0)), Arg::int(64)],
        );
        let ext = uniform_extents(&prog, 32);
        let ra = analyze_ranges(&prog, &ext);
        // n = 64 folds; the branch is provably taken.
        let consts: Vec<_> = ra
            .branches
            .iter()
            .filter(|b| b.outcome == Some(true))
            .collect();
        assert!(!consts.is_empty(), "{:?}", ra.branches);
        // The else side never runs.
        assert!(
            ra.reachable.iter().any(|r| !r),
            "dead else branch should leave unreached pcs"
        );
        // Only the reachable store is recorded.
        assert_eq!(ra.stats(), (1, 1), "{:?}", ra.certs);
    }

    #[test]
    fn shared_memory_extent_is_compile_time() {
        let launch = LaunchConfig::new(8, 64);
        let mut prog = program(
            "__global__ void f(float* x, float* y, int n) {
                __shared__ float tile[64];
                int t = threadIdx.x;
                int id = blockIdx.x * blockDim.x + t;
                tile[t] = id < n ? x[id] : 0.0f;
                __syncthreads();
                if (id < n) y[id] = tile[63 - t];
            }",
            launch,
            &[
                Arg::Buffer(BufferId(0)),
                Arg::Buffer(BufferId(1)),
                Arg::int(512),
            ],
        );
        let ext = uniform_extents(&prog, 512);
        let ra = certify_program(&mut prog, &ext, CertMode::Elide);
        let (c, t) = ra.stats();
        assert_eq!((c, t), (t, t), "all accesses certified: {:?}", ra.certs);
    }

    #[test]
    fn certified_slots_aggregates_per_slot() {
        let launch = LaunchConfig::cover1(1000, 128);
        let prog = program(
            "__global__ void f(float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = x[id] + x[id + 24];
            }",
            launch,
            &[
                Arg::Buffer(BufferId(0)),
                Arg::Buffer(BufferId(1)),
                Arg::int(1000),
            ],
        );
        let ext = uniform_extents(&prog, 1000);
        let ra = analyze_ranges(&prog, &ext);
        let slots = ra.certified_slots();
        // `x[id + 24]` reaches 1023 >= 1000 — x is not fully certified, y is.
        assert_eq!(slots.values().filter(|v| **v).count(), 1, "{ra:?}");
    }
}
