//! Affine forms over the GPU index space.
//!
//! A write index that can be expressed as
//!
//! ```text
//! index = c₀ + Σ cᵗₐ·threadIdx.a + Σ cᵇₐ·blockIdx.a + Σ cˡᵢ·loopᵢ
//! ```
//!
//! with coefficients that are launch-invariant polynomials ([`Poly`]) is
//! *affine* in the sense of the paper's conditions 1 and 3 (§6.2): treating
//! block index and block size as constants it is affine in the thread index,
//! and treating thread index as constant it is affine in the block index.
//!
//! [`affine_of_expr`] performs the symbolic evaluation; variables are
//! resolved through a [`VarForms`] environment built by a forward pass over
//! the kernel body.

use crate::poly::{Poly, Sym};
use cucc_ir::{Axis, BinOp, Expr, Kernel, Stmt, UnOp, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An index-space variable an affine form can depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IdxVar {
    /// `threadIdx.{x,y,z}`
    Thread(Axis),
    /// `blockIdx.{x,y,z}`
    Block(Axis),
    /// A `for`-loop induction variable.
    Loop(VarId),
}

impl fmt::Display for IdxVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxVar::Thread(a) => write!(f, "threadIdx.{a}"),
            IdxVar::Block(a) => write!(f, "blockIdx.{a}"),
            IdxVar::Loop(v) => write!(f, "loop:{v}"),
        }
    }
}

/// An affine combination of index variables with polynomial coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AffineForm {
    /// Coefficients per index variable (zero coefficients are absent).
    pub coeffs: BTreeMap<IdxVar, Poly>,
    /// Constant (index-variable-free) part.
    pub constant: Poly,
}

impl AffineForm {
    /// The zero form.
    pub fn zero() -> AffineForm {
        AffineForm::default()
    }

    /// A pure constant form.
    pub fn constant(p: Poly) -> AffineForm {
        AffineForm {
            coeffs: BTreeMap::new(),
            constant: p,
        }
    }

    /// The form `1·v`.
    pub fn var(v: IdxVar) -> AffineForm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Poly::constant(1));
        AffineForm {
            coeffs,
            constant: Poly::zero(),
        }
    }

    /// True when no index variable appears (launch-invariant value).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// True when no *thread* or *loop* variable appears (the value is the
    /// same for every thread of a block).
    pub fn is_thread_invariant(&self) -> bool {
        self.coeffs.keys().all(|v| matches!(v, IdxVar::Block(_)))
    }

    /// True when no *block* variable appears.
    pub fn is_block_invariant(&self) -> bool {
        self.coeffs.keys().all(|v| !matches!(v, IdxVar::Block(_)))
    }

    /// Coefficient of an index variable (zero if absent).
    pub fn coeff(&self, v: IdxVar) -> Poly {
        self.coeffs.get(&v).cloned().unwrap_or_else(Poly::zero)
    }

    /// Index variables with nonzero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = IdxVar> + '_ {
        self.coeffs.keys().copied()
    }

    /// Pointwise sum.
    pub fn add(&self, rhs: &AffineForm) -> AffineForm {
        let mut out = self.clone();
        out.constant = out.constant.add(&rhs.constant);
        for (v, c) in &rhs.coeffs {
            let cur = out.coeffs.entry(*v).or_insert_with(Poly::zero);
            *cur = cur.add(c);
            if cur.is_zero() {
                out.coeffs.remove(v);
            }
        }
        out
    }

    /// Pointwise difference.
    pub fn sub(&self, rhs: &AffineForm) -> AffineForm {
        self.add(&rhs.neg())
    }

    /// Negation.
    pub fn neg(&self) -> AffineForm {
        AffineForm {
            coeffs: self.coeffs.iter().map(|(v, c)| (*v, c.neg())).collect(),
            constant: self.constant.neg(),
        }
    }

    /// Multiply by a launch-invariant polynomial.
    pub fn scale_poly(&self, k: &Poly) -> AffineForm {
        if k.is_zero() {
            return AffineForm::zero();
        }
        let mut coeffs = BTreeMap::new();
        for (v, c) in &self.coeffs {
            let p = c.mul(k);
            if !p.is_zero() {
                coeffs.insert(*v, p);
            }
        }
        AffineForm {
            coeffs,
            constant: self.constant.mul(k),
        }
    }

    /// Evaluate all polynomial coefficients under a symbol environment,
    /// producing concrete `(var, i128)` pairs and the constant.
    pub fn eval_coeffs(
        &self,
        env: &impl Fn(Sym) -> Option<i128>,
    ) -> Option<(Vec<(IdxVar, i128)>, i128)> {
        let constant = self.constant.eval(env)?;
        let mut out = Vec::with_capacity(self.coeffs.len());
        for (v, c) in &self.coeffs {
            let cv = c.eval(env)?;
            if cv != 0 {
                out.push((*v, cv));
            }
        }
        Some((out, constant))
    }
}

impl fmt::Display for AffineForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            write!(f, "({c})*{v}")?;
        }
        if !self.constant.is_zero() || first {
            if !first {
                f.write_str(" + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// Variable environment: maps kernel variables to their affine forms where a
/// unique reaching definition with an affine value exists, plus the raw
/// defining expressions of single-assignment variables (used to resolve
/// non-affine patterns like div/mod index decompositions).
#[derive(Debug, Clone, Default)]
pub struct VarForms {
    forms: Vec<Option<AffineForm>>,
    raw: Vec<Option<Expr>>,
}

impl VarForms {
    /// Build the environment for a kernel by a forward pass.
    ///
    /// Conservative rules: a variable gets a form only if it is assigned
    /// exactly once in the whole kernel (loop induction variables are bound
    /// to their own [`IdxVar::Loop`] instead); otherwise it is unknown and
    /// any index expression using it is treated as non-affine.
    pub fn of_kernel(kernel: &Kernel) -> VarForms {
        let n = kernel.num_vars();
        let mut assign_count = vec![0usize; n];
        let mut is_loop_var = vec![false; n];
        kernel.visit_stmts(&mut |s| match s {
            Stmt::Assign { var, .. } => assign_count[var.index()] += 1,
            Stmt::For { var, .. } => is_loop_var[var.index()] = true,
            _ => {}
        });

        let mut env = VarForms {
            forms: vec![None; n],
            raw: vec![None; n],
        };
        for (i, lv) in is_loop_var.iter().enumerate() {
            if *lv {
                env.forms[i] = Some(AffineForm::var(IdxVar::Loop(VarId(i as u32))));
            }
        }
        // Capture raw defining expressions of single-assignment scalars.
        kernel.visit_stmts(&mut |s| {
            if let Stmt::Assign { var, value } = s {
                let i = var.index();
                if assign_count[i] == 1 && !is_loop_var[i] {
                    env.raw[i] = Some(value.clone());
                }
            }
        });
        // Iterate until stable: a single-assignment variable's form may
        // depend on another single-assignment variable defined earlier.
        loop {
            let mut changed = false;
            kernel.visit_stmts(&mut |s| {
                if let Stmt::Assign { var, value } = s {
                    let i = var.index();
                    if assign_count[i] == 1 && !is_loop_var[i] && env.forms[i].is_none() {
                        if let Some(form) = affine_of_expr(value, &env) {
                            env.forms[i] = Some(form);
                            changed = true;
                        }
                    }
                }
            });
            if !changed {
                break;
            }
        }
        env
    }

    /// The affine form of a variable, if known.
    pub fn get(&self, v: VarId) -> Option<&AffineForm> {
        self.forms.get(v.index()).and_then(|f| f.as_ref())
    }

    /// Substitute single-assignment variables by their defining expressions
    /// (recursively, depth-bounded). Loop variables and multiply-assigned
    /// variables stay symbolic.
    pub fn resolve_expr(&self, e: &Expr, depth: u32) -> Expr {
        if depth == 0 {
            return e.clone();
        }
        match e {
            Expr::Var(v) => match self.raw.get(v.index()).and_then(|r| r.as_ref()) {
                Some(def) => self.resolve_expr(def, depth - 1),
                None => e.clone(),
            },
            Expr::Unary { op, arg } => Expr::Unary {
                op: *op,
                arg: Box::new(self.resolve_expr(arg, depth)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.resolve_expr(lhs, depth)),
                rhs: Box::new(self.resolve_expr(rhs, depth)),
            },
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => Expr::Select {
                cond: Box::new(self.resolve_expr(cond, depth)),
                then_value: Box::new(self.resolve_expr(then_value, depth)),
                else_value: Box::new(self.resolve_expr(else_value, depth)),
            },
            Expr::Cast { ty, arg } => Expr::Cast {
                ty: *ty,
                arg: Box::new(self.resolve_expr(arg, depth)),
            },
            Expr::Load { mem, index } => Expr::Load {
                mem: *mem,
                index: Box::new(self.resolve_expr(index, depth)),
            },
            Expr::Call { f, args } => Expr::Call {
                f: *f,
                args: args.iter().map(|a| self.resolve_expr(a, depth)).collect(),
            },
            leaf => leaf.clone(),
        }
    }
}

/// Match `(x / c)·c + x % c` (any operand order) after resolving variables,
/// returning `x`. The identity holds for all integers under C truncated
/// division, so it is safe to analyze the recomposed index instead.
fn recompose_divmod(lhs: &Expr, rhs: &Expr, env: &VarForms) -> Option<Expr> {
    let l = env.resolve_expr(lhs, 8);
    let r = env.resolve_expr(rhs, 8);
    for (mul_side, rem_side) in [(&l, &r), (&r, &l)] {
        let Expr::Binary {
            op: BinOp::Rem,
            lhs: rem_x,
            rhs: rem_c,
        } = rem_side
        else {
            continue;
        };
        let Expr::Binary {
            op: BinOp::Mul,
            lhs: mul_a,
            rhs: mul_b,
        } = mul_side
        else {
            continue;
        };
        for (div, c) in [(mul_a, mul_b), (mul_b, mul_a)] {
            if let Expr::Binary {
                op: BinOp::Div,
                lhs: div_x,
                rhs: div_c,
            } = &**div
            {
                if **c == **div_c && **div_c == **rem_c && **div_x == **rem_x {
                    return Some((**div_x).clone());
                }
            }
        }
    }
    None
}

/// Symbolically evaluate an integer expression to an affine form, or `None`
/// if the expression is not (recognizably) affine in the index space.
pub fn affine_of_expr(e: &Expr, env: &VarForms) -> Option<AffineForm> {
    match e {
        Expr::IntConst(v) => Some(AffineForm::constant(Poly::constant(*v as i128))),
        Expr::FloatConst(_) => None,
        Expr::ThreadIdx(a) => Some(AffineForm::var(IdxVar::Thread(*a))),
        Expr::BlockIdx(a) => Some(AffineForm::var(IdxVar::Block(*a))),
        Expr::BlockDim(a) => Some(AffineForm::constant(Poly::sym(Sym::BlockDim(*a)))),
        Expr::GridDim(a) => Some(AffineForm::constant(Poly::sym(Sym::GridDim(*a)))),
        Expr::Param(p) => Some(AffineForm::constant(Poly::sym(Sym::Param(*p)))),
        Expr::Var(v) => env.get(*v).cloned(),
        Expr::Load { .. } => None, // data-dependent: indirect access
        Expr::Unary { op, arg } => match op {
            UnOp::Neg => Some(affine_of_expr(arg, env)?.neg()),
            UnOp::Not | UnOp::BitNot => None,
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = affine_of_expr(lhs, env);
            let r = affine_of_expr(rhs, env);
            match op {
                BinOp::Add => match (l, r) {
                    (Some(l), Some(r)) => Some(l.add(&r)),
                    // Non-affine operands may still recompose: the
                    // div/mod index-decomposition pattern.
                    _ => {
                        let x = recompose_divmod(lhs, rhs, env)?;
                        affine_of_expr(&x, env)
                    }
                },
                BinOp::Sub => Some(l?.sub(&r?)),
                BinOp::Mul => {
                    let (l, r) = (l?, r?);
                    if l.is_constant() {
                        Some(r.scale_poly(&l.constant))
                    } else if r.is_constant() {
                        Some(l.scale_poly(&r.constant))
                    } else {
                        None // product of two index-variable forms
                    }
                }
                BinOp::Shl => {
                    // x << c with a constant literal c is x * 2^c.
                    let (l, r) = (l?, r?);
                    let shift = r.constant.as_const()?;
                    if !r.is_constant() || !(0..63).contains(&shift) {
                        return None;
                    }
                    Some(l.scale_poly(&Poly::constant(1i128 << shift)))
                }
                // Division, remainder and the other bitwise/logical
                // operators break affinity unless the whole expression is a
                // compile-time constant.
                BinOp::Div | BinOp::Rem => {
                    let (l, r) = (l?, r?);
                    let (lc, rc) = (l.constant.as_const()?, r.constant.as_const()?);
                    if !l.is_constant() || !r.is_constant() || rc == 0 {
                        return None;
                    }
                    let v = if *op == BinOp::Div { lc / rc } else { lc % rc };
                    Some(AffineForm::constant(Poly::constant(v)))
                }
                _ => None,
            }
        }
        Expr::Select { .. } | Expr::Cast { .. } | Expr::Call { .. } => match e {
            // Integer casts are value-preserving in the symbolic domain (we
            // ignore narrowing overflow, as the paper's analysis does).
            Expr::Cast { ty, arg } if ty.kind() == cucc_ir::ValueKind::Int => {
                affine_of_expr(arg, env)
            }
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::{parse_kernel, ParamId};

    fn form_of(src: &str) -> Option<AffineForm> {
        // Parse a kernel whose single global store's index we inspect.
        let k = parse_kernel(src).unwrap();
        let env = VarForms::of_kernel(&k);
        let mut found = None;
        k.visit_stmts(&mut |s| {
            if let Stmt::Store { index, .. } = s {
                if found.is_none() {
                    found = Some(affine_of_expr(index, &env));
                }
            }
        });
        found.unwrap()
    }

    #[test]
    fn global_tid_is_affine() {
        let f = form_of(
            "__global__ void k(int* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id] = 1;
            }",
        )
        .unwrap();
        assert_eq!(f.coeff(IdxVar::Thread(Axis::X)), Poly::constant(1));
        assert_eq!(
            f.coeff(IdxVar::Block(Axis::X)),
            Poly::sym(Sym::BlockDim(Axis::X))
        );
        assert!(f.constant.is_zero());
    }

    #[test]
    fn scaled_and_offset_affine() {
        let f = form_of(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[n + 2 * id + 1] = 1;
            }",
        )
        .unwrap();
        assert_eq!(f.coeff(IdxVar::Thread(Axis::X)), Poly::constant(2));
        assert_eq!(
            f.constant,
            Poly::sym(Sym::Param(ParamId(1))).add(&Poly::constant(1))
        );
    }

    #[test]
    fn modulo_breaks_affinity() {
        assert!(form_of(
            "__global__ void k(int* out) {
                out[threadIdx.x % 32] = 1;
            }"
        )
        .is_none());
    }

    #[test]
    fn indirect_load_breaks_affinity() {
        assert!(form_of(
            "__global__ void k(int* out, int* idx) {
                out[idx[threadIdx.x]] = 1;
            }"
        )
        .is_none());
    }

    #[test]
    fn loop_var_is_its_own_dimension() {
        let f = form_of(
            "__global__ void k(int* out, int n) {
                int base = threadIdx.x * n;
                for (int i = 0; i < n; i++)
                    out[base + i] = 1;
            }",
        )
        .unwrap();
        let loops: Vec<IdxVar> = f.vars().filter(|v| matches!(v, IdxVar::Loop(_))).collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(f.coeff(loops[0]), Poly::constant(1));
        assert_eq!(
            f.coeff(IdxVar::Thread(Axis::X)),
            Poly::sym(Sym::Param(ParamId(1)))
        );
    }

    #[test]
    fn multiply_assigned_var_unknown() {
        // x is assigned twice: conservative analysis refuses a form.
        assert!(form_of(
            "__global__ void k(int* out) {
                int x = threadIdx.x;
                x = x + 1;
                out[x] = 1;
            }"
        )
        .is_none());
    }

    #[test]
    fn shift_is_scaling() {
        let f = form_of(
            "__global__ void k(int* out) {
                out[threadIdx.x << 2] = 1;
            }",
        )
        .unwrap();
        assert_eq!(f.coeff(IdxVar::Thread(Axis::X)), Poly::constant(4));
    }

    #[test]
    fn chained_single_assignments_resolve() {
        let f = form_of(
            "__global__ void k(int* out) {
                int a = blockIdx.x * blockDim.x;
                int b = a + threadIdx.x;
                int c = b * 2;
                out[c] = 1;
            }",
        )
        .unwrap();
        assert_eq!(f.coeff(IdxVar::Thread(Axis::X)), Poly::constant(2));
        assert_eq!(
            f.coeff(IdxVar::Block(Axis::X)),
            Poly::sym(Sym::BlockDim(Axis::X)).scale(2)
        );
    }

    #[test]
    fn thread_invariance_checks() {
        let c = AffineForm::constant(Poly::constant(5));
        assert!(c.is_thread_invariant());
        assert!(c.is_block_invariant());
        let t = AffineForm::var(IdxVar::Thread(Axis::X));
        assert!(!t.is_thread_invariant());
        assert!(t.is_block_invariant());
        let b = AffineForm::var(IdxVar::Block(Axis::Y));
        assert!(b.is_thread_invariant());
        assert!(!b.is_block_invariant());
    }

    #[test]
    fn algebra_cancellation() {
        let t = AffineForm::var(IdxVar::Thread(Axis::X));
        assert!(t.sub(&t).coeffs.is_empty());
        let s = t
            .scale_poly(&Poly::constant(3))
            .sub(&t.scale_poly(&Poly::constant(3)));
        assert_eq!(s, AffineForm::zero());
    }

    #[test]
    fn eval_coeffs_concrete() {
        let f = form_of(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id * 2 + n] = 1;
            }",
        )
        .unwrap();
        let (coeffs, c0) = f
            .eval_coeffs(&|s| match s {
                Sym::Param(_) => Some(10),
                Sym::BlockDim(Axis::X) => Some(256),
                _ => Some(1),
            })
            .unwrap();
        assert_eq!(c0, 10);
        let m: std::collections::BTreeMap<_, _> = coeffs.into_iter().collect();
        assert_eq!(m[&IdxVar::Thread(Axis::X)], 2);
        assert_eq!(m[&IdxVar::Block(Axis::X)], 512);
    }
}
