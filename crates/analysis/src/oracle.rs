//! Dynamic write-interval oracle.
//!
//! The static analysis is *sufficient but not necessary* (paper §6.2) and
//! the launch-time probe only samples three chunks. This module provides the
//! ground truth: it traces **every** block of a launch and checks the formal
//! Allgather-distributable definition of §6.1 against a concrete
//! [`ThreePhasePlan`]:
//!
//! 1. every phase-1 chunk writes exactly inside its own unit interval
//!    (equal length, disjoint, no gaps — conditions 1–3 of the definition);
//! 2. no phase-1 write is atomic;
//! 3. the gathered region per buffer is the exact union of the chunk units.
//!
//! Property tests use the oracle to assert the static analysis is **sound**:
//! whenever `analyze_kernel` + `plan_launch` produce a three-phase plan, the
//! oracle confirms it.

use crate::plan::ThreePhasePlan;
use cucc_exec::{execute_block_traced, Arg, ExecError, MemPool};
use cucc_ir::{Kernel, LaunchConfig};

/// Result of a full oracle verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Violations found (empty ⇒ the plan is valid).
    pub violations: Vec<String>,
}

impl OracleReport {
    /// True when no violations were found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify a three-phase plan against the dynamic write sets of every full
/// chunk. Runs on a scratch copy of `pool`.
pub fn verify_plan(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &MemPool,
    plan: &ThreePhasePlan,
) -> Result<OracleReport, ExecError> {
    let mut scratch = pool.clone();
    let mut violations = Vec::new();
    let g = plan.chunk_blocks;
    for chunk in 0..plan.full_chunks {
        let mut trace = Vec::new();
        for b in chunk * g..(chunk + 1) * g {
            execute_block_traced(kernel, launch, b, args, &mut scratch, &mut trace)?;
        }
        // Group per buffer and check containment in the chunk's unit.
        for region in &plan.buffers {
            let lo = region.base + chunk * region.unit;
            let hi = lo + region.unit;
            let mut covered = vec![false; region.unit as usize];
            for w in trace.iter().filter(|w| w.param == region.param.0) {
                if w.atomic {
                    violations.push(format!(
                        "chunk {chunk}: atomic write to p{} at byte {}",
                        w.param, w.byte_off
                    ));
                }
                let (s, e) = (w.byte_off, w.byte_off + w.bytes as u64);
                if s < lo || e > hi {
                    violations.push(format!(
                        "chunk {chunk}: write to p{} bytes [{s},{e}) escapes unit [{lo},{hi})",
                        w.param
                    ));
                } else {
                    for i in s..e {
                        covered[(i - lo) as usize] = true;
                    }
                }
            }
            if covered.iter().any(|c| !c) {
                let missing = covered.iter().filter(|c| !**c).count();
                violations.push(format!(
                    "chunk {chunk}: unit of p{} has {missing} unwritten bytes (gap)",
                    region.param.0
                ));
            }
        }
        // Writes to buffers outside the plan's gathered set would desync
        // the nodes.
        for w in &trace {
            if !plan.buffers.iter().any(|r| r.param.0 == w.param) {
                violations.push(format!(
                    "chunk {chunk}: write to unplanned buffer p{}",
                    w.param
                ));
            }
        }
        if violations.len() > 32 {
            violations.push("… further violations elided".into());
            break;
        }
    }
    Ok(OracleReport { violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributable::analyze_kernel;
    use crate::plan::{plan_launch, Plan};
    use cucc_ir::{parse_kernel, Scalar};

    fn checked_plan(src: &str, launch: LaunchConfig, mk: impl Fn(&mut MemPool) -> Vec<Arg>) {
        let k = parse_kernel(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        let verdict = analyze_kernel(&k);
        let mut pool = MemPool::new();
        let args = mk(&mut pool);
        match plan_launch(&k, &verdict, launch, &args, &pool) {
            Plan::ThreePhase(tp) => {
                let report = verify_plan(&k, launch, &args, &pool, &tp).unwrap();
                assert!(report.ok(), "oracle violations: {:?}", report.violations);
            }
            Plan::Replicated(cause) => panic!("expected three-phase plan, got {cause}"),
        }
    }

    #[test]
    fn oracle_confirms_listing1() {
        checked_plan(
            "__global__ void vec_copy(char* src, char* dest, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) dest[id] = src[id];
            }",
            LaunchConfig::cover1(1200, 256),
            |p| {
                let src = p.alloc(1200);
                let dest = p.alloc(1200);
                vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1200)]
            },
        );
    }

    #[test]
    fn oracle_confirms_multi_element_per_thread() {
        checked_plan(
            "__global__ void k(int* out, int w) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < w; i++)
                    out[id * w + i] = i;
            }",
            LaunchConfig::new(8u32, 32u32),
            |p| {
                let out = p.alloc_elems(Scalar::I32, 8 * 32 * 3);
                vec![Arg::Buffer(out), Arg::int(3)]
            },
        );
    }

    #[test]
    fn oracle_catches_planted_escape() {
        // Hand-build a wrong plan (unit too small) and check the oracle
        // reports escapes.
        let k = parse_kernel(
            "__global__ void k(int* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id] = 1;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(4u32, 16u32);
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, 64);
        let args = vec![Arg::Buffer(out)];
        let verdict = analyze_kernel(&k);
        let Plan::ThreePhase(mut tp) = plan_launch(&k, &verdict, launch, &args, &pool) else {
            panic!("expected plan");
        };
        tp.buffers[0].unit /= 2; // corrupt: half the real unit
        let report = verify_plan(&k, launch, &args, &pool, &tp).unwrap();
        assert!(!report.ok());
        assert!(report.violations.iter().any(|v| v.contains("escapes")));
    }

    #[test]
    fn oracle_catches_gaps() {
        // Every thread writes two slots but the planted plan claims four.
        let k = parse_kernel(
            "__global__ void k(int* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id] = 1;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(4u32, 16u32);
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, 512);
        let args = vec![Arg::Buffer(out)];
        let verdict = analyze_kernel(&k);
        let Plan::ThreePhase(mut tp) = plan_launch(&k, &verdict, launch, &args, &pool) else {
            panic!("expected plan");
        };
        tp.buffers[0].unit *= 2; // claim twice the real unit
        tp.full_chunks = 2;
        let report = verify_plan(&k, launch, &args, &pool, &tp).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("gap") || v.contains("escapes")));
    }
}
