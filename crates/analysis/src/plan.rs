//! Launch-time distribution planning.
//!
//! The static analysis ([`crate::distributable`]) works symbolically; once a
//! concrete launch configuration and argument list are known, the planner
//! resolves the metadata into an executable [`ThreePhasePlan`]:
//!
//! * tail guards are evaluated to the number of **full blocks** `F` (blocks
//!   whose guard is true for every thread — the rest are callback blocks);
//! * a distribution **chunk size** `G` is chosen (1 for 1-D kernels; a grid
//!   row/plane for 2-D/3-D kernels whose per-block footprints interleave but
//!   whose row-band footprints are dense);
//! * a cheap **probe** (tracing three representative chunks on a scratch
//!   memory copy) confirms that chunk footprints are dense, equal-length and
//!   advance linearly with the chunk index — the *balanced* and *in-place*
//!   requirements of §6. A kernel that passes the static analysis but fails
//!   the probe falls back to replicated execution, preserving correctness.
//!
//! The probe is the runtime analogue of the paper's observation that
//! "metadata values are based on symbolic analysis; thus, for programs with
//! runtime-dependent values, CuCC can still perform the migration" (§5).

use crate::affine::IdxVar;
use crate::distributable::{TailGuard, Verdict};
use crate::poly::Sym;
use cucc_exec::{execute_block_traced, Arg, MemPool, WriteRecord};
use cucc_ir::{Axis, Kernel, LaunchConfig, ParamId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The gathered byte region of one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferRegion {
    /// Which buffer parameter.
    pub param: ParamId,
    /// Byte offset where chunk 0's writes begin.
    pub base: u64,
    /// Bytes written per chunk (the Allgather `unit_size` of Figure 6,
    /// scaled to chunk granularity).
    pub unit: u64,
}

/// Why a launch executes replicated instead of distributed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationCause {
    /// The static analysis already said trivial.
    NotDistributable(Vec<crate::distributable::Reason>),
    /// Tail guards leave no full blocks to distribute.
    NoFullBlocks,
    /// The launch-time probe found footprints that are not dense translates.
    ProbeMismatch(String),
    /// Probe execution itself failed (e.g. out-of-bounds).
    ProbeError(String),
    /// The kernel verifier found a possible or proven inter-block
    /// write-write race: distributing would make the result depend on node
    /// execution order, so the launch is replicated instead.
    RaceHazard(crate::verify::Severity, String),
    /// A node died mid-launch and the dead node's chunks could not be
    /// re-partitioned across the survivors without breaking Allgather
    /// balance, so the launch degraded to replicated execution on the
    /// surviving nodes.
    NodeLoss(String),
}

impl fmt::Display for ReplicationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationCause::NotDistributable(rs) => {
                write!(f, "not Allgather distributable (")?;
                for (i, r) in rs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, ")")
            }
            ReplicationCause::NoFullBlocks => write!(f, "no full blocks to distribute"),
            ReplicationCause::ProbeMismatch(m) => write!(f, "probe mismatch: {m}"),
            ReplicationCause::ProbeError(m) => write!(f, "probe failed: {m}"),
            ReplicationCause::RaceHazard(sev, m) => write!(f, "{sev} write-race hazard: {m}"),
            ReplicationCause::NodeLoss(m) => write!(f, "node loss: {m}"),
        }
    }
}

/// Executable distribution plan for one launch.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Every node executes every block (trivial Allgather distribution).
    Replicated(ReplicationCause),
    /// The CuCC three-phase workflow applies.
    ThreePhase(ThreePhasePlan),
}

impl Plan {
    /// The three-phase plan, if any.
    pub fn three_phase(&self) -> Option<&ThreePhasePlan> {
        match self {
            Plan::ThreePhase(p) => Some(p),
            Plan::Replicated(_) => None,
        }
    }
}

/// Concrete three-phase execution geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreePhasePlan {
    /// Total blocks in the launch.
    pub num_blocks: u64,
    /// Chunk granularity in blocks (consecutive linear block ids).
    pub chunk_blocks: u64,
    /// Number of *full* chunks eligible for phase 1.
    pub full_chunks: u64,
    /// Gathered regions, one per synchronized buffer.
    pub buffers: Vec<BufferRegion>,
}

/// The per-node split of a [`ThreePhasePlan`] for an `n`-node cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Chunks assigned to each node in phase 1 (`p_size` of Figure 6, in
    /// chunks).
    pub chunks_per_node: u64,
    /// Blocks each node executes in phase 1: node `i` runs linear blocks
    /// `[i·chunks_per_node·G, (i+1)·chunks_per_node·G)`.
    pub partial_blocks_per_node: u64,
    /// First callback block (all blocks from here to `num_blocks` run on
    /// every node in phase 3).
    pub callback_start: u64,
    /// Total number of callback blocks.
    pub callback_blocks: u64,
}

impl ThreePhasePlan {
    /// Split the plan across `n_nodes`, mirroring the paper's arithmetic:
    /// `p_size = ⌊full/n⌋`, remainder and tail blocks become callbacks
    /// (§7.2's Kmeans walk-through: 313 blocks on 16 nodes → 19 partial + 9
    /// callback; on 32 nodes → 9 partial + 25 callback).
    pub fn partition(&self, n_nodes: u64) -> Partition {
        assert!(n_nodes > 0, "cluster must have at least one node");
        let chunks_per_node = self.full_chunks / n_nodes;
        let partial_blocks_per_node = chunks_per_node * self.chunk_blocks;
        let callback_start = partial_blocks_per_node * n_nodes;
        Partition {
            chunks_per_node,
            partial_blocks_per_node,
            callback_start,
            callback_blocks: self.num_blocks - callback_start,
        }
    }

    /// Bytes each node contributes to the Allgather for an `n`-node cluster
    /// (summed over buffers).
    pub fn bytes_per_node(&self, n_nodes: u64) -> u64 {
        let part = self.partition(n_nodes);
        self.buffers
            .iter()
            .map(|b| b.unit * part.chunks_per_node)
            .sum()
    }
}

/// Evaluate polynomials under a concrete launch: scalar params from `args`,
/// dims from `launch`.
pub fn launch_sym_env<'a>(
    launch: LaunchConfig,
    args: &'a [Arg],
) -> impl Fn(Sym) -> Option<i128> + 'a {
    move |s: Sym| match s {
        Sym::Param(p) => match args.get(p.index())? {
            Arg::Scalar(Value::I64(v)) => Some(*v as i128),
            Arg::Scalar(Value::F64(v)) => Some(*v as i128),
            Arg::Buffer(_) => None,
        },
        Sym::BlockDim(a) => Some(launch.block.get(a) as i128),
        Sym::GridDim(a) => Some(launch.grid.get(a) as i128),
    }
}

/// Number of *full blocks* under a tail guard: blocks whose guard holds for
/// every thread. Returns `None` when the guard structure cannot be resolved
/// for this launch (non-linear block coefficients etc.).
pub fn full_blocks_under_guard(
    guard: &TailGuard,
    launch: LaunchConfig,
    args: &[Arg],
) -> Option<u64> {
    let env = launch_sym_env(launch, args);
    let (coeffs, c0) = guard.lhs.eval_coeffs(&env)?;
    let bound = guard.bound.eval(&env)?;
    let total_blocks = launch.num_blocks() as i128;

    // Maximum over threads of the thread-dependent part.
    let mut max_off: i128 = 0;
    // Linear-block coefficient: coefficients per block axis must compose a
    // single linear unit over the linear block id (x-fastest).
    let mut unit: Option<i128> = None;
    let gx = launch.grid.x as i128;
    let gy = launch.grid.y as i128;
    for (v, c) in &coeffs {
        match v {
            IdxVar::Thread(a) => {
                let extent = launch.block.get(*a) as i128;
                if *c > 0 {
                    max_off += c * (extent - 1);
                }
            }
            IdxVar::Block(a) => {
                let (axis_unit, active) = match a {
                    Axis::X => (*c, launch.grid.x > 1),
                    Axis::Y => (*c / gx, launch.grid.y > 1),
                    Axis::Z => (*c / (gx * gy), launch.grid.z > 1),
                };
                if !active {
                    continue; // axis extent 1: coefficient irrelevant
                }
                match a {
                    Axis::Y if *c % gx != 0 => return None,
                    Axis::Z if *c % (gx * gy) != 0 => return None,
                    _ => {}
                }
                match unit {
                    None => unit = Some(axis_unit),
                    Some(u) if u == axis_unit => {}
                    Some(_) => return None, // inconsistent per-axis units
                }
            }
            IdxVar::Loop(_) => return None,
        }
    }
    let Some(u) = unit else {
        // The guard does not depend on the block index: either it holds for
        // all threads everywhere (all blocks full) or it fails somewhere in
        // every block (no full blocks).
        return Some(if c0 + max_off < bound {
            total_blocks as u64
        } else {
            0
        });
    };
    if u <= 0 {
        return None;
    }
    // Full blocks satisfy c0 + u·b + max_off < bound  ⇔  b < K/u.
    let k = bound - c0 - max_off;
    let full = if k <= 0 { 0 } else { (k + u - 1) / u };
    Some(full.clamp(0, total_blocks) as u64)
}

/// Aggregate a write trace into per-buffer sorted, coalesced byte intervals.
fn coalesce(trace: &[WriteRecord]) -> BTreeMap<u32, Vec<(u64, u64)>> {
    let mut per_buf: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for w in trace {
        per_buf
            .entry(w.param)
            .or_default()
            .push((w.byte_off, w.byte_off + w.bytes as u64));
    }
    for ranges in per_buf.values_mut() {
        ranges.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for &(s, e) in ranges.iter() {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        *ranges = out;
    }
    per_buf
}

/// Trace one chunk (blocks `[chunk·g, (chunk+1)·g)`) on scratch memory and
/// return its coalesced per-buffer write intervals.
fn trace_chunk(
    kernel: &Kernel,
    launch: LaunchConfig,
    chunk: u64,
    g: u64,
    args: &[Arg],
    scratch: &mut MemPool,
) -> Result<BTreeMap<u32, Vec<(u64, u64)>>, String> {
    let mut trace = Vec::new();
    for b in chunk * g..(chunk + 1) * g {
        execute_block_traced(kernel, launch, b, args, scratch, &mut trace)
            .map_err(|e| e.to_string())?;
    }
    Ok(coalesce(&trace))
}

/// Check a chunk trace is a single dense interval per gathered buffer and
/// return `(base, len)` per buffer.
fn dense_footprint(
    intervals: &BTreeMap<u32, Vec<(u64, u64)>>,
    buffers: &[crate::distributable::GatherBuffer],
) -> Result<BTreeMap<u32, (u64, u64)>, String> {
    let mut out = BTreeMap::new();
    for (param, ranges) in intervals {
        if !buffers.iter().any(|b| b.param.0 == *param) {
            return Err(format!("write to unexpected buffer p{param}"));
        }
        match ranges.as_slice() {
            [] => {}
            [(s, e)] => {
                out.insert(*param, (*s, e - s));
            }
            more => {
                return Err(format!(
                    "buffer p{param} footprint has {} disjoint intervals (not dense)",
                    more.len()
                ))
            }
        }
    }
    Ok(out)
}

/// Build the launch-time plan. See the module docs for the algorithm.
pub fn plan_launch(
    kernel: &Kernel,
    verdict: &Verdict,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &MemPool,
) -> Plan {
    let meta = match verdict {
        Verdict::Distributable(m) => m,
        Verdict::Trivial(rs) => {
            return Plan::Replicated(ReplicationCause::NotDistributable(rs.clone()))
        }
    };
    let num_blocks = launch.num_blocks();
    // Resolve tail guards to the full-block count.
    let mut full_blocks = num_blocks;
    for g in &meta.tail_guards {
        match full_blocks_under_guard(g, launch, args) {
            Some(f) => full_blocks = full_blocks.min(f),
            None => {
                return Plan::Replicated(ReplicationCause::ProbeMismatch(
                    "tail guard not resolvable for this launch".into(),
                ))
            }
        }
    }
    if full_blocks == 0 {
        return Plan::Replicated(ReplicationCause::NoFullBlocks);
    }

    // Safety veto: a kernel with a possible inter-block write-write race
    // yields node-order-dependent results when distributed — replicate. A
    // verdict of Unknown does NOT veto (the launch-time probe below stays
    // the dynamic guard for footprints the verifier cannot bound).
    let races = crate::verify::analyze_block_races(kernel, launch, args, None);
    if races.verdict >= crate::verify::PropertyVerdict::May {
        let detail = races
            .diagnostics
            .first()
            .map(|d| d.message.clone())
            .unwrap_or_else(|| "write footprints overlap across blocks".into());
        let sev = if races.verdict == crate::verify::PropertyVerdict::Must {
            crate::verify::Severity::Must
        } else {
            crate::verify::Severity::May
        };
        return Plan::Replicated(ReplicationCause::RaceHazard(sev, detail));
    }

    // Candidate chunk granularities: single block, grid row, grid plane.
    let gx = launch.grid.x as u64;
    let gxy = gx * launch.grid.y as u64;
    let mut candidates = vec![1u64];
    if launch.grid.y > 1 {
        candidates.push(gx);
    }
    if launch.grid.z > 1 {
        candidates.push(gxy);
    }

    let mut scratch = pool.clone();
    let mut last_err = String::new();
    'cand: for g in candidates {
        let full_chunks = full_blocks / g;
        if full_chunks == 0 {
            continue;
        }
        // Probe chunks 0, middle and last-full.
        let mut probes = vec![0u64];
        if full_chunks > 2 {
            probes.push(full_chunks / 2);
        }
        if full_chunks > 1 {
            probes.push(full_chunks - 1);
        }
        let mut baseline: Option<BTreeMap<u32, (u64, u64)>> = None;
        for &chunk in &probes {
            let intervals = match trace_chunk(kernel, launch, chunk, g, args, &mut scratch) {
                Ok(iv) => iv,
                Err(e) => return Plan::Replicated(ReplicationCause::ProbeError(e)),
            };
            let fp = match dense_footprint(&intervals, &meta.buffers) {
                Ok(fp) => fp,
                Err(e) => {
                    last_err = e;
                    continue 'cand;
                }
            };
            match &baseline {
                None => baseline = Some(fp),
                Some(base) => {
                    // Same buffers, same lengths, base advanced by chunk·unit.
                    if fp.len() != base.len() {
                        last_err = "chunks write different buffer sets".into();
                        continue 'cand;
                    }
                    for (param, (b0, u0)) in base {
                        let Some((bc, uc)) = fp.get(param) else {
                            last_err = format!("buffer p{param} missing in probe chunk");
                            continue 'cand;
                        };
                        if uc != u0 || *bc != b0 + chunk * u0 {
                            last_err = format!(
                                "buffer p{param}: chunk {chunk} footprint ({bc},{uc}) is not \
                                 a translate of chunk 0 ({b0},{u0})"
                            );
                            continue 'cand;
                        }
                    }
                }
            }
        }
        let Some(base) = baseline else { continue };
        let buffers: Vec<BufferRegion> = base
            .into_iter()
            .map(|(param, (b, u))| BufferRegion {
                param: ParamId(param),
                base: b,
                unit: u,
            })
            .collect();
        if buffers.is_empty() {
            last_err = "probe chunks wrote nothing".into();
            continue;
        }
        return Plan::ThreePhase(ThreePhasePlan {
            num_blocks,
            chunk_blocks: g,
            full_chunks,
            buffers,
        });
    }
    Plan::Replicated(ReplicationCause::ProbeMismatch(last_err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributable::analyze_kernel;
    use cucc_ir::parse_kernel;
    use cucc_ir::Scalar;

    fn plan_for(
        src: &str,
        launch: LaunchConfig,
        mk_args: impl Fn(&mut MemPool) -> Vec<Arg>,
    ) -> Plan {
        let k = parse_kernel(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        let verdict = analyze_kernel(&k);
        let mut pool = MemPool::new();
        let args = mk_args(&mut pool);
        plan_launch(&k, &verdict, launch, &args, &pool)
    }

    const LISTING1: &str = "__global__ void vec_copy(char* src, char* dest, int n) {
        int id = blockDim.x * blockIdx.x + threadIdx.x;
        if (id < n)
            dest[id] = src[id];
    }";

    #[test]
    fn listing1_plan_matches_paper_figure5() {
        // N = 1200, block 256 → 5 blocks; block 4 is the callback block.
        let plan = plan_for(LISTING1, LaunchConfig::cover1(1200, 256), |p| {
            let src = p.alloc(1200);
            let dest = p.alloc(1200);
            vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1200)]
        });
        let tp = plan.three_phase().expect("three-phase plan");
        assert_eq!(tp.num_blocks, 5);
        assert_eq!(tp.chunk_blocks, 1);
        assert_eq!(tp.full_chunks, 4);
        assert_eq!(tp.buffers.len(), 1);
        assert_eq!(tp.buffers[0].base, 0);
        assert_eq!(tp.buffers[0].unit, 256);
        // Two-node partition (Figure 5): blocks {0,1} on node 0, {2,3} on
        // node 1, block 4 callback.
        let part = tp.partition(2);
        assert_eq!(part.partial_blocks_per_node, 2);
        assert_eq!(part.callback_start, 4);
        assert_eq!(part.callback_blocks, 1);
        assert_eq!(tp.bytes_per_node(2), 512);
    }

    #[test]
    fn kmeans_block_arithmetic_from_paper() {
        // §7.2: 313 blocks; on 16 nodes → 19 partial blocks/node and 9
        // callbacks; on 32 nodes → 9 partial and 25 callbacks.
        let n: u64 = 80_000; // 313 blocks of 256 threads, tail block partial
        let src = "__global__ void member(float* assign, int n) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            if (id < n)
                assign[id] = 1.0f;
        }";
        let plan = plan_for(src, LaunchConfig::cover1(n, 256), |p| {
            let a = p.alloc_elems(Scalar::F32, n as usize);
            vec![Arg::Buffer(a), Arg::int(n as i64)]
        });
        let tp = plan.three_phase().unwrap();
        assert_eq!(tp.num_blocks, 313);
        assert_eq!(tp.full_chunks, 312);
        let p16 = tp.partition(16);
        assert_eq!(p16.partial_blocks_per_node, 19);
        assert_eq!(p16.callback_blocks, 9);
        let p32 = tp.partition(32);
        assert_eq!(p32.partial_blocks_per_node, 9);
        assert_eq!(p32.callback_blocks, 25);
    }

    #[test]
    fn exact_multiple_has_no_callbacks_on_divisor() {
        let plan = plan_for(LISTING1, LaunchConfig::cover1(1024, 256), |p| {
            let src = p.alloc(1024);
            let dest = p.alloc(1024);
            vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1024)]
        });
        let tp = plan.three_phase().unwrap();
        assert_eq!(tp.full_chunks, 4);
        let part = tp.partition(4);
        assert_eq!(part.callback_blocks, 0);
        assert_eq!(part.partial_blocks_per_node, 1);
    }

    #[test]
    fn two_d_kernel_plans_row_chunks() {
        // 2-D grid: per-block footprints interleave, but a row of blocks is
        // dense — the planner must pick chunk = gridDim.x.
        let src = "__global__ void k(float* out, int width) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            out[y * width + x] = 1.0f;
        }";
        let width = 128u32;
        let launch = LaunchConfig::new((8u32, 8u32), (16u32, 16u32));
        let plan = plan_for(src, launch, |p| {
            let out = p.alloc_elems(Scalar::F32, (width * width) as usize);
            vec![Arg::Buffer(out), Arg::int(width as i64)]
        });
        let tp = plan.three_phase().unwrap();
        assert_eq!(tp.chunk_blocks, 8);
        assert_eq!(tp.full_chunks, 8);
        assert_eq!(tp.buffers[0].unit, (width * 16 * 4) as u64); // 16 rows of f32
        let part = tp.partition(4);
        assert_eq!(part.chunks_per_node, 2);
        assert_eq!(part.callback_blocks, 0);
    }

    #[test]
    fn per_block_scalar_write_unit_is_one_element() {
        let src = "__global__ void k(float* out) {
            float acc = 2.0f;
            if (threadIdx.x == 0)
                out[blockIdx.x] = acc;
        }";
        let plan = plan_for(src, LaunchConfig::new(64u32, 128u32), |p| {
            let out = p.alloc_elems(Scalar::F32, 64);
            vec![Arg::Buffer(out)]
        });
        let tp = plan.three_phase().unwrap();
        assert_eq!(tp.buffers[0].unit, 4);
        assert_eq!(tp.full_chunks, 64);
    }

    #[test]
    fn strided_write_fails_probe_and_replicates() {
        // Dense per thread but strided per block: footprints interleave and
        // no chunk granularity fixes it.
        let src = "__global__ void k(int* out) {
            out[threadIdx.x * gridDim.x + blockIdx.x] = 1;
        }";
        let plan = plan_for(src, LaunchConfig::new(4u32, 8u32), |p| {
            let out = p.alloc_elems(Scalar::I32, 32);
            vec![Arg::Buffer(out)]
        });
        assert!(matches!(
            plan,
            Plan::Replicated(ReplicationCause::ProbeMismatch(_))
        ));
    }

    #[test]
    fn tiny_bound_leaves_no_full_blocks() {
        let plan = plan_for(LISTING1, LaunchConfig::cover1(1200, 256), |p| {
            let src = p.alloc(1200);
            let dest = p.alloc(1200);
            vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(100)]
        });
        assert!(matches!(
            plan,
            Plan::Replicated(ReplicationCause::NoFullBlocks)
        ));
    }

    #[test]
    fn partition_invariant_blocks_conserved() {
        let plan = plan_for(LISTING1, LaunchConfig::cover1(100_000, 256), |p| {
            let src = p.alloc(100_000);
            let dest = p.alloc(100_000);
            vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(100_000)]
        });
        let tp = plan.three_phase().unwrap();
        for n in [1u64, 2, 3, 4, 7, 16, 32] {
            let part = tp.partition(n);
            assert_eq!(
                part.partial_blocks_per_node * n + part.callback_blocks,
                tp.num_blocks,
                "blocks conserved for n={n}"
            );
            assert!(part.callback_start <= tp.num_blocks);
        }
    }

    #[test]
    fn replicated_for_trivial_verdict() {
        let plan = plan_for(
            "__global__ void hist(int* bins, int* data) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                atomicAdd(&bins[data[id] % 8], 1);
            }",
            LaunchConfig::new(4u32, 32u32),
            |p| {
                let bins = p.alloc_elems(Scalar::I32, 8);
                let data = p.alloc_elems(Scalar::I32, 128);
                vec![Arg::Buffer(bins), Arg::Buffer(data)]
            },
        );
        assert!(matches!(
            plan,
            Plan::Replicated(ReplicationCause::NotDistributable(_))
        ));
    }
}
