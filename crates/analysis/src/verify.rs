//! The **kernel verifier**: static race / bounds / barrier-divergence
//! analysis with launch-time resolution.
//!
//! The Allgather-distributable analysis (paper §6) answers *"can this kernel
//! be distributed?"* while silently assuming the kernel is *correct*. A
//! kernel with an inter-block write-write race passes the affine conditions
//! yet produces node-order-dependent results after migration; an
//! out-of-bounds store corrupts different bytes on different nodes. This
//! module reuses the same [`Poly`]/[`AffineForm`]/variance machinery to
//! prove or refute three properties per kernel:
//!
//! 1. **inter-block race freedom** ([`analyze_block_races`]) — pairwise
//!    write-site footprint disjointness across `blockIdx`, via interval,
//!    gcd-stride and exact offset-set reasoning;
//! 2. **in-bounds accesses** — symbolic load/store index ranges compared
//!    with the buffer extents resolved at launch;
//! 3. **barrier uniformity** — no `__syncthreads()` under thread-variant
//!    control flow.
//!
//! Verdicts live on a MAY/MUST/UNKNOWN lattice ([`PropertyVerdict`]):
//! `Safe` is a *proof* (the dynamic sanitizer in `cucc-exec::sanitize` must
//! never observe a violation — asserted by `tests/proptest_verify.rs`),
//! `Must` is a proof of violation backed by a concrete witness (and must
//! reproduce dynamically), `May` over-approximates, and `Unknown` records
//! that the analysis gave up (non-affine index, unresolved loop, budget).
//!
//! Results surface as structured [`Diagnostic`]s with rule ids, severities
//! and write-site source locations (via [`cucc_ir::SourceMap`]); the same
//! formatter renders the distributable analysis' [`Reason`]s and the
//! planner's [`ReplicationCause`]s so `cucc analyze` / `cucc check` / `cucc
//! run` share one human-readable rendering.

use crate::affine::{affine_of_expr, AffineForm, IdxVar, VarForms};
use crate::distributable::{collect_write_sites, GuardClass, Reason, WriteSite};
use crate::plan::{launch_sym_env, ReplicationCause};
use crate::range::Interval;
use crate::variance::{expr_variance, var_variance, Variance};
use cucc_exec::bytecode::SlotKind;
use cucc_exec::{Arg, BufferId, Program};
use cucc_ir::{Axis, BinOp, Expr, Kernel, LaunchConfig, MemRef, Param, SourceMap, Stmt, VarId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Per-site offset-set enumeration budget (elements). Beyond this the race
/// check falls back to interval + stride reasoning only.
const OFFSET_BUDGET: usize = 1 << 16;
/// Block-shift lattice budget for multi-axis grids.
const DELTA_BUDGET: usize = 1 << 16;
/// Budget for the cross-coefficient full-footprint enumeration.
const PAIR_BUDGET: u64 = 1 << 21;
/// Overlap witnesses tried against tail guards before demoting to MAY.
const WITNESS_TRIES: usize = 64;
/// Diagnostics cap per rule (the first violations are the useful ones).
const DIAG_CAP: usize = 16;

// ------------------------------------------------------------- verdicts --

/// Result of checking one property. Ordered for lattice joins:
/// `Safe < Unknown < May < Must`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PropertyVerdict {
    /// Proven: no execution of this launch can violate the property.
    Safe,
    /// The analysis could not decide (non-affine index, unresolved loop
    /// bounds, enumeration budget exceeded).
    Unknown,
    /// A violation is possible but not proven (over-approximation overlap,
    /// or a witness that may sit behind an unevaluable guard).
    May,
    /// A violation is proven with a concrete witness and will reproduce in
    /// any complete execution of the launch.
    Must,
}

impl PropertyVerdict {
    /// Lattice join (most severe wins).
    pub fn join(self, other: PropertyVerdict) -> PropertyVerdict {
        self.max(other)
    }

    /// True for `Safe`.
    pub fn is_safe(self) -> bool {
        self == PropertyVerdict::Safe
    }
}

impl fmt::Display for PropertyVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PropertyVerdict::Safe => "safe",
            PropertyVerdict::Unknown => "unknown",
            PropertyVerdict::May => "may-violate",
            PropertyVerdict::Must => "must-violate",
        })
    }
}

/// Severity of one diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (fallback explanations, unknown verdicts).
    Info,
    /// Possible violation.
    May,
    /// Proven violation.
    Must,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::May => "MAY",
            Severity::Must => "MUST",
        })
    }
}

/// Which verifier rule produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Inter-block write-write race freedom.
    Race,
    /// In-bounds memory accesses.
    Bounds,
    /// Barrier uniformity.
    Barrier,
    /// Distribution decisions (rendered `Reason`s / `ReplicationCause`s).
    Distribute,
    /// Style / dead-code findings from the lint pass (`cucc lint`).
    Lint,
}

impl Rule {
    /// Stable rule identifier used in rendered diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Race => "race",
            Rule::Bounds => "bounds",
            Rule::Barrier => "barrier",
            Rule::Distribute => "distribute",
            Rule::Lint => "lint",
        }
    }
}

/// Source location of the write site (or barrier) a diagnostic refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRef {
    /// Buffer name (empty for barrier sites).
    pub buffer: String,
    /// Pre-order ordinal among the kernel's global writes (or barriers).
    pub ordinal: usize,
    /// 1-based source line, when the kernel came from `parse_kernel_with_map`.
    pub line: Option<u32>,
}

/// One structured verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: Rule,
    /// Finding severity.
    pub severity: Severity,
    /// Human explanation.
    pub message: String,
    /// Write-site / barrier location, when one is attributable.
    pub site: Option<SiteRef>,
}

impl Diagnostic {
    /// A site-less diagnostic (attach a [`SiteRef`] afterwards if one is
    /// attributable).
    pub fn new(rule: Rule, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            message,
            site: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.rule.id(), self.message)?;
        if let Some(s) = &self.site {
            if self.rule == Rule::Lint {
                // Lint ordinals count sites of the finding's own kind
                // (shared write, barrier, `if`, graph node), not writes.
                write!(f, " (site #{}", s.ordinal)?;
            } else if s.buffer.is_empty() {
                write!(f, " (barrier #{}", s.ordinal)?;
            } else {
                write!(f, " (write #{} to `{}`", s.ordinal, s.buffer)?;
            }
            if let Some(l) = s.line {
                write!(f, ", line {l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Full verifier result for one kernel at one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Inter-block write-write race verdict.
    pub race: PropertyVerdict,
    /// In-bounds access verdict.
    pub bounds: PropertyVerdict,
    /// Barrier-uniformity verdict.
    pub barrier: PropertyVerdict,
    /// All findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// True when no rule produced a MUST-severity diagnostic.
    pub fn clean(&self) -> bool {
        !self.has_must()
    }

    /// True when any diagnostic is MUST severity.
    pub fn has_must(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Must)
    }

    /// Multi-line human rendering: one summary line per rule, then the
    /// diagnostics.
    pub fn render(&self) -> String {
        let mut out = format!(
            "  race    : {}\n  bounds  : {}\n  barrier : {}\n",
            self.race, self.bounds, self.barrier
        );
        for d in &self.diagnostics {
            out += &format!("  {d}\n");
        }
        if self.diagnostics.is_empty() {
            out += "  all checks pass\n";
        }
        out
    }
}

// ----------------------------------------------------- shared formatter --

/// Render the distributable analysis' fallback [`Reason`]s as diagnostics.
pub fn reason_diagnostics(reasons: &[Reason]) -> Vec<Diagnostic> {
    reasons
        .iter()
        .map(|r| Diagnostic::new(Rule::Distribute, Severity::Info, r.to_string()))
        .collect()
}

/// Render a planner [`ReplicationCause`] as a diagnostic. Race-hazard vetoes
/// keep their verifier severity; all other causes are informational.
pub fn cause_diagnostic(cause: &ReplicationCause) -> Diagnostic {
    let severity = match cause {
        ReplicationCause::RaceHazard(sev, _) => *sev,
        _ => Severity::Info,
    };
    Diagnostic::new(Rule::Distribute, severity, cause.to_string())
}

// ------------------------------------------------------ canonical input --

/// Synthesize a canonical launch for `cucc check` / `cucc analyze` when the
/// caller supplies no geometry: grid 64 × block 256, integer scalars
/// defaulting to the total thread count (so canonical `id < n` tail guards
/// hold everywhere), float scalars 1.0, and every buffer *assumed* to hold
/// exactly `total` elements. Returns `(launch, args, extents)`; the assumed
/// extents cap definite-overrun bounds findings at MAY severity (pass
/// `assumed_extents = true` to [`verify_launch`]).
pub fn canonical_check_input(kernel: &Kernel) -> (LaunchConfig, Vec<Arg>, Vec<Option<u64>>) {
    let launch = LaunchConfig::new(64u32, 256u32);
    let total = 64i64 * 256;
    let mut args = Vec::with_capacity(kernel.params.len());
    let mut extents = Vec::with_capacity(kernel.params.len());
    for (i, p) in kernel.params.iter().enumerate() {
        match p {
            Param::Buffer { .. } => {
                args.push(Arg::Buffer(BufferId(i as u32)));
                extents.push(Some(total as u64));
            }
            Param::Scalar { ty, .. } => {
                args.push(match ty.kind() {
                    cucc_ir::ValueKind::Int => Arg::int(total),
                    cucc_ir::ValueKind::Float => Arg::float(1.0),
                });
                extents.push(None);
            }
        }
    }
    (launch, args, extents)
}

// ------------------------------------------------------------ top level --

/// Run all three verifier rules for one launch.
///
/// `extents[p]` is the element count of the buffer bound to parameter `p`
/// (`None` when unknown — bounds checks on that buffer become `Unknown`).
/// `assumed_extents` marks the extents as synthesized rather than real
/// allocation sizes: definite-overrun findings are then capped at MAY
/// (a definitely-*negative* index stays MUST — no extent can excuse it).
/// `map` attaches source lines to write sites when available.
pub fn verify_launch(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    extents: &[Option<u64>],
    assumed_extents: bool,
    map: Option<&SourceMap>,
) -> VerifyReport {
    let race = analyze_block_races(kernel, launch, args, map);
    let (bounds, mut bounds_diags) =
        analyze_bounds(kernel, launch, args, extents, assumed_extents, map);
    let (barrier, mut barrier_diags) = analyze_barriers(kernel, map);

    // A MUST verdict claims dynamic reproduction, which presumes the
    // witnessing blocks run to completion. If another rule says execution
    // may abort first (OOB trap, divergent barrier), demote to MAY. A
    // `Must` *bounds* verdict survives: the first fault in the witnessing
    // block is itself an OOB, which the sanitizer records.
    let mut race_v = race.verdict;
    let mut race_diags = race.diagnostics;
    let may_abort = bounds > PropertyVerdict::Unknown || barrier > PropertyVerdict::Unknown;
    if may_abort && race_v == PropertyVerdict::Must {
        race_v = PropertyVerdict::May;
        for d in &mut race_diags {
            if d.severity == Severity::Must {
                d.severity = Severity::May;
            }
        }
    }

    let mut diagnostics = race_diags;
    diagnostics.append(&mut bounds_diags);
    diagnostics.append(&mut barrier_diags);
    diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
    VerifyReport {
        race: race_v,
        bounds,
        barrier,
        diagnostics,
    }
}

// ------------------------------------------------------------ race rule --

/// Race-rule result (used standalone by the launch planner's safety veto).
#[derive(Debug, Clone, PartialEq)]
pub struct RaceAnalysis {
    /// Joined verdict over all write-site pairs.
    pub verdict: PropertyVerdict,
    /// Race findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Loop-variable iteration ranges resolvable for this launch:
/// `var -> (first, last, step)` of the values the interpreter actually
/// iterates (`first <= last` normalized; empty loops map to `None`).
fn resolve_loops(
    kernel: &Kernel,
    forms: &VarForms,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
) -> BTreeMap<VarId, Option<(i128, i128, i128)>> {
    let mut out = BTreeMap::new();
    kernel.visit_stmts(&mut |s| {
        if let Stmt::For {
            var,
            start,
            end,
            step,
            ..
        } = s
        {
            let resolved = (|| {
                let s0 = const_of(start, forms, env)?;
                let e0 = const_of(end, forms, env)?;
                let st = const_of(step, forms, env)?;
                if st == 0 {
                    return None;
                }
                // Interpreter semantics: `v = s0; while (st>0 ? v<e0 : v>e0)`.
                if st > 0 {
                    if s0 >= e0 {
                        return Some(None); // zero iterations
                    }
                    let last = s0 + ((e0 - 1 - s0) / st) * st;
                    Some(Some((s0, last, st)))
                } else {
                    if s0 <= e0 {
                        return Some(None);
                    }
                    let last = s0 - ((s0 - (e0 + 1)) / -st) * -st;
                    Some(Some((last, s0, -st)))
                }
            })();
            // `None` = unresolvable; `Some(None)` = resolved empty.
            out.insert(*var, resolved.flatten());
            if resolved.is_none() {
                out.remove(var);
            }
        }
    });
    out
}

/// Evaluate an expression to a launch-invariant constant via its affine form.
fn const_of(
    e: &Expr,
    forms: &VarForms,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
) -> Option<i128> {
    let f = affine_of_expr(e, forms)?;
    if !f.is_constant() {
        return None;
    }
    f.constant.eval(env)
}

/// One enumerable dimension of a write-site footprint.
#[derive(Debug, Clone)]
struct FootDim {
    /// Which index variable (threads use step 1 from 0; loops use their
    /// resolved progression).
    var: IdxVar,
    /// Concrete coefficient.
    coeff: i128,
    /// First value, count and stride of the dimension's progression.
    first: i128,
    count: u64,
    step: i128,
}

/// A 3-D thread (or block) coordinate used in MUST witnesses.
type Coord = (u32, u32, u32);

/// A write site with its footprint resolved for one launch. Offsets are in
/// elements and exclude the `blockIdx` contribution (which is linear:
/// `Σ block_coeff[a]·b_a`).
#[derive(Debug, Clone)]
struct ResolvedSite {
    ordinal: usize,
    name: String,
    /// Per-axis concrete blockIdx coefficients.
    block: BTreeMap<Axis, i128>,
    /// Offset-set hull (c0 folded in).
    span: Interval,
    /// All offsets are ≡ `base` (mod `gcd`); `gcd == 0` ⇔ singleton set.
    base: i128,
    gcd: i128,
    /// Exhaustive offsets with a thread-coordinate witness each, when the
    /// set fits [`OFFSET_BUDGET`]. The witness is only meaningful for
    /// loop-free sites (MUST candidates).
    offsets: Option<Vec<(i128, Coord)>>,
    has_loop: bool,
    /// Guards that must be re-checked before claiming MUST.
    tail_guards: Vec<crate::distributable::TailGuard>,
    /// Any guard the verifier cannot concretely evaluate at a witness.
    opaque_guard: bool,
    variant_loop: bool,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn site_name(kernel: &Kernel, site: &WriteSite) -> String {
    kernel.params[site.buffer.index()].name().to_string()
}

fn site_ref(kernel: &Kernel, sites: &[WriteSite], i: usize, map: Option<&SourceMap>) -> SiteRef {
    SiteRef {
        buffer: site_name(kernel, &sites[i]),
        ordinal: i,
        line: map.and_then(|m| m.global_write_lines.get(i).copied()),
    }
}

/// Resolve one write site's footprint for a launch. `Ok(None)` = the site
/// never executes (an enclosing loop is provably empty).
#[allow(clippy::too_many_arguments)]
fn resolve_site(
    kernel: &Kernel,
    site: &WriteSite,
    ordinal: usize,
    launch: LaunchConfig,
    loops: &BTreeMap<VarId, Option<(i128, i128, i128)>>,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
) -> Result<Option<ResolvedSite>, String> {
    if site.indirect {
        return Err("data-dependent (indirect) write index".into());
    }
    let Some(index) = &site.index else {
        return Err("non-affine write index".into());
    };
    let Some((coeffs, c0)) = index.eval_coeffs(env) else {
        return Err("write-index coefficients not resolvable at this launch".into());
    };
    let mut block = BTreeMap::new();
    let mut dims = Vec::new();
    let mut has_loop = false;
    for (v, c) in coeffs {
        match v {
            IdxVar::Block(a) => {
                block.insert(a, c);
            }
            IdxVar::Thread(a) => dims.push(FootDim {
                var: v,
                coeff: c,
                first: 0,
                count: launch.block.get(a) as u64,
                step: 1,
            }),
            IdxVar::Loop(lv) => {
                has_loop = true;
                match loops.get(&lv) {
                    Some(Some((first, last, step))) => dims.push(FootDim {
                        var: v,
                        coeff: c,
                        first: *first,
                        count: ((last - first) / step + 1) as u64,
                        step: *step,
                    }),
                    Some(None) => return Ok(None), // empty loop: dead site
                    None => return Err("loop bounds not resolvable at this launch".into()),
                }
            }
        }
    }
    let mut span = Interval::point(c0);
    let mut base = c0;
    let mut g = 0i128;
    let mut total: u64 = 1;
    for d in &dims {
        let last = d.first + (d.count as i128 - 1) * d.step;
        span = span.add(Interval::point(d.coeff * d.first).hull(Interval::point(d.coeff * last)));
        base += d.coeff * d.first;
        g = gcd(g, d.coeff * d.step);
        total = total.saturating_mul(d.count);
    }
    let offsets = if total as usize <= OFFSET_BUDGET {
        let mut out = Vec::with_capacity(total as usize);
        enumerate_offsets(&dims, 0, c0, (0, 0, 0), &mut out);
        Some(out)
    } else {
        None
    };
    let mut tail_guards = Vec::new();
    let mut opaque_guard = false;
    for gclass in &site.guards {
        match gclass {
            GuardClass::Tail(t) => tail_guards.push(t.clone()),
            _ => opaque_guard = true,
        }
    }
    Ok(Some(ResolvedSite {
        ordinal,
        name: site_name(kernel, site),
        block,
        span,
        base,
        gcd: g,
        offsets,
        has_loop,
        tail_guards,
        opaque_guard,
        variant_loop: site.variant_loop,
    }))
}

/// Recursively enumerate the offset set, carrying thread coordinates as
/// witnesses (loop dimensions leave the coordinates untouched).
fn enumerate_offsets(
    dims: &[FootDim],
    i: usize,
    acc: i128,
    wit: Coord,
    out: &mut Vec<(i128, Coord)>,
) {
    if i == dims.len() {
        out.push((acc, wit));
        return;
    }
    let d = &dims[i];
    let mut v = d.first;
    for k in 0..d.count {
        let mut w = wit;
        if let IdxVar::Thread(a) = d.var {
            match a {
                Axis::X => w.0 = k as u32,
                Axis::Y => w.1 = k as u32,
                Axis::Z => w.2 = k as u32,
            }
        }
        enumerate_offsets(dims, i + 1, acc + d.coeff * v, w, out);
        v += d.step;
    }
}

/// True when any `Div`/`Rem` in the kernel has a non-constant (or zero)
/// divisor — execution could abort with a division fault before reaching a
/// witnessed violation, so MUST claims are demoted.
fn kernel_may_fault(kernel: &Kernel) -> bool {
    let mut faulty = false;
    kernel.visit_stmts(&mut |s| {
        s.visit_exprs(&mut |e| {
            e.visit(&mut |e| {
                if let Expr::Binary {
                    op: BinOp::Div | BinOp::Rem,
                    rhs,
                    ..
                } = e
                {
                    if !matches!(&**rhs, Expr::IntConst(c) if *c != 0)
                        && !matches!(&**rhs, Expr::FloatConst(_))
                    {
                        faulty = true;
                    }
                }
            });
        });
    });
    faulty
}

fn kernel_has_return(kernel: &Kernel) -> bool {
    let mut found = false;
    kernel.visit_stmts(&mut |s| {
        if matches!(s, Stmt::Return) {
            found = true;
        }
    });
    found
}

/// Check the inter-block write-write race rule for one launch.
///
/// Two write sites race when a block `b` and a *different* block `b'` write
/// the same element of the same buffer and the writes are not both atomic
/// (atomic-atomic overlaps commute and are handled by the distribution
/// analysis' `AtomicWrite` reason instead). Intra-block overlaps are the
/// kernel's own business (same as on a GPU) and are not checked here.
pub fn analyze_block_races(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    map: Option<&SourceMap>,
) -> RaceAnalysis {
    let sites = collect_write_sites(kernel);
    let env = launch_sym_env(launch, args);
    let forms = VarForms::of_kernel(kernel);
    let loops = resolve_loops(kernel, &forms, &env);

    // Enclosing-loop status per global-write ordinal (from the bounds
    // walker, whose pre-order matches `collect_write_sites`): a site under
    // a provably-empty loop never executes; under an unresolvable loop it
    // cannot back a MUST claim.
    let mut site_dead = vec![false; sites.len()];
    let mut site_loop_unknown = vec![false; sites.len()];
    for acc in collect_accesses(kernel) {
        if let Some(ord) = acc.write_ordinal {
            for lv in &acc.enclosing_loops {
                match loops.get(lv) {
                    Some(Some(_)) => {}
                    Some(None) => site_dead[ord] = true,
                    None => site_loop_unknown[ord] = true,
                }
            }
        }
    }

    enum SiteState {
        Resolved(ResolvedSite),
        Dead,
        Unresolved,
    }
    let mut verdict = PropertyVerdict::Safe;
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut states: Vec<SiteState> = Vec::new();
    for (i, site) in sites.iter().enumerate() {
        if site_dead[i] {
            states.push(SiteState::Dead);
            continue;
        }
        match resolve_site(kernel, site, i, launch, &loops, &env) {
            Ok(Some(mut r)) => {
                if site_loop_unknown[i] {
                    r.has_loop = true; // blocks MUST candidacy
                }
                states.push(SiteState::Resolved(r));
            }
            Ok(None) => states.push(SiteState::Dead),
            Err(why) => {
                states.push(SiteState::Unresolved);
                // Atomic sites that cannot be resolved are still safe
                // against *other atomic* sites; against plain sites they
                // make the pair unknown below. Record the reason once.
                verdict = verdict.join(PropertyVerdict::Unknown);
                if diagnostics.len() < DIAG_CAP {
                    let mut d = Diagnostic::new(
                        Rule::Race,
                        Severity::Info,
                        format!("cannot bound footprint: {why}"),
                    );
                    d.site = Some(site_ref(kernel, &sites, i, map));
                    diagnostics.push(d);
                }
            }
        }
    }

    let must_eligible = !kernel_has_return(kernel) && !kernel_may_fault(kernel);
    let nblocks = launch.num_blocks();
    for i in 0..sites.len() {
        for j in i..sites.len() {
            if sites[i].buffer != sites[j].buffer {
                continue;
            }
            if sites[i].atomic && sites[j].atomic {
                continue;
            }
            if matches!(states[i], SiteState::Dead) || matches!(states[j], SiteState::Dead) {
                continue; // dead site(s): no writes happen
            }
            let (SiteState::Resolved(a), SiteState::Resolved(b)) = (&states[i], &states[j]) else {
                verdict = verdict.join(PropertyVerdict::Unknown);
                continue;
            };
            if nblocks < 2 {
                continue; // single block: no inter-block pair exists
            }
            let pair = check_pair(a, b, launch, &env, must_eligible);
            verdict = verdict.join(pair.verdict);
            if let Some(msg) = pair.message {
                if diagnostics.len() < DIAG_CAP {
                    let sev = match pair.verdict {
                        PropertyVerdict::Must => Severity::Must,
                        PropertyVerdict::May => Severity::May,
                        _ => Severity::Info,
                    };
                    let mut d = Diagnostic::new(Rule::Race, sev, msg);
                    d.site = Some(site_ref(kernel, &sites, i, map));
                    diagnostics.push(d);
                }
            }
        }
    }
    diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
    RaceAnalysis {
        verdict,
        diagnostics,
    }
}

struct PairOutcome {
    verdict: PropertyVerdict,
    message: Option<String>,
}

impl PairOutcome {
    fn safe() -> PairOutcome {
        PairOutcome {
            verdict: PropertyVerdict::Safe,
            message: None,
        }
    }
    fn unknown(msg: String) -> PairOutcome {
        PairOutcome {
            verdict: PropertyVerdict::Unknown,
            message: Some(msg),
        }
    }
}

/// Disjointness of `O_a` vs `O_b + δ` using the interval and stride filters,
/// then (when available) the exact sets. Returns witnesses on overlap.
#[allow(clippy::type_complexity)]
fn sets_overlap(
    a: &ResolvedSite,
    b: &ResolvedSite,
    delta: i128,
) -> Result<Option<Vec<(i128, Coord, Coord)>>, ()> {
    // Interval filter.
    if a.span.meet(b.span.translate(delta)).is_none() {
        return Ok(None);
    }
    // Stride filter: every element of O_a ≡ base_a (mod g), O_b + δ ≡
    // base_b + δ (mod g) with g = gcd of both strides.
    let g = gcd(a.gcd, b.gcd);
    if g > 0 && (b.base + delta - a.base) % g != 0 {
        return Ok(None);
    }
    if g == 0 {
        // Both singletons; interval filter already compared them.
        return Ok(Some(vec![(
            a.base,
            a.offsets.as_ref().map(|o| o[0].1).unwrap_or((0, 0, 0)),
            b.offsets.as_ref().map(|o| o[0].1).unwrap_or((0, 0, 0)),
        )]));
    }
    // Exact membership, when both sets are enumerated.
    let (Some(oa), Some(ob)) = (&a.offsets, &b.offsets) else {
        return Err(()); // inconclusive: prefilters passed, no enumeration
    };
    let set_a: HashMap<i128, Coord> = oa.iter().map(|(o, w)| (*o, *w)).collect();
    let mut hits = Vec::new();
    for (o, wb) in ob {
        if let Some(wa) = set_a.get(&(o + delta)) {
            hits.push((o + delta, *wa, *wb));
            if hits.len() >= WITNESS_TRIES {
                break;
            }
        }
    }
    Ok(if hits.is_empty() { None } else { Some(hits) })
}

/// Evaluate a site's tail guards at concrete thread/block coordinates.
fn guards_hold(
    site: &ResolvedSite,
    wit: Coord,
    blk: Coord,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
) -> Option<bool> {
    for g in &site.tail_guards {
        let (coeffs, c0) = g.lhs.eval_coeffs(env)?;
        let bound = g.bound.eval(env)?;
        let mut v = c0;
        for (var, c) in coeffs {
            let coord = match var {
                IdxVar::Thread(Axis::X) => wit.0 as i128,
                IdxVar::Thread(Axis::Y) => wit.1 as i128,
                IdxVar::Thread(Axis::Z) => wit.2 as i128,
                IdxVar::Block(Axis::X) => blk.0 as i128,
                IdxVar::Block(Axis::Y) => blk.1 as i128,
                IdxVar::Block(Axis::Z) => blk.2 as i128,
                IdxVar::Loop(_) => return None, // excluded by classification
            };
            v += c * coord;
        }
        if v >= bound {
            return Some(false);
        }
    }
    Some(true)
}

/// Check one ordered pair of resolved sites across all block shifts.
fn check_pair(
    a: &ResolvedSite,
    b: &ResolvedSite,
    launch: LaunchConfig,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
    must_eligible: bool,
) -> PairOutcome {
    if a.block == b.block {
        check_pair_equal_coeffs(a, b, launch, env, must_eligible)
    } else {
        check_pair_cross_coeffs(a, b, launch, env, must_eligible)
    }
}

/// Grid extents per axis.
fn grid_ext(launch: LaunchConfig) -> [(Axis, i128); 3] {
    [
        (Axis::X, launch.grid.x as i128),
        (Axis::Y, launch.grid.y as i128),
        (Axis::Z, launch.grid.z as i128),
    ]
}

/// Equal block coefficients: footprints of blocks `b` and `b + Δ` differ by
/// the constant shift `Σ coeff[axis]·Δ[axis]`; scan the Δ lattice.
fn check_pair_equal_coeffs(
    a: &ResolvedSite,
    b: &ResolvedSite,
    launch: LaunchConfig,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
    must_eligible: bool,
) -> PairOutcome {
    let exts = grid_ext(launch);
    let active: Vec<(Axis, i128)> = exts.iter().copied().filter(|(_, e)| *e > 1).collect();
    if active.is_empty() {
        return PairOutcome::safe();
    }
    let lattice: i128 = active.iter().map(|(_, e)| 2 * e - 1).product();
    if lattice as usize > DELTA_BUDGET {
        // Dominant special case: one active axis — scan ascending |Δ| and
        // stop once the shift leaves the window where the spans can still
        // touch (overlap needs `shift ∈ span_a − span_b`, and |shift| =
        // |c|·d grows monotonically with d).
        if active.len() == 1 {
            let (axis, ext) = active[0];
            let c = a.block.get(&axis).copied().unwrap_or(0);
            let window = a.span.sub(b.span).abs_hi();
            for d in 1..ext {
                if c != 0 && (c * d).abs() > window {
                    break;
                }
                for delta in [d, -d] {
                    let mut dv = [0i128; 3];
                    dv[axis as usize] = delta;
                    match scan_delta(a, b, dv, env, must_eligible) {
                        ScanOutcome::Disjoint => {}
                        other => return other.into_pair(a, b),
                    }
                }
                if c == 0 {
                    break; // shift is 0 for every Δ: one probe decides all
                }
            }
            return PairOutcome::safe();
        }
        return PairOutcome::unknown(format!(
            "grid too large to enumerate block shifts for writes to `{}`",
            a.name
        ));
    }
    // Full lattice walk.
    let range = |e: i128| -> Vec<i128> { (-(e - 1)..e).collect() };
    let (rx, ry, rz) = (range(exts[0].1), range(exts[1].1), range(exts[2].1));
    for &dx in &rx {
        for &dy in &ry {
            for &dz in &rz {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                match scan_delta(a, b, [dx, dy, dz], env, must_eligible) {
                    ScanOutcome::Disjoint => {}
                    other => return other.into_pair(a, b),
                }
            }
        }
    }
    PairOutcome::safe()
}

enum ScanOutcome {
    Disjoint,
    Inconclusive,
    Overlap {
        must: bool,
        element: i128,
        blocks: (Coord, Coord),
    },
}

impl ScanOutcome {
    fn into_pair(self, a: &ResolvedSite, b: &ResolvedSite) -> PairOutcome {
        match self {
            ScanOutcome::Disjoint => PairOutcome::safe(),
            ScanOutcome::Inconclusive => PairOutcome::unknown(format!(
                "write footprints of `{}` not provably disjoint across blocks \
                 (enumeration budget exceeded)",
                a.name
            )),
            ScanOutcome::Overlap {
                must,
                element,
                blocks,
            } => {
                let (ba, bb) = blocks;
                let verdict = if must {
                    PropertyVerdict::Must
                } else {
                    PropertyVerdict::May
                };
                let what = if must { "both write" } else { "may both write" };
                // The site ref appended by `Diagnostic`'s Display already
                // names write `a`; only a distinct second site adds info.
                let sites = if a.ordinal == b.ordinal {
                    String::new()
                } else {
                    format!(" (with write #{})", b.ordinal)
                };
                PairOutcome {
                    verdict,
                    message: Some(format!(
                        "blocks ({},{},{}) and ({},{},{}) {what} `{}`[{element}]{sites}",
                        ba.0, ba.1, ba.2, bb.0, bb.1, bb.2, a.name
                    )),
                }
            }
        }
    }
}

/// Test one Δ of the equal-coefficient case.
fn scan_delta(
    a: &ResolvedSite,
    b: &ResolvedSite,
    dv: [i128; 3],
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
    must_eligible: bool,
) -> ScanOutcome {
    let shift: i128 = [Axis::X, Axis::Y, Axis::Z]
        .iter()
        .map(|ax| a.block.get(ax).copied().unwrap_or(0) * dv[*ax as usize])
        .sum();
    // Blocks b0 and b0+Δ, with b0 chosen so both are inside the grid.
    let b0 = (
        (-dv[0]).max(0) as u32,
        (-dv[1]).max(0) as u32,
        (-dv[2]).max(0) as u32,
    );
    let b1 = (
        (b0.0 as i128 + dv[0]) as u32,
        (b0.1 as i128 + dv[1]) as u32,
        (b0.2 as i128 + dv[2]) as u32,
    );
    // Footprint of `a` at b0 vs footprint of `b` at b1 = O_b + shift.
    match sets_overlap(a, b, shift) {
        Ok(None) => ScanOutcome::Disjoint,
        Err(()) => ScanOutcome::Inconclusive,
        Ok(Some(hits)) => {
            let block_part: i128 = [Axis::X, Axis::Y, Axis::Z]
                .iter()
                .map(|ax| {
                    a.block.get(ax).copied().unwrap_or(0)
                        * match ax {
                            Axis::X => b0.0 as i128,
                            Axis::Y => b0.1 as i128,
                            Axis::Z => b0.2 as i128,
                        }
                })
                .sum();
            let mut must = false;
            let mut element = hits[0].0 + block_part;
            if must_eligible && pair_must_candidate(a, b) {
                for (o, wa, wb) in &hits {
                    if guards_hold(a, *wa, b0, env) == Some(true)
                        && guards_hold(b, *wb, b1, env) == Some(true)
                    {
                        must = true;
                        element = o + block_part;
                        break;
                    }
                }
            }
            ScanOutcome::Overlap {
                must,
                element,
                blocks: (b0, b1),
            }
        }
    }
}

/// Structural eligibility of a pair for a MUST verdict: loop-free,
/// non-atomic-only-guarded by concretely evaluable tail guards.
fn pair_must_candidate(a: &ResolvedSite, b: &ResolvedSite) -> bool {
    !a.has_loop
        && !b.has_loop
        && !a.variant_loop
        && !b.variant_loop
        && !a.opaque_guard
        && !b.opaque_guard
}

/// Different block coefficients: compare global footprints, then enumerate
/// all (block, offset) pairs within budget.
fn check_pair_cross_coeffs(
    a: &ResolvedSite,
    b: &ResolvedSite,
    launch: LaunchConfig,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
    must_eligible: bool,
) -> PairOutcome {
    let exts = grid_ext(launch);
    let global = |s: &ResolvedSite| -> Interval {
        let mut iv = s.span;
        for (ax, e) in exts {
            let c = s.block.get(&ax).copied().unwrap_or(0) * (e - 1);
            iv = iv.add(Interval::point(0).hull(Interval::point(c)));
        }
        iv
    };
    if global(a).meet(global(b)).is_none() {
        return PairOutcome::safe();
    }
    let nblocks = launch.num_blocks();
    let cost = |s: &ResolvedSite| -> u64 {
        nblocks.saturating_mul(
            s.offsets
                .as_ref()
                .map(|o| o.len() as u64)
                .unwrap_or(u64::MAX),
        )
    };
    if a.offsets.is_none() || b.offsets.is_none() || cost(a) > PAIR_BUDGET || cost(b) > PAIR_BUDGET
    {
        return PairOutcome::unknown(format!(
            "write footprints of `{}` overlap globally but are too large to \
             enumerate per block",
            a.name
        ));
    }
    type Wit = (Coord, Coord); // (block, thread)
    let mut table: HashMap<i128, Wit> = HashMap::new();
    let block_base = |s: &ResolvedSite, blk: Coord| -> i128 {
        s.block.get(&Axis::X).copied().unwrap_or(0) * blk.0 as i128
            + s.block.get(&Axis::Y).copied().unwrap_or(0) * blk.1 as i128
            + s.block.get(&Axis::Z).copied().unwrap_or(0) * blk.2 as i128
    };
    for lin in 0..nblocks {
        let blk = launch.grid.delinearize(lin);
        let base = block_base(a, blk);
        for (o, w) in a.offsets.as_ref().unwrap() {
            table.entry(o + base).or_insert((blk, *w));
        }
    }
    let mut hit: Option<(i128, Wit, Wit)> = None;
    let mut must = false;
    'outer: for lin in 0..nblocks {
        let blk = launch.grid.delinearize(lin);
        let base = block_base(b, blk);
        for (o, w) in b.offsets.as_ref().unwrap() {
            let elem = o + base;
            if let Some((ablk, aw)) = table.get(&elem) {
                if *ablk == blk {
                    continue; // same block: not an inter-block race
                }
                if hit.is_none() {
                    hit = Some((elem, (*ablk, *aw), (blk, *w)));
                }
                if must_eligible
                    && pair_must_candidate(a, b)
                    && guards_hold(a, *aw, *ablk, env) == Some(true)
                    && guards_hold(b, *w, blk, env) == Some(true)
                {
                    hit = Some((elem, (*ablk, *aw), (blk, *w)));
                    must = true;
                    break 'outer;
                }
            }
        }
    }
    match hit {
        None => PairOutcome::safe(),
        Some((elem, (ablk, _), (bblk, _))) => ScanOutcome::Overlap {
            must,
            element: elem,
            blocks: (ablk, bblk),
        }
        .into_pair(a, b),
    }
}

// ---------------------------------------------------------- bounds rule --

/// One memory access collected by the bounds walker.
struct Access<'a> {
    mem: MemRef,
    index: &'a Expr,
    is_store: bool,
    /// Pre-order ordinal among global writes (stores/atomics only).
    write_ordinal: Option<usize>,
    /// Guard conjunct expressions on the path (true-branch only narrows).
    guards: Vec<(&'a Expr, bool)>, // (expr, negated)
    /// Inside a `Select` arm or a short-circuit operand: evaluation is not
    /// guaranteed, so the finding cannot be MUST.
    conditional: bool,
    /// Loop variables of every enclosing `for` (an access under an empty
    /// loop never executes; under an unresolvable one it may not).
    enclosing_loops: Vec<VarId>,
}

fn collect_accesses(kernel: &Kernel) -> Vec<Access<'_>> {
    struct Walker<'a> {
        out: Vec<Access<'a>>,
        guards: Vec<(&'a Expr, bool)>,
        write_ord: usize,
        loops: Vec<VarId>,
    }
    impl<'a> Walker<'a> {
        fn expr(&mut self, e: &'a Expr, conditional: bool) {
            match e {
                Expr::Load { mem, index } => {
                    self.expr(index, conditional);
                    self.out.push(Access {
                        mem: *mem,
                        index,
                        is_store: false,
                        write_ordinal: None,
                        guards: self.guards.clone(),
                        conditional,
                        enclosing_loops: self.loops.clone(),
                    });
                }
                Expr::Binary {
                    op: BinOp::LAnd | BinOp::LOr,
                    lhs,
                    rhs,
                } => {
                    self.expr(lhs, conditional);
                    self.expr(rhs, true);
                }
                Expr::Binary { lhs, rhs, .. } => {
                    self.expr(lhs, conditional);
                    self.expr(rhs, conditional);
                }
                Expr::Select {
                    cond,
                    then_value,
                    else_value,
                } => {
                    self.expr(cond, conditional);
                    self.expr(then_value, true);
                    self.expr(else_value, true);
                }
                Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => self.expr(arg, conditional),
                Expr::Call { args, .. } => {
                    for a in args {
                        self.expr(a, conditional);
                    }
                }
                _ => {}
            }
        }
        fn stmts(&mut self, stmts: &'a [Stmt]) {
            for s in stmts {
                match s {
                    Stmt::Assign { value, .. } => self.expr(value, false),
                    Stmt::Store { mem, index, value }
                    | Stmt::AtomicRmw {
                        mem, index, value, ..
                    } => {
                        self.expr(index, false);
                        self.expr(value, false);
                        let ord = if matches!(mem, MemRef::Global(_)) {
                            let o = self.write_ord;
                            self.write_ord += 1;
                            Some(o)
                        } else {
                            None
                        };
                        self.out.push(Access {
                            mem: *mem,
                            index,
                            is_store: true,
                            write_ordinal: ord,
                            guards: self.guards.clone(),
                            conditional: false,
                            enclosing_loops: self.loops.clone(),
                        });
                    }
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        self.expr(cond, false);
                        let mut conj = Vec::new();
                        split_conjuncts_local(cond, &mut conj);
                        let depth = conj.len();
                        for c in &conj {
                            self.guards.push((*c, false));
                        }
                        self.stmts(then_body);
                        self.guards.truncate(self.guards.len() - depth);
                        if !else_body.is_empty() {
                            // The negated condition still guards the else
                            // branch (blocks MUST), but performs no
                            // narrowing.
                            self.guards.push((cond, true));
                            self.stmts(else_body);
                            self.guards.pop();
                        }
                    }
                    Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body,
                    } => {
                        self.expr(start, false);
                        self.expr(end, false);
                        self.expr(step, false);
                        self.loops.push(*var);
                        self.stmts(body);
                        self.loops.pop();
                    }
                    Stmt::SyncThreads | Stmt::Return => {}
                }
            }
        }
    }
    let mut w = Walker {
        out: Vec::new(),
        guards: Vec::new(),
        write_ord: 0,
        loops: Vec::new(),
    };
    w.stmts(&kernel.body);
    w.out
}

fn split_conjuncts_local<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::LAnd,
        lhs,
        rhs,
    } = e
    {
        split_conjuncts_local(lhs, out);
        split_conjuncts_local(rhs, out);
    } else {
        out.push(e);
    }
}

/// Interval of an affine form under the launch, `None` when a coefficient or
/// a loop range cannot be resolved.
fn range_of(
    form: &AffineForm,
    launch: LaunchConfig,
    loops: &BTreeMap<VarId, Option<(i128, i128, i128)>>,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
) -> Option<Interval> {
    let (coeffs, c0) = form.eval_coeffs(env)?;
    let mut iv = Interval::point(c0);
    for (v, c) in coeffs {
        let (vmin, vmax) = match v {
            IdxVar::Thread(a) => (0, launch.block.get(a) as i128 - 1),
            IdxVar::Block(a) => (0, launch.grid.get(a) as i128 - 1),
            IdxVar::Loop(lv) => match loops.get(&lv) {
                Some(Some((first, last, _))) => (*first, *last),
                // An empty loop's body never runs; treat the var as its
                // start value (the access never executes anyway — using any
                // finite range keeps the analysis an over-approximation).
                Some(None) => return None,
                None => return None,
            },
        };
        iv = iv.add(Interval::point(vmin).hull(Interval::point(vmax)).scale(c));
    }
    Some(iv)
}

/// Check the in-bounds rule. Extents are in elements, indexed by parameter.
fn analyze_bounds(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    extents: &[Option<u64>],
    assumed_extents: bool,
    map: Option<&SourceMap>,
) -> (PropertyVerdict, Vec<Diagnostic>) {
    let env = launch_sym_env(launch, args);
    let forms = VarForms::of_kernel(kernel);
    let loops = resolve_loops(kernel, &forms, &env);
    let must_eligible = !kernel_has_return(kernel) && !kernel_may_fault(kernel);
    let accesses = collect_accesses(kernel);
    // Bytecode range-analysis facts for MAY→Safe discharge, built lazily on
    // the first finding the affine rule cannot prove (it compiles the
    // kernel, so the common all-Safe path never pays for it).
    let mut discharge: Option<Option<RangeDischarge>> = None;

    let mut verdict = PropertyVerdict::Safe;
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut unknown_noted = false;
    for acc in &accesses {
        // Enclosing-loop status: an access under a provably-empty loop
        // never executes (skip); under an unresolvable one it may not
        // execute (blocks MUST, bounds proofs still hold for whatever
        // iterations do run).
        let mut loop_unknown = false;
        let mut dead = false;
        for lv in &acc.enclosing_loops {
            match loops.get(lv) {
                Some(Some(_)) => {}
                Some(None) => dead = true,
                None => loop_unknown = true,
            }
        }
        if dead {
            continue;
        }
        let (name, extent): (String, Option<i128>) = match acc.mem {
            MemRef::Global(p) => (
                kernel.params[p.index()].name().to_string(),
                extents.get(p.index()).copied().flatten().map(|e| e as i128),
            ),
            MemRef::Shared(i) => {
                let d = &kernel.shared[i as usize];
                (d.name.clone(), Some(d.len as i128))
            }
            MemRef::Local(i) => {
                let d = &kernel.locals[i as usize];
                (d.name.clone(), Some(d.len as i128))
            }
        };
        let form = affine_of_expr(acc.index, &forms);
        let range = form
            .as_ref()
            .and_then(|f| range_of(f, launch, &loops, &env));
        let (Some(form), Some(raw)) = (form, range) else {
            // The affine walker gave up, but the flow-sensitive bytecode
            // analysis may still certify the buffer (guard refinement,
            // constant propagation through variables).
            let disc = discharge
                .get_or_insert_with(|| range_discharge(kernel, launch, args, extents))
                .as_ref();
            if disc.is_some_and(|d| d.certified(acc.mem)) {
                continue; // every compiled access certified in bounds
            }
            verdict = verdict.join(PropertyVerdict::Unknown);
            if !unknown_noted && diags.len() < DIAG_CAP {
                unknown_noted = true;
                diags.push(Diagnostic::new(
                    Rule::Bounds,
                    Severity::Info,
                    format!("index into `{name}` not analyzable (non-affine or data-dependent)"),
                ));
            }
            continue;
        };
        let Some(extent) = extent else {
            verdict = verdict.join(PropertyVerdict::Unknown);
            continue;
        };
        // Guard narrowing (true-branch comparisons only). An empty meet
        // means the guards contradict the raw range: no thread both passes
        // the guards and performs the access, so the site is dead.
        let mut narrowed = Some(raw);
        for (g, negated) in &acc.guards {
            if *negated {
                continue;
            }
            if let Some(n) = narrow_by_guard(&form, g, &forms, launch, &loops, &env) {
                narrowed = narrowed.and_then(|iv| iv.meet(n));
            }
        }
        let Some(iv) = narrowed else {
            continue; // guards prove the access never executes
        };
        if iv.lo >= 0 && iv.hi < extent {
            continue; // proven in bounds
        }
        let (lo, hi) = (iv.lo, iv.hi);
        // The raw (un-narrowed) box is exact: every corner is attained by
        // some thread/iteration. Narrowed bounds are over-approximations,
        // so MUST needs the *raw* range to violate.
        let definite = acc.guards.is_empty()
            && !acc.conditional
            && !loop_unknown
            && must_eligible
            && (raw.lo < 0 || raw.hi >= extent);
        let neg_side = raw.lo < 0 && acc.guards.is_empty() && !acc.conditional && must_eligible;
        let sev = if definite && (!assumed_extents || neg_side) {
            Severity::Must
        } else {
            Severity::May
        };
        // MAY→Safe discharge: a MAY finding is an over-approximation
        // artifact whenever the bytecode interpreter certifies every
        // reachable access to the buffer in bounds under this launch.
        if sev == Severity::May {
            let disc = discharge
                .get_or_insert_with(|| range_discharge(kernel, launch, args, extents))
                .as_ref();
            if disc.is_some_and(|d| d.certified(acc.mem)) {
                if diags.len() < DIAG_CAP {
                    let kind = if acc.is_store { "store" } else { "load" };
                    diags.push(Diagnostic::new(
                        Rule::Bounds,
                        Severity::Info,
                        format!(
                            "{kind} index into `{name}` MAY exceed [0, {extent}) affinely, \
                             but range analysis certifies every access — discharged"
                        ),
                    ));
                }
                continue;
            }
        }
        verdict = verdict.join(if sev == Severity::Must {
            PropertyVerdict::Must
        } else {
            PropertyVerdict::May
        });
        if diags.len() < DIAG_CAP {
            let kind = if acc.is_store { "store" } else { "load" };
            let mut d = Diagnostic::new(
                Rule::Bounds,
                sev,
                format!(
                    "{kind} index into `{name}` ranges over [{lo}, {hi}] but the buffer \
                     holds {extent} element(s){}",
                    if assumed_extents && acc.mem.space() == cucc_ir::MemSpace::Global {
                        " (assumed extent)"
                    } else {
                        ""
                    }
                ),
            );
            if let Some(ord) = acc.write_ordinal {
                d.site = Some(SiteRef {
                    buffer: name,
                    ordinal: ord,
                    line: map.and_then(|m| m.global_write_lines.get(ord).copied()),
                });
            }
            diags.push(d);
        }
    }
    (verdict, diags)
}

/// Narrow an index interval using one guard conjunct `small <cmp> big`
/// (comparisons and equalities over affine expressions).
///
/// Pointwise for the thread executing the access, `index = small + d` with
/// `d = index − small`, so under the guard `index ≤ big − 1 + d` (`Le`: no
/// `−1`), bounded above by `max(big + d)` over the launch box — computed
/// jointly so correlated terms cancel. Symmetrically `index = big + e ≥
/// small + 1 + e` bounds it below via `min(small + e)`. Equality narrows to
/// the exact range of `big + d`. Unrelated guards yield huge, harmless
/// bounds; unresolvable ones yield `None` (no narrowing).
fn narrow_by_guard(
    index: &AffineForm,
    guard: &Expr,
    forms: &VarForms,
    launch: LaunchConfig,
    loops: &BTreeMap<VarId, Option<(i128, i128, i128)>>,
    env: &impl Fn(crate::poly::Sym) -> Option<i128>,
) -> Option<Interval> {
    let Expr::Binary { op, lhs, rhs } = guard else {
        return None;
    };
    let (small, big, inclusive, eq) = match op {
        BinOp::Lt => (lhs, rhs, false, false),
        BinOp::Le => (lhs, rhs, true, false),
        BinOp::Gt => (rhs, lhs, false, false),
        BinOp::Ge => (rhs, lhs, true, false),
        BinOp::Eq => (lhs, rhs, true, true),
        _ => return None,
    };
    let small_f = affine_of_expr(small, forms)?;
    let big_f = affine_of_expr(big, forms)?;
    let upper_f = big_f.add(&index.sub(&small_f)); // big + (index − small)
    let u = range_of(&upper_f, launch, loops, env)?;
    if eq {
        return Some(u);
    }
    let hi = u.hi - if inclusive { 0 } else { 1 };
    let lower_f = small_f.add(&index.sub(&big_f)); // small + (index − big)
    let lo = match range_of(&lower_f, launch, loops, env) {
        Some(l) => l.lo + if inclusive { 0 } else { 1 },
        None => i128::MIN,
    };
    // May be empty (`lo > hi`) when the guard contradicts the raw range;
    // the caller's `meet` then proves the access dead.
    Some(Interval { lo, hi })
}

// ----------------------------------------------- range-analysis discharge --

/// Per-buffer facts from the bytecode abstract interpreter
/// ([`crate::range::analyze_ranges`]): a memory reference maps to certified
/// when every *reachable* compiled access to it is proven in bounds, so the
/// launch cannot fault on that buffer and a MAY finding of the affine rule
/// is an over-approximation artifact.
struct RangeDischarge {
    /// Global buffers, keyed by parameter index.
    global: BTreeMap<usize, bool>,
    /// Shared arrays, keyed by declaration index.
    shared: BTreeMap<u32, bool>,
    /// Local arrays, keyed by declaration index.
    local: BTreeMap<u32, bool>,
}

impl RangeDischarge {
    fn certified(&self, mem: MemRef) -> bool {
        match mem {
            MemRef::Global(p) => self.global.get(&p.index()).copied().unwrap_or(false),
            MemRef::Shared(i) => self.shared.get(&i).copied().unwrap_or(false),
            MemRef::Local(i) => self.local.get(&i).copied().unwrap_or(false),
        }
    }
}

/// Compile the kernel and run the range analysis, folding the per-slot
/// certificates back onto source-level memory references. `None` when the
/// kernel does not compile (the affine verdict then stands alone).
fn range_discharge(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    extents: &[Option<u64>],
) -> Option<RangeDischarge> {
    let prog = Program::compile(kernel, launch, args).ok()?;
    let param_of = |buf: BufferId| {
        args.iter()
            .position(|a| matches!(a, Arg::Buffer(b) if *b == buf))
    };
    let slot_extents = crate::range::param_slot_extents(&prog, args, extents);
    let ok = crate::range::analyze_ranges(&prog, &slot_extents).certified_slots();
    let mut d = RangeDischarge {
        global: BTreeMap::new(),
        shared: BTreeMap::new(),
        local: BTreeMap::new(),
    };
    for (i, s) in prog.slots().iter().enumerate() {
        let Some(info) = s else { continue };
        // A slot with no reachable access cannot fault.
        let c = ok.get(&(i as u32)).copied().unwrap_or(true);
        match info.kind {
            SlotKind::Global { buf } => {
                if let Some(p) = param_of(buf) {
                    *d.global.entry(p).or_insert(true) &= c;
                }
            }
            SlotKind::Shared { idx } => *d.shared.entry(idx).or_insert(true) &= c,
            SlotKind::Local { idx } => *d.local.entry(idx).or_insert(true) &= c,
        }
    }
    Some(d)
}

// --------------------------------------------------------- barrier rule --

/// Check barrier uniformity: `__syncthreads()` under thread-variant control
/// flow diverges (some threads wait forever). Mirrors the validator's rule
/// but reports structured diagnostics instead of rejecting the kernel, so
/// builder-constructed kernels get the same scrutiny as parsed ones.
fn analyze_barriers(
    kernel: &Kernel,
    map: Option<&SourceMap>,
) -> (PropertyVerdict, Vec<Diagnostic>) {
    let variance = var_variance(kernel);
    let mut verdict = PropertyVerdict::Safe;
    let mut diags = Vec::new();
    let mut ordinal = 0usize;
    fn walk(
        stmts: &[Stmt],
        variance: &[Variance],
        variant: bool,
        ordinal: &mut usize,
        verdict: &mut PropertyVerdict,
        diags: &mut Vec<Diagnostic>,
        map: Option<&SourceMap>,
    ) {
        for s in stmts {
            match s {
                Stmt::SyncThreads => {
                    if variant {
                        *verdict = verdict.join(PropertyVerdict::Must);
                        if diags.len() < DIAG_CAP {
                            let mut d = Diagnostic::new(
                                Rule::Barrier,
                                Severity::Must,
                                "__syncthreads() under thread-variant control flow \
                                 (threads diverge at the barrier)"
                                    .into(),
                            );
                            d.site = Some(SiteRef {
                                buffer: String::new(),
                                ordinal: *ordinal,
                                line: map.and_then(|m| m.barrier_lines.get(*ordinal).copied()),
                            });
                            diags.push(d);
                        }
                    }
                    *ordinal += 1;
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let v = variant || expr_variance(cond, variance).thread;
                    walk(then_body, variance, v, ordinal, verdict, diags, map);
                    walk(else_body, variance, v, ordinal, verdict, diags, map);
                }
                Stmt::For {
                    start,
                    end,
                    step,
                    body,
                    ..
                } => {
                    let bounds = expr_variance(start, variance)
                        .join(expr_variance(end, variance))
                        .join(expr_variance(step, variance));
                    let v = variant || bounds.thread;
                    walk(body, variance, v, ordinal, verdict, diags, map);
                }
                _ => {}
            }
        }
    }
    walk(
        &kernel.body,
        &variance,
        false,
        &mut ordinal,
        &mut verdict,
        &mut diags,
        map,
    );
    (verdict, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_exec::MemPool;
    use cucc_ir::{parse_kernel, parse_kernel_with_map};

    fn check(
        src: &str,
        launch: LaunchConfig,
        args: Vec<Arg>,
        extents: Vec<Option<u64>>,
    ) -> VerifyReport {
        let (k, map) = parse_kernel_with_map(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        verify_launch(&k, launch, &args, &extents, false, Some(&map))
    }

    fn races(src: &str, launch: LaunchConfig, args: Vec<Arg>) -> RaceAnalysis {
        let k = parse_kernel(src).unwrap();
        analyze_block_races(&k, launch, &args, None)
    }

    #[test]
    fn disjoint_saxpy_is_safe() {
        let r = check(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
            LaunchConfig::new(8u32, 128u32),
            vec![
                Arg::Buffer(BufferId(0)),
                Arg::Buffer(BufferId(1)),
                Arg::float(2.0),
                Arg::int(1024),
            ],
            vec![Some(1024), Some(1024), None, None],
        );
        assert!(r.race.is_safe(), "{r:?}");
        assert!(r.bounds.is_safe(), "{r:?}");
        assert!(r.barrier.is_safe(), "{r:?}");
        assert!(r.clean());
    }

    #[test]
    fn block_invariant_write_is_must_race_with_line() {
        let r = check(
            "__global__ void k(int* out) {
                out[threadIdx.x] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(32)],
        );
        assert_eq!(r.race, PropertyVerdict::Must, "{r:?}");
        let d = &r.diagnostics[0];
        assert_eq!(d.rule, Rule::Race);
        assert_eq!(d.severity, Severity::Must);
        assert_eq!(d.site.as_ref().unwrap().line, Some(2));
        assert!(d.to_string().contains("MUST[race]"), "{d}");
    }

    #[test]
    fn sliding_window_halo_is_must_race() {
        // Adjacent blocks share one element (the Hetero-Mark overlap demo).
        let r = races(
            "__global__ void k(float* out) {
                out[blockIdx.x * (blockDim.x - 1) + threadIdx.x] = 1.0f;
            }",
            LaunchConfig::new(32u32, 64u32),
            vec![Arg::Buffer(BufferId(0))],
        );
        assert_eq!(r.verdict, PropertyVerdict::Must, "{r:?}");
    }

    #[test]
    fn strided_interleave_is_safe_by_residue() {
        // Interleaved but disjoint: residues mod gridDim differ per block.
        let r = races(
            "__global__ void k(int* out) {
                out[threadIdx.x * gridDim.x + blockIdx.x] = 1;
            }",
            LaunchConfig::new(4u32, 8u32),
            vec![Arg::Buffer(BufferId(0))],
        );
        assert!(r.verdict.is_safe(), "{r:?}");
    }

    #[test]
    fn guarded_overlap_is_may_not_must() {
        // The data-dependent guard may disable the racing writes.
        let r = races(
            "__global__ void k(int* out, int* flag) {
                if (flag[0] > 0) out[threadIdx.x] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::Buffer(BufferId(1))],
        );
        assert_eq!(r.verdict, PropertyVerdict::May, "{r:?}");
    }

    #[test]
    fn tail_guard_true_at_witness_keeps_must() {
        let r = races(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[threadIdx.x] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::int(1 << 20)],
        );
        assert_eq!(r.verdict, PropertyVerdict::Must, "{r:?}");
    }

    #[test]
    fn tail_guard_false_everywhere_demotes_to_may() {
        // n = 0 disables every write; the verifier cannot prove the site
        // dead (we only evaluate guards at witnesses), so MAY.
        let r = races(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[threadIdx.x] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::int(0)],
        );
        assert_eq!(r.verdict, PropertyVerdict::May, "{r:?}");
    }

    #[test]
    fn atomic_atomic_overlap_not_a_race() {
        let r = races(
            "__global__ void k(int* out) {
                atomicAdd(&out[0], 1);
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0))],
        );
        assert!(r.verdict.is_safe(), "{r:?}");
    }

    #[test]
    fn atomic_plain_mix_is_a_race() {
        let r = races(
            "__global__ void k(int* out) {
                atomicAdd(&out[0], 1);
                if (threadIdx.x == 0) out[0] = 7;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0))],
        );
        assert!(r.verdict >= PropertyVerdict::May, "{r:?}");
    }

    #[test]
    fn indirect_write_is_unknown() {
        let r = races(
            "__global__ void k(int* out, int* idx) {
                out[idx[threadIdx.x]] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::Buffer(BufferId(1))],
        );
        assert_eq!(r.verdict, PropertyVerdict::Unknown, "{r:?}");
    }

    #[test]
    fn single_block_grid_has_no_interblock_race() {
        let r = races(
            "__global__ void k(int* out) {
                out[threadIdx.x] = 1;
            }",
            LaunchConfig::new(1u32, 32u32),
            vec![Arg::Buffer(BufferId(0))],
        );
        assert!(r.verdict.is_safe(), "{r:?}");
    }

    #[test]
    fn loop_strided_writes_safe() {
        let r = races(
            "__global__ void k(int* out, int k) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < k; i++)
                    out[id * k + i] = i;
            }",
            LaunchConfig::new(4u32, 16u32),
            vec![Arg::Buffer(BufferId(0)), Arg::int(3)],
        );
        assert!(r.verdict.is_safe(), "{r:?}");
    }

    #[test]
    fn loop_overlap_demoted_to_may() {
        // Each block writes [0, 16k): overlapping, but loop-carried
        // witnesses are not MUST-eligible.
        let r = races(
            "__global__ void k(int* out, int k) {
                for (int i = 0; i < k; i++)
                    out[threadIdx.x * k + i] = i;
            }",
            LaunchConfig::new(4u32, 16u32),
            vec![Arg::Buffer(BufferId(0)), Arg::int(3)],
        );
        assert_eq!(r.verdict, PropertyVerdict::May, "{r:?}");
    }

    #[test]
    fn definite_oob_store_is_must() {
        let r = check(
            "__global__ void k(int* out) {
                out[threadIdx.x + blockIdx.x * blockDim.x] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(100)], // 128 threads write [0,127]
        );
        assert_eq!(r.bounds, PropertyVerdict::Must, "{r:?}");
        assert!(r.has_must());
    }

    #[test]
    fn guarded_oob_is_may() {
        let r = check(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::int(1 << 20)],
            vec![Some(100), None],
        );
        assert_eq!(r.bounds, PropertyVerdict::May, "{r:?}");
    }

    #[test]
    fn nonaffine_index_discharged_by_range_analysis() {
        // `id % 64` is non-affine, so the affine rule alone says Unknown;
        // the bytecode range analysis proves [0, 63] and discharges.
        let r = check(
            "__global__ void k(int* out) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[id % 64] = id;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(64)],
        );
        assert!(r.bounds.is_safe(), "{r:?}");
    }

    #[test]
    fn guard_through_variable_discharged_by_range_analysis() {
        // The guard is a *variable* holding a comparison, which the affine
        // narrowing cannot see through (it would report MAY); the bytecode
        // analysis tracks the predicate provenance and certifies.
        let r = check(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                int ok = id < n;
                if (ok) out[id] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::int(100)],
            vec![Some(100), None],
        );
        assert!(r.bounds.is_safe(), "{r:?}");
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.severity == Severity::Info && d.message.contains("discharged")),
            "{r:?}"
        );
    }

    #[test]
    fn tail_guard_narrows_bounds_to_safe() {
        let r = check(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::int(100)],
            vec![Some(100), None],
        );
        assert!(r.bounds.is_safe(), "{r:?}");
    }

    #[test]
    fn eq_guard_narrows_bounds() {
        // Only thread 0 stores out[blockIdx.x + threadIdx.x]; the equality
        // substitutes threadIdx.x = 0, so extent = grid size suffices.
        let r = check(
            "__global__ void k(float* out) {
                float acc = 1.0f;
                if (threadIdx.x == 0)
                    out[blockIdx.x + threadIdx.x] = acc;
            }",
            LaunchConfig::new(8u32, 64u32),
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(8)],
        );
        assert!(r.bounds.is_safe(), "{r:?}");
    }

    #[test]
    fn shared_array_bounds_checked() {
        let r = check(
            "__global__ void k(float* out) {
                __shared__ float tile[16];
                tile[threadIdx.x] = 1.0f;
                out[blockIdx.x * blockDim.x + threadIdx.x] = tile[0];
            }",
            LaunchConfig::new(2u32, 32u32),
            vec![Arg::Buffer(BufferId(0))],
            vec![Some(64)],
        );
        // 32 threads into a 16-wide shared tile: definite OOB.
        assert_eq!(r.bounds, PropertyVerdict::Must, "{r:?}");
    }

    #[test]
    fn negative_index_must_even_with_assumed_extents() {
        let (k, map) = parse_kernel_with_map(
            "__global__ void k(int* out) {
                out[threadIdx.x - 9999999] = 1;
            }",
        )
        .unwrap();
        let (launch, args, extents) = canonical_check_input(&k);
        let r = verify_launch(&k, launch, &args, &extents, true, Some(&map));
        assert_eq!(r.bounds, PropertyVerdict::Must, "{r:?}");
    }

    #[test]
    fn assumed_extents_cap_overrun_at_may() {
        let (k, _) = parse_kernel_with_map(
            "__global__ void k(int* out) {
                out[blockIdx.x * blockDim.x + threadIdx.x + 100] = 1;
            }",
        )
        .unwrap();
        let (launch, args, extents) = canonical_check_input(&k);
        let r = verify_launch(&k, launch, &args, &extents, true, None);
        assert_eq!(r.bounds, PropertyVerdict::May, "{r:?}");
        assert!(r.clean());
    }

    #[test]
    fn barrier_under_variant_if_is_must() {
        // Builder-style construction (the parser/validator would reject it).
        use cucc_ir::{Expr, Stmt};
        let k = parse_kernel(
            "__global__ void k(float* out) {
                __syncthreads();
                out[blockIdx.x * blockDim.x + threadIdx.x] = 1.0f;
            }",
        )
        .unwrap();
        let mut bad = k.clone();
        bad.body = vec![Stmt::if_then(
            Expr::ThreadIdx(Axis::X).lt(Expr::int(5)),
            vec![Stmt::SyncThreads],
        )];
        let (v, d) = analyze_barriers(&bad, None);
        assert_eq!(v, PropertyVerdict::Must);
        assert_eq!(d[0].rule, Rule::Barrier);
        let (v2, _) = analyze_barriers(&k, None);
        assert!(v2.is_safe());
    }

    #[test]
    fn race_must_demoted_when_bounds_may_abort() {
        // The racing store sits next to a definite OOB store: execution
        // aborts, so the race claim drops to MAY.
        let r = check(
            "__global__ void k(int* out, int* big) {
                big[threadIdx.x + 1000000] = 1;
                out[threadIdx.x] = 1;
            }",
            LaunchConfig::new(4u32, 32u32),
            vec![Arg::Buffer(BufferId(0)), Arg::Buffer(BufferId(1))],
            vec![Some(32), Some(64)],
        );
        assert_eq!(r.bounds, PropertyVerdict::Must);
        assert_eq!(r.race, PropertyVerdict::May, "{r:?}");
    }

    #[test]
    fn two_d_tiles_are_safe() {
        let r = races(
            "__global__ void k(float* out, int width) {
                int x = blockIdx.x * blockDim.x + threadIdx.x;
                int y = blockIdx.y * blockDim.y + threadIdx.y;
                out[y * width + x] = 1.0f;
            }",
            LaunchConfig::new((8u32, 8u32), (16u32, 16u32)),
            vec![Arg::Buffer(BufferId(0)), Arg::int(128)],
        );
        assert!(r.verdict.is_safe(), "{r:?}");
    }

    #[test]
    fn renderings_are_stable() {
        let d = Diagnostic {
            rule: Rule::Bounds,
            severity: Severity::May,
            message: "x".into(),
            site: Some(SiteRef {
                buffer: "out".into(),
                ordinal: 1,
                line: Some(3),
            }),
        };
        assert_eq!(d.to_string(), "MAY[bounds] x (write #1 to `out`, line 3)");
        assert_eq!(
            reason_diagnostics(&[Reason::AtomicWrite])[0].rule,
            Rule::Distribute
        );
        let c = cause_diagnostic(&ReplicationCause::NoFullBlocks);
        assert_eq!(c.severity, Severity::Info);
    }

    #[test]
    fn canonical_input_shapes() {
        let k = parse_kernel(
            "__global__ void k(float* x, int n, float a) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) x[id] = a;
            }",
        )
        .unwrap();
        let (launch, args, extents) = canonical_check_input(&k);
        assert_eq!(launch.num_blocks(), 64);
        assert_eq!(args.len(), 3);
        assert_eq!(extents, vec![Some(16384), None, None]);
        assert!(matches!(args[1], Arg::Scalar(cucc_ir::Value::I64(16384))));
        // And the canonical report for this kernel is fully clean.
        let r = verify_launch(&k, launch, &args, &extents, true, None);
        assert!(r.race.is_safe() && r.bounds.is_safe() && r.barrier.is_safe());
    }

    #[test]
    fn report_render_lists_rules() {
        let k = parse_kernel(
            "__global__ void k(int* out) {
                out[blockIdx.x * blockDim.x + threadIdx.x] = 1;
            }",
        )
        .unwrap();
        let (launch, args, extents) = canonical_check_input(&k);
        let r = verify_launch(&k, launch, &args, &extents, true, None);
        let s = r.render();
        assert!(s.contains("race    : safe"), "{s}");
        assert!(s.contains("all checks pass"), "{s}");
        let _ = MemPool::new(); // keep the dev-dependency honest
    }
}
