//! EASY-backfill scheduling — an extension beyond the paper's FIFO queues.
//!
//! Production Slurm typically runs conservative or EASY backfill: small jobs
//! may jump the queue if they cannot delay the queue head's reservation.
//! This module implements EASY backfill (with known runtimes as the
//! walltime estimate) so the Figure-1 experiment can also quantify how much
//! of the GPU-partition waiting is fundamental saturation rather than
//! head-of-line blocking.
//!
//! The resource mechanics (running-job heap, head reservation, shadow
//! bookkeeping) live in [`crate::placement::PlacementEngine`] so the CuCC
//! serving layer can reuse them incrementally; this module keeps the
//! trace-replay event loop and the FIFO queue policy.

use crate::placement::PlacementEngine;
use crate::sim::{Job, JobOutcome, Partition};

/// Simulate EASY backfill: the queue head gets a reservation at the
/// earliest time enough nodes free up; any later job may start immediately
/// if it fits the current free nodes **and** finishes before (or does not
/// overlap) the head's reservation needs.
///
/// `jobs` must be sorted by arrival. Returns outcomes in submission order.
pub fn simulate_backfill(partition: &Partition, jobs: &[Job]) -> Vec<JobOutcome> {
    for j in jobs {
        assert!(
            j.nodes <= partition.nodes,
            "job requests {} nodes > partition {}",
            j.nodes,
            partition.nodes
        );
    }
    let n = jobs.len();
    let mut outcome: Vec<Option<JobOutcome>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new(); // waiting job indices, FIFO order
    let mut engine = PlacementEngine::new(partition.nodes);
    let mut next_arrival = 0usize;
    let mut clock = 0.0f64;

    let start_job =
        |idx: usize, clock: f64, outcome: &mut Vec<Option<JobOutcome>>, jobs: &[Job]| {
            let j = jobs[idx];
            outcome[idx] = Some(JobOutcome {
                start: clock,
                wait: clock - j.arrival,
                end: clock + j.runtime,
            });
        };

    while next_arrival < n || !queue.is_empty() || engine.running_jobs() > 0 {
        // Advance the clock to the next event (arrival or completion).
        let t_arr = jobs.get(next_arrival).map(|j| j.arrival);
        let t_end = engine.next_completion();
        clock = match (t_arr, t_end) {
            (Some(a), Some(e)) => a.min(e).max(clock),
            (Some(a), None) => a.max(clock),
            (None, Some(e)) => e.max(clock),
            (None, None) => break,
        };
        // Process completions at `clock`.
        engine.release_until(clock);
        // Process arrivals at `clock`.
        while next_arrival < n && jobs[next_arrival].arrival <= clock {
            queue.push(next_arrival);
            next_arrival += 1;
        }
        // Schedule: head starts if it fits.
        while let Some(&head) = queue.first() {
            if engine.try_start(clock, jobs[head].nodes, jobs[head].runtime) {
                queue.remove(0);
                start_job(head, clock, &mut outcome, jobs);
            } else {
                break;
            }
        }
        // Backfill behind a blocked head: the engine computes the head's
        // reservation and admits later queued jobs only when they cannot
        // delay it.
        if let Some(&head) = queue.first() {
            let mut res = engine.reserve(clock, jobs[head].nodes);
            let mut qi = 1;
            while qi < queue.len() {
                let idx = queue[qi];
                let j = jobs[idx];
                if engine.try_backfill(clock, j.nodes, j.runtime, &mut res) {
                    queue.remove(qi);
                    start_job(idx, clock, &mut outcome, jobs);
                } else {
                    qi += 1;
                }
            }
        }
        // If nothing is running and the queue head still doesn't fit, we
        // would loop forever — impossible since head.nodes ≤ partition.
        if engine.running_jobs() == 0 && !queue.is_empty() {
            let head = queue.remove(0);
            let started = engine.try_start(clock, jobs[head].nodes, jobs[head].runtime);
            debug_assert!(started, "an idle partition fits any legal job");
            start_job(head, clock, &mut outcome, jobs);
        }
    }
    outcome
        .into_iter()
        .map(|o| o.expect("all jobs scheduled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{mean_wait, simulate_fifo, PartitionKind};

    fn part(nodes: u32) -> Partition {
        Partition {
            name: "p".into(),
            nodes,
            kind: PartitionKind::Cpu,
        }
    }

    #[test]
    fn no_contention_equals_fifo() {
        let jobs = vec![
            Job {
                arrival: 0.0,
                nodes: 1,
                runtime: 5.0,
            },
            Job {
                arrival: 1.0,
                nodes: 2,
                runtime: 5.0,
            },
        ];
        let bf = simulate_backfill(&part(4), &jobs);
        let ff = simulate_fifo(&part(4), &jobs);
        assert_eq!(bf, ff);
    }

    #[test]
    fn small_job_backfills_behind_blocked_head() {
        let jobs = vec![
            Job {
                arrival: 0.0,
                nodes: 2,
                runtime: 10.0,
            }, // running
            Job {
                arrival: 1.0,
                nodes: 2,
                runtime: 10.0,
            }, // head, blocked
            Job {
                arrival: 2.0,
                nodes: 1,
                runtime: 3.0,
            }, // fits now, ends before 10
        ];
        let bf = simulate_backfill(&part(3), &jobs);
        // FIFO: job 2 waits behind the head until t=10.
        let ff = simulate_fifo(&part(3), &jobs);
        assert_eq!(bf[2].start, 2.0, "backfilled immediately");
        assert!(ff[2].start >= 10.0, "FIFO blocks it");
        // The head is NOT delayed by the backfill.
        assert_eq!(bf[1].start, ff[1].start);
    }

    #[test]
    fn backfill_never_delays_the_head() {
        // A long small job must NOT backfill if it would overlap the head's
        // reservation and consume its nodes.
        let jobs = vec![
            Job {
                arrival: 0.0,
                nodes: 2,
                runtime: 10.0,
            },
            Job {
                arrival: 1.0,
                nodes: 3,
                runtime: 5.0,
            }, // head needs all 3
            Job {
                arrival: 2.0,
                nodes: 1,
                runtime: 100.0,
            }, // would delay head
        ];
        let bf = simulate_backfill(&part(3), &jobs);
        assert_eq!(bf[1].start, 10.0, "head starts exactly at its reservation");
        assert!(bf[2].start >= 10.0, "long job may not jump");
    }

    #[test]
    fn backfill_reduces_mean_wait_under_load() {
        // A synthetic saturated mix: backfill should do no worse than FIFO.
        let trace = crate::trace::synthetic_week(&crate::trace::TraceParams::gpu_partition(8, 9));
        let p = part(8);
        let ff = mean_wait(&simulate_fifo(&p, &trace));
        let bf = mean_wait(&simulate_backfill(&p, &trace));
        assert!(
            bf <= ff * 1.001,
            "backfill should not increase mean wait: {bf} vs {ff}"
        );
    }

    #[test]
    fn all_jobs_eventually_run() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| Job {
                arrival: i as f64,
                nodes: 1 + (i % 4) as u32,
                runtime: 5.0 + (i % 7) as f64,
            })
            .collect();
        let out = simulate_backfill(&part(4), &jobs);
        assert_eq!(out.len(), 50);
        for (j, o) in jobs.iter().zip(&out) {
            assert!(o.start >= j.arrival);
            assert_eq!(o.end, o.start + j.runtime);
        }
    }
}
