//! EASY-backfill **placement as a library** — the incremental core of
//! [`crate::backfill::simulate_backfill`], factored out so other layers
//! (the CuCC serving front-end) can drive placement decision-by-decision
//! on their own clock instead of replaying a whole pre-recorded trace.
//!
//! The engine owns only the *resource* side of scheduling: how many nodes
//! exist, which are busy until when, and the EASY reservation/backfill
//! admission rules. Queue policy (FIFO order, fairness, admission control)
//! stays with the caller, which is exactly the split the serving layer
//! needs — it brings its own per-tenant queues and deficit counters and
//! asks the engine three questions: *can this start now?* (`try_start`),
//! *when could the blocked head start?* ([`PlacementEngine::reserve`]) and
//! *may this jump the queue without delaying the head?*
//! ([`PlacementEngine::try_backfill`]).

use std::collections::BinaryHeap;

/// One running placement: completion event in a min-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Running {
    end: f64,
    nodes: u32,
}

impl Eq for Running {}
impl Ord for Running {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest end first.
        other.end.partial_cmp(&self.end).unwrap()
    }
}
impl PartialOrd for Running {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The queue head's EASY reservation: the earliest time its node request
/// can be satisfied, plus the *shadow* — nodes left over at that time
/// that backfilled jobs may hold past the reservation without delaying it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reservation {
    /// Earliest time the reserved request fits (assuming running jobs
    /// release in end order and nothing else starts).
    pub time: f64,
    /// Free nodes remaining at [`Reservation::time`] once the reserved
    /// request is placed. A backfill that outlives the reservation must
    /// fit here, and consumes it.
    pub shadow_free: u32,
}

/// Incremental EASY-backfill node allocator.
///
/// Not tied to any clock: the caller advances time explicitly with
/// [`PlacementEngine::release_until`] and places work at whatever `now`
/// its own event loop has reached. Node counts may change between events
/// ([`PlacementEngine::set_total`]) for elastic clusters.
#[derive(Debug, Clone, Default)]
pub struct PlacementEngine {
    total: u32,
    free: u32,
    running: BinaryHeap<Running>,
}

impl PlacementEngine {
    /// An engine over `total` initially idle nodes.
    pub fn new(total: u32) -> PlacementEngine {
        PlacementEngine {
            total,
            free: total,
            running: BinaryHeap::new(),
        }
    }

    /// Node capacity.
    pub fn total_nodes(&self) -> u32 {
        self.total
    }

    /// Nodes currently unallocated.
    pub fn free_nodes(&self) -> u32 {
        self.free
    }

    /// Placements currently holding nodes.
    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    /// Completion time of the earliest-ending placement, if any.
    pub fn next_completion(&self) -> Option<f64> {
        self.running.peek().map(|r| r.end)
    }

    /// Release every placement that completes at or before `t`. After an
    /// elastic shrink, released nodes re-enter the free pool only up to
    /// the new capacity.
    pub fn release_until(&mut self, t: f64) {
        while self.running.peek().map(|r| r.end <= t).unwrap_or(false) {
            let freed = self.running.pop().unwrap().nodes;
            self.free = (self.free + freed).min(self.total);
        }
    }

    /// Elastic resize: change the node capacity (a membership epoch —
    /// node death, join, growth). Nodes already held by running
    /// placements stay held; a shrink below the busy count leaves zero
    /// free nodes until placements drain.
    pub fn set_total(&mut self, total: u32) {
        let busy = self.total - self.free;
        self.total = total;
        self.free = total.saturating_sub(busy);
    }

    /// Allocate `nodes` at `now` for `runtime` seconds if they are free.
    /// Returns whether the placement was made.
    pub fn try_start(&mut self, now: f64, nodes: u32, runtime: f64) -> bool {
        if nodes > self.free {
            return false;
        }
        self.free -= nodes;
        self.running.push(Running {
            end: now + runtime,
            nodes,
        });
        true
    }

    /// Compute the blocked queue head's EASY reservation at `now`: walk
    /// running placements in completion order until `nodes` would be free,
    /// assuming nothing else starts in between.
    pub fn reserve(&self, now: f64, nodes: u32) -> Reservation {
        let mut avail = self.free;
        let mut sim: Vec<Running> = self.running.clone().into_sorted_vec();
        // into_sorted_vec gives descending by Ord (reversed) → earliest
        // end LAST; iterate reversed.
        sim.reverse();
        let mut time = now;
        for r in &sim {
            if avail >= nodes {
                break;
            }
            avail += r.nodes;
            time = r.end;
        }
        let shadow_free = avail.saturating_sub(nodes);
        Reservation { time, shadow_free }
    }

    /// EASY backfill admission: start a `nodes`×`runtime` job at `now` iff
    /// it fits the free nodes **and** cannot delay the head's reservation
    /// — either it finishes before the reservation, or it fits the
    /// reservation's shadow (which it then consumes). Returns whether the
    /// job was started.
    pub fn try_backfill(
        &mut self,
        now: f64,
        nodes: u32,
        runtime: f64,
        res: &mut Reservation,
    ) -> bool {
        let fits_now = nodes <= self.free;
        let finishes_before = now + runtime <= res.time;
        let fits_shadow = nodes <= res.shadow_free;
        if !(fits_now && (finishes_before || fits_shadow)) {
            return false;
        }
        let started = self.try_start(now, nodes, runtime);
        debug_assert!(started);
        if !finishes_before {
            // The job runs past the reservation: it consumes part of the
            // head's post-start slack, so shrink the shadow to keep later
            // backfills from delaying the head.
            res.shadow_free -= nodes;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_release_cycle() {
        let mut e = PlacementEngine::new(4);
        assert_eq!(e.free_nodes(), 4);
        assert!(e.try_start(0.0, 3, 5.0));
        assert!(!e.try_start(0.0, 2, 1.0), "only 1 node free");
        assert!(e.try_start(0.0, 1, 2.0));
        assert_eq!(e.free_nodes(), 0);
        assert_eq!(e.next_completion(), Some(2.0));
        e.release_until(2.0);
        assert_eq!(e.free_nodes(), 1);
        e.release_until(10.0);
        assert_eq!(e.free_nodes(), 4);
        assert_eq!(e.running_jobs(), 0);
        assert_eq!(e.next_completion(), None);
    }

    #[test]
    fn reservation_walks_completions_in_end_order() {
        let mut e = PlacementEngine::new(4);
        e.try_start(0.0, 2, 10.0); // frees at 10
        e.try_start(0.0, 2, 4.0); // frees at 4
                                  // A 3-node head fits once the t=4 release tops free up to... 0+2=2
                                  // at t=4, then +2 at t=10 → 4 ≥ 3 at t=10, shadow 1.
        let res = e.reserve(1.0, 3);
        assert_eq!(res.time, 10.0);
        assert_eq!(res.shadow_free, 1);
        // A 1-node head fits at the first release.
        let res = e.reserve(1.0, 1);
        assert_eq!(res.time, 4.0);
        assert_eq!(res.shadow_free, 1);
        // With free nodes available the reservation is immediate.
        e.release_until(4.0);
        let res = e.reserve(5.0, 2);
        assert_eq!(res.time, 5.0);
        assert_eq!(res.shadow_free, 0);
    }

    #[test]
    fn backfill_respects_the_reservation() {
        let mut e = PlacementEngine::new(3);
        e.try_start(0.0, 2, 10.0);
        // Head wants all 3 nodes → reservation at t=10, no shadow.
        let mut res = e.reserve(1.0, 3);
        assert_eq!(res.time, 10.0);
        assert_eq!(res.shadow_free, 0);
        // A short 1-node job finishes before t=10: admitted.
        assert!(e.try_backfill(1.0, 1, 3.0, &mut res));
        // A long 1-node job would overlap the reservation with no shadow:
        // denied (it would delay the head).
        assert!(!e.try_backfill(1.0, 1, 100.0, &mut res));
    }

    #[test]
    fn overlapping_backfill_consumes_the_shadow() {
        let mut e = PlacementEngine::new(4);
        e.try_start(0.0, 2, 10.0);
        // Head wants 3: at t=10 all 4 free → shadow 1.
        let mut res = e.reserve(1.0, 3);
        assert_eq!((res.time, res.shadow_free), (10.0, 1));
        // A long 1-node job fits the shadow and eats it.
        assert!(e.try_backfill(1.0, 1, 100.0, &mut res));
        assert_eq!(res.shadow_free, 0);
        // The next long job has no shadow left.
        assert!(!e.try_backfill(1.0, 1, 100.0, &mut res));
        // But a short one is still fine.
        assert!(e.try_backfill(1.0, 1, 2.0, &mut res));
    }

    #[test]
    fn elastic_resize_tracks_busy_nodes() {
        let mut e = PlacementEngine::new(4);
        e.try_start(0.0, 3, 5.0);
        // Grow: new nodes are immediately free.
        e.set_total(6);
        assert_eq!(e.free_nodes(), 3);
        // Shrink below the busy count: nothing free until jobs drain.
        e.set_total(2);
        assert_eq!(e.free_nodes(), 0);
        e.release_until(5.0);
        assert_eq!(e.free_nodes(), 2);
        assert_eq!(e.total_nodes(), 2);
    }
}
