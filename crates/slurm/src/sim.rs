//! Discrete-event FIFO partition scheduler (a minimal Slurm).

use serde::{Deserialize, Serialize};

/// Whether a partition serves CPU or GPU nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionKind {
    /// CPU partition.
    Cpu,
    /// GPU partition.
    Gpu,
}

/// One scheduling partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Partition name (e.g. `cpu-small`).
    pub name: String,
    /// Nodes in the partition.
    pub nodes: u32,
    /// CPU or GPU.
    pub kind: PartitionKind,
}

/// A job submitted to one partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Submission time, seconds.
    pub arrival: f64,
    /// Nodes requested.
    pub nodes: u32,
    /// Execution time once started, seconds.
    pub runtime: f64,
}

/// Scheduling outcome of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// When the job started.
    pub start: f64,
    /// Waiting time (`start − arrival`).
    pub wait: f64,
    /// Completion time.
    pub end: f64,
}

/// Run strict-FIFO scheduling of `jobs` (must be sorted by arrival) on a
/// partition. No backfill: the queue head blocks smaller jobs behind it,
/// as in the paper's wait-time measurements.
///
/// # Panics
/// Panics if a job requests more nodes than the partition has.
pub fn simulate_fifo(partition: &Partition, jobs: &[Job]) -> Vec<JobOutcome> {
    for w in jobs.windows(2) {
        debug_assert!(w[0].arrival <= w[1].arrival, "jobs must be arrival-sorted");
    }
    for j in jobs {
        assert!(
            j.nodes <= partition.nodes,
            "job requests {} nodes > partition {}",
            j.nodes,
            partition.nodes
        );
    }
    // running: (end_time, nodes) — small enough to scan.
    let mut running: Vec<(f64, u32)> = Vec::new();
    let mut free = partition.nodes;
    let mut out = Vec::with_capacity(jobs.len());
    let mut clock: f64;
    // Strict FIFO: jobs *start* in submission order, so each job's start is
    // bounded below by its predecessor's start (head-of-line blocking).
    let mut prev_start = 0.0f64;
    for job in jobs {
        clock = job.arrival.max(prev_start);
        // Release everything that finished before this arrival.
        running.retain(|&(end, n)| {
            if end <= clock {
                free += n;
                false
            } else {
                true
            }
        });
        // FIFO: this job must start before any later job, so we only need
        // to find when enough nodes free up for *it* (all earlier jobs are
        // already placed — strict FIFO with arrival-ordered processing).
        while free < job.nodes {
            // Advance to the next completion.
            let (next_end_idx, &(next_end, _)) = running
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                .expect("waiting for nodes but nothing is running");
            clock = clock.max(next_end);
            free += running[next_end_idx].1;
            running.swap_remove(next_end_idx);
        }
        free -= job.nodes;
        prev_start = clock;
        running.push((clock + job.runtime, job.nodes));
        out.push(JobOutcome {
            start: clock,
            wait: clock - job.arrival,
            end: clock + job.runtime,
        });
    }
    out
}

/// Mean of the waiting times.
pub fn mean_wait(outcomes: &[JobOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| o.wait).sum::<f64>() / outcomes.len() as f64
}

/// Median of the waiting times.
pub fn median_wait(outcomes: &[JobOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let mut waits: Vec<f64> = outcomes.iter().map(|o| o.wait).collect();
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    waits[waits.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(nodes: u32) -> Partition {
        Partition {
            name: "test".into(),
            nodes,
            kind: PartitionKind::Cpu,
        }
    }

    #[test]
    fn empty_partition_runs_immediately() {
        let jobs = vec![
            Job {
                arrival: 0.0,
                nodes: 1,
                runtime: 10.0,
            },
            Job {
                arrival: 1.0,
                nodes: 1,
                runtime: 10.0,
            },
        ];
        let out = simulate_fifo(&part(4), &jobs);
        assert_eq!(out[0].wait, 0.0);
        assert_eq!(out[1].wait, 0.0);
    }

    #[test]
    fn saturation_queues_jobs() {
        // One node, back-to-back jobs.
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job {
                arrival: i as f64,
                nodes: 1,
                runtime: 10.0,
            })
            .collect();
        let out = simulate_fifo(&part(1), &jobs);
        assert_eq!(out[0].wait, 0.0);
        assert_eq!(out[1].start, 10.0);
        assert_eq!(out[2].start, 20.0);
        assert_eq!(out[3].wait, 30.0 - 3.0);
    }

    #[test]
    fn multi_node_jobs_block_fifo() {
        // Big job at the head blocks a small one (no backfill).
        let jobs = vec![
            Job {
                arrival: 0.0,
                nodes: 2,
                runtime: 10.0,
            },
            Job {
                arrival: 1.0,
                nodes: 2,
                runtime: 5.0,
            }, // needs both nodes
            Job {
                arrival: 2.0,
                nodes: 1,
                runtime: 1.0,
            }, // queued behind
        ];
        let out = simulate_fifo(&part(2), &jobs);
        assert_eq!(out[1].start, 10.0);
        // FIFO: the 1-node job starts only after the 2-node job got placed.
        assert!(out[2].start >= 10.0);
    }

    #[test]
    fn release_makes_room() {
        let jobs = vec![
            Job {
                arrival: 0.0,
                nodes: 3,
                runtime: 5.0,
            },
            Job {
                arrival: 6.0,
                nodes: 4,
                runtime: 5.0,
            },
        ];
        let out = simulate_fifo(&part(4), &jobs);
        assert_eq!(out[1].wait, 0.0, "nodes released before arrival");
    }

    #[test]
    fn stats_helpers() {
        let out = vec![
            JobOutcome {
                start: 0.0,
                wait: 0.0,
                end: 1.0,
            },
            JobOutcome {
                start: 0.0,
                wait: 10.0,
                end: 1.0,
            },
            JobOutcome {
                start: 0.0,
                wait: 2.0,
                end: 1.0,
            },
        ];
        assert!((mean_wait(&out) - 4.0).abs() < 1e-12);
        assert_eq!(median_wait(&out), 2.0);
        assert_eq!(mean_wait(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "requests")]
    fn oversized_job_panics() {
        let jobs = vec![Job {
            arrival: 0.0,
            nodes: 9,
            runtime: 1.0,
        }];
        simulate_fifo(&part(4), &jobs);
    }
}
