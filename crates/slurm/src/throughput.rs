//! Cluster-wide batch throughput (the paper's §7.4.2, Figure 12).
//!
//! Datacenters hold far more CPU nodes than GPUs (Lonestar6: 560 CPU nodes
//! vs 16 GPU nodes). For batch workloads, GPU-to-CPU migration lets the CPU
//! fleet process jobs *in addition to* the GPUs: throughput is measured in
//! kernels completed per second across the whole machine.

use serde::{Deserialize, Serialize};

/// A datacenter's node inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Datacenter {
    /// CPU nodes available for migrated execution.
    pub cpu_nodes: u32,
    /// GPU nodes.
    pub gpu_nodes: u32,
    /// GPUs per GPU node.
    pub gpus_per_node: u32,
}

impl Datacenter {
    /// TACC Lonestar6: 560 CPU nodes (dual EPYC 7763 — Thread-Focused
    /// class), 16 GPU nodes with 3× A100 each.
    pub fn lonestar6() -> Datacenter {
        Datacenter {
            cpu_nodes: 560,
            gpu_nodes: 16,
            gpus_per_node: 3,
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> u32 {
        self.gpu_nodes * self.gpus_per_node
    }

    /// Batch throughput (kernels/second) using GPUs only.
    pub fn gpu_throughput(&self, gpu_kernel_time: f64) -> f64 {
        self.total_gpus() as f64 / gpu_kernel_time
    }

    /// Batch throughput of the CPU fleet running the migrated program on
    /// independent sub-clusters of `cluster_size` nodes, each completing a
    /// kernel in `cpu_kernel_time`.
    pub fn cpu_throughput(&self, cluster_size: u32, cpu_kernel_time: f64) -> f64 {
        assert!(cluster_size >= 1);
        let clusters = self.cpu_nodes / cluster_size;
        clusters as f64 / cpu_kernel_time
    }

    /// Combined GPUs + CPUs throughput.
    pub fn combined_throughput(
        &self,
        gpu_kernel_time: f64,
        cluster_size: u32,
        cpu_kernel_time: f64,
    ) -> f64 {
        self.gpu_throughput(gpu_kernel_time) + self.cpu_throughput(cluster_size, cpu_kernel_time)
    }

    /// Figure 12's headline ratio: combined over GPU-only.
    pub fn improvement(
        &self,
        gpu_kernel_time: f64,
        cluster_size: u32,
        cpu_kernel_time: f64,
    ) -> f64 {
        self.combined_throughput(gpu_kernel_time, cluster_size, cpu_kernel_time)
            / self.gpu_throughput(gpu_kernel_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lonestar6_inventory() {
        let dc = Datacenter::lonestar6();
        assert_eq!(dc.cpu_nodes, 560);
        assert_eq!(dc.total_gpus(), 48);
    }

    #[test]
    fn cpu_fleet_multiplies_throughput() {
        let dc = Datacenter::lonestar6();
        // A kernel taking 1 s on a GPU and 2 s on a 4-node CPU cluster:
        // GPUs: 48/s; CPUs: 140 clusters × 0.5/s = 70/s → 2.46× combined.
        let imp = dc.improvement(1.0, 4, 2.0);
        assert!((imp - (48.0 + 70.0) / 48.0).abs() < 1e-9);
        assert!(imp > 2.0);
    }

    #[test]
    fn slower_cpu_still_adds() {
        let dc = Datacenter::lonestar6();
        let imp = dc.improvement(1.0, 8, 10.0);
        assert!(imp > 1.0);
    }

    #[test]
    fn cluster_size_divides_fleet() {
        let dc = Datacenter::lonestar6();
        // 560 / 32 = 17 clusters (integer division).
        assert_eq!(dc.cpu_throughput(32, 1.0), 17.0);
        assert_eq!(dc.cpu_throughput(1, 1.0), 560.0);
    }
}
