//! # cucc-slurm — datacenter queueing and throughput models
//!
//! Two pieces of the paper's evaluation happen at datacenter scale rather
//! than kernel scale:
//!
//! * **Figure 1** (motivation): job *waiting times* on CPU vs GPU partitions
//!   of a Slurm-managed cluster, showing GPU partitions saturated while
//!   CPUs idle. [`sim`] is a discrete-event FIFO scheduler and [`trace`]
//!   generates synthetic one-week arrival traces shaped like the
//!   observation (GPU partitions near saturation, CPU partitions at
//!   moderate load).
//! * **Figure 12** (cluster-wide throughput): how much batch throughput the
//!   idle CPU fleet of a Lonestar6-shaped datacenter adds on top of its
//!   GPUs. [`throughput`] implements that arithmetic.

pub mod backfill;
pub mod placement;
pub mod sim;
pub mod throughput;
pub mod trace;

pub use backfill::simulate_backfill;
pub use placement::{PlacementEngine, Reservation};
pub use sim::{simulate_fifo, Job, JobOutcome, Partition, PartitionKind};
pub use throughput::Datacenter;
pub use trace::{synthetic_week, TraceParams};
