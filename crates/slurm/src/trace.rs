//! Synthetic job traces shaped like the paper's PACE observation.
//!
//! The paper monitors four CPU and four GPU partitions for one week (March
//! 2–8, 2025) and finds GPU partitions saturated (waits of hours) while CPU
//! partitions have spare capacity (waits of minutes). We reproduce the
//! *mechanism*: Poisson arrivals with per-partition utilization targets,
//! log-normal service times — at utilization ≳ 0.9 a FIFO queue's waits
//! explode; at ≲ 0.5 they stay near zero.

use crate::sim::Job;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic one-week trace for one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Nodes in the partition (determines capacity).
    pub nodes: u32,
    /// Target utilization (offered load / capacity).
    pub utilization: f64,
    /// Mean job runtime, seconds.
    pub mean_runtime: f64,
    /// Largest node request as a fraction of the partition.
    pub max_request_frac: f64,
    /// RNG seed (deterministic traces).
    pub seed: u64,
}

impl TraceParams {
    /// A typical under-used CPU partition.
    pub fn cpu_partition(nodes: u32, seed: u64) -> TraceParams {
        TraceParams {
            nodes,
            utilization: 0.45,
            mean_runtime: 2.0 * 3600.0,
            max_request_frac: 0.25,
            seed,
        }
    }

    /// A saturated GPU partition.
    pub fn gpu_partition(nodes: u32, seed: u64) -> TraceParams {
        TraceParams {
            nodes,
            utilization: 0.97,
            mean_runtime: 4.0 * 3600.0,
            max_request_frac: 0.5,
            seed,
        }
    }
}

/// One simulated week.
pub const WEEK_SECONDS: f64 = 7.0 * 24.0 * 3600.0;

/// Generate one week of Poisson arrivals with log-normal runtimes hitting
/// the requested utilization.
pub fn synthetic_week(params: &TraceParams) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let max_req = ((params.nodes as f64 * params.max_request_frac).floor() as u32).max(1);
    // Mean nodes per job under uniform [1, max_req].
    let mean_nodes = (1.0 + max_req as f64) / 2.0;
    // offered load = λ · mean_runtime · mean_nodes = utilization · nodes
    let lambda = params.utilization * params.nodes as f64 / (params.mean_runtime * mean_nodes);
    let mut jobs = Vec::new();
    let mut t = 0.0;
    loop {
        // Exponential inter-arrival.
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -u.ln() / lambda;
        if t > WEEK_SECONDS {
            break;
        }
        // Log-normal-ish runtime: median = mean_runtime / e^{σ²/2}.
        let sigma = 1.0f64;
        let z: f64 = {
            // Box–Muller.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            (-2.0 * u1.ln()).sqrt() * u2.cos()
        };
        let runtime = params.mean_runtime * (sigma * z - sigma * sigma / 2.0).exp();
        let nodes = rng.gen_range(1..=max_req);
        jobs.push(Job {
            arrival: t,
            nodes,
            runtime: runtime.clamp(60.0, 48.0 * 3600.0),
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{mean_wait, simulate_fifo, Partition, PartitionKind};

    #[test]
    fn trace_is_deterministic() {
        let p = TraceParams::cpu_partition(32, 7);
        assert_eq!(synthetic_week(&p), synthetic_week(&p));
    }

    #[test]
    fn utilization_approximately_hit() {
        let p = TraceParams {
            nodes: 64,
            utilization: 0.6,
            mean_runtime: 3600.0,
            max_request_frac: 0.2,
            seed: 42,
        };
        let jobs = synthetic_week(&p);
        let offered: f64 = jobs.iter().map(|j| j.nodes as f64 * j.runtime).sum();
        let capacity = 64.0 * WEEK_SECONDS;
        let util = offered / capacity;
        assert!(
            (util - 0.6).abs() < 0.15,
            "offered utilization {util} far from target"
        );
    }

    #[test]
    fn gpu_partitions_wait_much_longer_than_cpu() {
        // The Figure 1 claim, end to end.
        let cpu = Partition {
            name: "cpu".into(),
            nodes: 128,
            kind: PartitionKind::Cpu,
        };
        let gpu = Partition {
            name: "gpu".into(),
            nodes: 16,
            kind: PartitionKind::Gpu,
        };
        let cpu_jobs = synthetic_week(&TraceParams::cpu_partition(128, 1));
        let gpu_jobs = synthetic_week(&TraceParams::gpu_partition(16, 2));
        let cpu_wait = mean_wait(&simulate_fifo(&cpu, &cpu_jobs));
        let gpu_wait = mean_wait(&simulate_fifo(&gpu, &gpu_jobs));
        assert!(
            gpu_wait > 10.0 * cpu_wait.max(1.0),
            "gpu {gpu_wait}s vs cpu {cpu_wait}s"
        );
        // GPU waits should be in the hours range.
        assert!(gpu_wait > 1800.0, "gpu wait {gpu_wait}");
    }

    #[test]
    fn arrivals_sorted_and_bounded() {
        let jobs = synthetic_week(&TraceParams::gpu_partition(8, 3));
        assert!(!jobs.is_empty());
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for j in &jobs {
            assert!(j.nodes >= 1 && j.nodes <= 8);
            assert!(j.runtime >= 60.0);
            assert!(j.arrival <= WEEK_SECONDS);
        }
    }
}
