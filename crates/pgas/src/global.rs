//! Partitioned global arrays: element-to-owner mapping.

/// Element distribution of a global array across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Element `i` lives on rank `i mod N` (the default fine-grained PGAS
    /// layout; makes almost every write of a contiguous block remote).
    Cyclic,
    /// Element `i` lives on rank `⌊i·N/len⌋` (contiguous partitions).
    Blocked,
}

/// A PGAS global array descriptor (`pgas::global_ptr<T>(len)` of
/// Listing 3): replicated storage in the simulator, with virtual ownership
/// used to price remote accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalArray {
    /// Element size in bytes.
    pub elem_size: usize,
    /// Number of elements.
    pub len: usize,
    /// Layout.
    pub dist: Distribution,
}

impl GlobalArray {
    /// New array descriptor.
    pub fn new(elem_size: usize, len: usize, dist: Distribution) -> GlobalArray {
        GlobalArray {
            elem_size,
            len,
            dist,
        }
    }

    /// Which rank owns element `idx` on an `n`-rank cluster.
    pub fn owner(&self, idx: usize, n: usize) -> usize {
        debug_assert!(idx < self.len.max(1));
        match self.dist {
            Distribution::Cyclic => idx % n,
            Distribution::Blocked => (idx * n).checked_div(self.len).map_or(0, |q| q.min(n - 1)),
        }
    }

    /// Which rank owns the element containing byte offset `byte_off`.
    pub fn owner_of_byte(&self, byte_off: u64, n: usize) -> usize {
        self.owner(
            (byte_off as usize / self.elem_size).min(self.len.saturating_sub(1)),
            n,
        )
    }

    /// Fraction of a contiguous element range `[lo, hi)` that is remote to
    /// `rank`.
    pub fn remote_fraction(&self, rank: usize, lo: usize, hi: usize, n: usize) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let total = hi - lo;
        let remote = (lo..hi).filter(|&i| self.owner(i, n) != rank).count();
        remote as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_ownership() {
        let a = GlobalArray::new(4, 100, Distribution::Cyclic);
        assert_eq!(a.owner(0, 4), 0);
        assert_eq!(a.owner(5, 4), 1);
        assert_eq!(a.owner(7, 4), 3);
    }

    #[test]
    fn blocked_ownership_contiguous() {
        let a = GlobalArray::new(4, 100, Distribution::Blocked);
        assert_eq!(a.owner(0, 4), 0);
        assert_eq!(a.owner(24, 4), 0);
        assert_eq!(a.owner(25, 4), 1);
        assert_eq!(a.owner(99, 4), 3);
    }

    #[test]
    fn cyclic_remote_fraction_is_n_minus_1_over_n() {
        let a = GlobalArray::new(1, 1000, Distribution::Cyclic);
        let f = a.remote_fraction(0, 0, 1000, 8);
        assert!((f - 7.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_aligned_range_is_local() {
        let a = GlobalArray::new(1, 1000, Distribution::Blocked);
        // Rank 2 writing its own partition: zero remote.
        assert_eq!(a.remote_fraction(2, 500, 750, 4), 0.0);
        // Writing someone else's partition: all remote.
        assert_eq!(a.remote_fraction(0, 500, 750, 4), 1.0);
    }

    #[test]
    fn owner_of_byte_uses_elements() {
        let a = GlobalArray::new(4, 100, Distribution::Cyclic);
        assert_eq!(a.owner_of_byte(0, 4), 0);
        assert_eq!(a.owner_of_byte(4, 4), 1);
        assert_eq!(a.owner_of_byte(7, 4), 1); // inside element 1
    }
}
