//! The PGAS migration runtime.
//!
//! Executes a compiled GPU kernel the way Listing 3 does: blocks are split
//! contiguously across ranks, written global buffers become distributed
//! global arrays, and **every element store is one asynchronous
//! `remote_put`** priced by the [`cucc_net::P2pTracker`]. Functional
//! execution really replays the traced writes so results can be compared
//! byte-for-byte with the GPU reference.

use crate::global::{Distribution, GlobalArray};
use cucc_cluster::{block_compute_time, node_time_profiled, ClusterSpec, SimCluster};
use cucc_core::{CompiledKernel, MigrateError};
use cucc_exec::{execute_block_traced, profile_launch, Arg, BufferId, WriteRecord};
use cucc_ir::LaunchConfig;
use cucc_net::{barrier_time, broadcast_traced, P2pTracker};
use cucc_trace::{Category, Timeline, Track, WIRE_BYTES};

/// Execution fidelity, mirroring `cucc_core::ExecutionFidelity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PgasFidelity {
    /// Trace every block, replay writes, verify functionally.
    Functional,
    /// Sampled profile, traffic extrapolated analytically.
    Modeled,
}

/// PGAS runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgasConfig {
    /// Functional vs modeled execution.
    pub fidelity: PgasFidelity,
    /// Layout of the distributed arrays.
    pub dist: Distribution,
    /// Blocks sampled per profile in modeled mode.
    pub profile_samples: usize,
}

impl Default for PgasConfig {
    fn default() -> PgasConfig {
        PgasConfig {
            fidelity: PgasFidelity::Functional,
            dist: Distribution::Cyclic,
            profile_samples: 3,
        }
    }
}

impl PgasConfig {
    /// Timing-only configuration.
    pub fn modeled() -> PgasConfig {
        PgasConfig {
            fidelity: PgasFidelity::Modeled,
            ..PgasConfig::default()
        }
    }
}

/// Outcome of one PGAS launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgasReport {
    /// Compute portion (max over ranks), seconds.
    pub compute: f64,
    /// Communication portion (put injection/reception + quiescence).
    pub comm: f64,
    /// Remote messages issued.
    pub messages: u64,
    /// Remote payload bytes.
    pub wire_bytes: u64,
    /// Blocks per rank (ceiling).
    pub blocks_per_rank: u64,
}

impl PgasReport {
    /// Total simulated time.
    pub fn time(&self) -> f64 {
        self.compute + self.comm
    }
}

/// A PGAS-backed cluster runtime with the same surface as `CuccCluster`.
#[derive(Debug, Clone)]
pub struct PgasCluster {
    sim: SimCluster,
    config: PgasConfig,
    /// Unified event record; owns the simulated clock (see `cucc-trace`).
    timeline: Timeline,
    /// Logical rank count; modeled mode materializes only one node memory.
    logical_nodes: usize,
}

impl PgasCluster {
    /// Build a PGAS runtime over the given cluster.
    pub fn new(spec: ClusterSpec, config: PgasConfig) -> PgasCluster {
        let logical_nodes = spec.nodes as usize;
        let sim_spec = if config.fidelity == PgasFidelity::Modeled {
            spec.with_nodes(1)
        } else {
            spec
        };
        PgasCluster {
            sim: SimCluster::new(sim_spec),
            config,
            timeline: Timeline::new(),
            logical_nodes,
        }
    }

    /// Number of (logical) ranks.
    pub fn num_nodes(&self) -> usize {
        self.logical_nodes
    }

    /// Simulated elapsed seconds (derived from the trace timeline).
    pub fn clock(&self) -> f64 {
        self.timeline.clock()
    }

    /// The recorded trace timeline (spans, counters, simulated clock).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Allocate a global array's backing storage (replicated per node, with
    /// virtual PGAS ownership).
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        self.sim.alloc(bytes)
    }

    /// Host→device broadcast (recorded on the timeline, wire traffic
    /// included).
    pub fn h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.sim.write_all(buf, data);
        let t0 = self.timeline.clock();
        let bt = broadcast_traced(
            &self.sim.spec.net,
            self.logical_nodes,
            data.len() as u64,
            &mut self.timeline,
            t0,
            "h2d broadcast",
        );
        self.timeline
            .span("h2d", Track::Host, Category::H2d, t0, bt);
        self.timeline.advance(bt);
    }

    /// Read back from rank 0 (free, but recorded on the host track).
    pub fn d2h(&mut self, buf: BufferId) -> Vec<u8> {
        let t = self.timeline.clock();
        self.timeline
            .span("d2h", Track::Host, Category::D2h, t, 0.0);
        self.sim.read(0, buf).to_vec()
    }

    /// Contiguous block partition: rank `i` executes
    /// `[i·⌈B/N⌉, min((i+1)·⌈B/N⌉, B))`.
    fn block_range(&self, rank: usize, num_blocks: u64) -> std::ops::Range<u64> {
        let n = self.logical_nodes as u64;
        let per = num_blocks.div_ceil(n);
        let lo = (rank as u64 * per).min(num_blocks);
        let hi = ((rank as u64 + 1) * per).min(num_blocks);
        lo..hi
    }

    /// Launch a kernel with the PGAS migration.
    pub fn launch(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<PgasReport, MigrateError> {
        if launch.num_blocks() == 0 {
            return Err(MigrateError::Launch("empty grid".into()));
        }
        let n = self.logical_nodes;
        let num_blocks = launch.num_blocks();
        let bpr = num_blocks.div_ceil(n as u64);
        let cpu = self.sim.spec.cpu.clone();
        let net = self.sim.spec.net;
        let mut tracker = P2pTracker::new(n, net);

        // Distributed arrays: every written global buffer.
        let written = ck.kernel.written_global_buffers();
        let arrays: Vec<(u32, GlobalArray)> = written
            .iter()
            .map(|p| {
                let Arg::Buffer(id) = args[p.index()] else {
                    panic!("buffer parameter bound to scalar (caught by exec)")
                };
                let elem = ck.kernel.params[p.index()].scalar().size();
                let len = self.sim.node(0).size_of(id) / elem;
                (p.0, GlobalArray::new(elem, len, self.config.dist))
            })
            .collect();
        let array_of = |param: u32| -> &GlobalArray {
            &arrays
                .iter()
                .find(|(p, _)| *p == param)
                .expect("write to undeclared buffer")
                .1
        };

        // Profile for compute timing (both modes).
        let profile = profile_launch(
            &ck.kernel,
            launch,
            args,
            self.sim.node(0),
            self.config.profile_samples,
        )?;
        let simd_eff = ck.analysis.simd.efficiency;
        let bt_full = block_compute_time(&profile.per_block, simd_eff, &cpu);
        let bt_tail = block_compute_time(&profile.tail_block, simd_eff, &cpu);
        // A kernel is "staged" when it round-trips a substantial share of its
        // global traffic through emulated shared-memory tiles (transpose-like
        // reshaping) — small reduction scratchpads don't count.
        let staged = profile.per_block.shared_bytes * 4 >= profile.per_block.global_bytes().max(1);
        // The busiest rank: rank 0 holds ⌈B/N⌉ full blocks.
        let compute = node_time_profiled(
            bt_full,
            bpr,
            None,
            bpr * profile.per_block.global_bytes(),
            staged,
            &cpu,
        )
        .max(node_time_profiled(
            bt_full,
            0,
            Some(bt_tail),
            0,
            staged,
            &cpu,
        )) * (1.0 + self.sim.spec.jitter * (n - 1) as f64);

        match self.config.fidelity {
            PgasFidelity::Functional => {
                // Trace each rank's blocks on its own memory, price each
                // global store as a put to the owner rank.
                let mut all_traces: Vec<Vec<WriteRecord>> = Vec::with_capacity(n);
                for rank in 0..n {
                    let range = self.block_range(rank, num_blocks);
                    let mut trace = Vec::new();
                    for b in range {
                        execute_block_traced(
                            &ck.kernel,
                            launch,
                            b,
                            args,
                            self.sim.node_mut(rank),
                            &mut trace,
                        )?;
                    }
                    for w in &trace {
                        let owner = array_of(w.param).owner_of_byte(w.byte_off, n);
                        tracker.put(rank, owner, w.bytes as u64);
                    }
                    all_traces.push(trace);
                }
                // Deliver the puts: apply every rank's writes (in rank and
                // block order — a valid GPU block order) to a master image,
                // then install it everywhere. This is the quiesced state a
                // real PGAS runtime reaches at the end-of-kernel barrier.
                for &(param, _) in &arrays {
                    let Arg::Buffer(id) = args[param as usize] else {
                        unreachable!()
                    };
                    let mut master = self.sim.read(0, id).to_vec();
                    for (rank, trace) in all_traces.iter().enumerate() {
                        let src = self.sim.read(rank, id).to_vec();
                        for w in trace.iter().filter(|w| w.param == param) {
                            let lo = w.byte_off as usize;
                            let hi = lo + w.bytes as usize;
                            master[lo..hi].copy_from_slice(&src[lo..hi]);
                        }
                    }
                    self.sim.write_all(id, &master);
                }
            }
            PgasFidelity::Modeled => {
                // Extrapolate traffic from the sampled profile: every store
                // is one put; ownership spreads them (N−1)/N remote,
                // uniformly across peers under the cyclic layout.
                for rank in 0..n {
                    let range = self.block_range(rank, num_blocks);
                    let blocks = range.end.saturating_sub(range.start);
                    if blocks == 0 {
                        continue;
                    }
                    let has_tail = range.end == num_blocks && num_blocks > 0;
                    let full = blocks - u64::from(has_tail);
                    let mut stores = profile.per_block.global_stores * full;
                    let mut bytes = profile.per_block.global_write_bytes * full;
                    if has_tail {
                        stores += profile.tail_block.global_stores;
                        bytes += profile.tail_block.global_write_bytes;
                    }
                    if stores == 0 {
                        continue;
                    }
                    let avg = (bytes / stores).max(1);
                    if n > 1 {
                        let per_peer = stores / n as u64; // (N−1)/N remote, spread
                        for peer in 0..n {
                            if peer != rank {
                                tracker.put_many(rank, peer, avg, per_peer);
                            }
                        }
                    }
                }
            }
        }

        let comm = tracker.completion_time() + barrier_time(&net, n);
        let messages = tracker.stats().total_messages();
        let wire_bytes = tracker.stats().total_bytes();

        // Lay the launch out on the timeline: per-rank compute spans, then
        // one network span covering put delivery + the end-of-kernel
        // barrier, with the remote payload as a wire-byte counter.
        let t0 = self.timeline.clock();
        let mark = self.timeline.checkpoint();
        for rank in 0..n {
            self.timeline.span(
                format!("{}: compute ({bpr} blocks)", ck.name()),
                Track::Node(rank as u32),
                Category::Compute,
                t0,
                compute,
            );
        }
        self.timeline.span(
            format!("{}: puts + barrier ({messages} msgs)", ck.name()),
            Track::Network,
            Category::P2p,
            t0 + compute,
            comm,
        );
        if wire_bytes > 0 {
            self.timeline
                .counter(WIRE_BYTES, Track::Network, t0 + compute, wire_bytes);
        }
        profile
            .total
            .emit_counters(&mut self.timeline, Track::Host, t0);

        // Derived views over the recorded window, with the invariant that
        // they reproduce the directly computed values bit-for-bit.
        let report = PgasReport {
            compute: self.timeline.max_in_since(mark, Category::Compute),
            comm: self.timeline.time_in_since(mark, Category::P2p),
            messages,
            wire_bytes: self.timeline.wire_bytes_since(mark),
            blocks_per_rank: bpr,
        };
        assert_eq!(report.compute.to_bits(), compute.to_bits());
        assert_eq!(report.comm.to_bits(), comm.to_bits());
        assert_eq!(report.wire_bytes, wire_bytes);
        self.timeline.advance(report.time());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_core::compile_source;
    use cucc_gpu_model::{GpuDevice, GpuSpec};

    const LISTING1: &str = "__global__ void vec_copy(char* src, char* dest, int n) {
        int id = blockDim.x * blockIdx.x + threadIdx.x;
        if (id < n) dest[id] = src[id];
    }";

    fn spec(n: u32) -> ClusterSpec {
        ClusterSpec::simd_focused().with_nodes(n)
    }

    #[test]
    fn functional_matches_gpu_reference() {
        let ck = compile_source(LISTING1).unwrap();
        let n = 3000usize;
        let data: Vec<u8> = (0..n).map(|i| (i * 13 % 256) as u8).collect();
        let launch = LaunchConfig::cover1(n as u64, 256);

        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gs = gpu.alloc(n);
        let gd = gpu.alloc(n);
        gpu.h2d(gs, &data);
        gpu.launch(
            &ck.kernel,
            launch,
            &[Arg::Buffer(gs), Arg::Buffer(gd), Arg::int(n as i64)],
        )
        .unwrap();
        let reference = gpu.d2h(gd);

        for nodes in [1u32, 2, 4, 5] {
            let mut pg = PgasCluster::new(spec(nodes), PgasConfig::default());
            let ps = pg.alloc(n);
            let pd = pg.alloc(n);
            pg.h2d(ps, &data);
            let report = pg
                .launch(
                    &ck,
                    launch,
                    &[Arg::Buffer(ps), Arg::Buffer(pd), Arg::int(n as i64)],
                )
                .unwrap();
            assert_eq!(pg.d2h(pd), reference, "nodes={nodes}");
            if nodes > 1 {
                // Cyclic layout: ~ (N−1)/N of the 3000 writes are remote.
                let expected = (n as f64 * (nodes as f64 - 1.0) / nodes as f64).round() as i64;
                let got = report.messages as i64;
                assert!(
                    (got - expected).abs() <= n as i64 / 20,
                    "nodes={nodes}: {got} msgs vs ~{expected}"
                );
            }
        }
    }

    #[test]
    fn per_element_puts_make_pgas_slow() {
        // Listing 1 on 2 nodes: PGAS pays ~N/2 put overheads; a single
        // Allgather is orders of magnitude cheaper. We compare against
        // the CuCC runtime on an identical cluster.
        use cucc_core::{CuccCluster, RuntimeConfig};
        let ck = compile_source(LISTING1).unwrap();
        let n = 100_000usize;
        let launch = LaunchConfig::cover1(n as u64, 256);

        let mut pg = PgasCluster::new(spec(4), PgasConfig::modeled());
        let ps = pg.alloc(n);
        let pd = pg.alloc(n);
        let pr = pg
            .launch(
                &ck,
                launch,
                &[Arg::Buffer(ps), Arg::Buffer(pd), Arg::int(n as i64)],
            )
            .unwrap();

        let mut cc = CuccCluster::with_options(spec(4), RuntimeConfig::modeled());
        let cs = cc.alloc(n);
        let cd = cc.alloc(n);
        let cr = cc
            .launch(
                &ck,
                launch,
                &[Arg::Buffer(cs), Arg::Buffer(cd), Arg::int(n as i64)],
            )
            .unwrap();

        assert!(
            pr.time() / cr.time() > 10.0,
            "pgas {} vs cucc {}",
            pr.time(),
            cr.time()
        );
    }

    #[test]
    fn sparse_writers_close_to_cucc() {
        // BinomialOption shape: one scalar per block — PGAS and CuCC should
        // be in the same ballpark (paper §7.3).
        use cucc_core::{CuccCluster, RuntimeConfig};
        let src = "__global__ void k(float* out, int iters) {
            float acc = 0.0f;
            for (int i = 0; i < iters; i++)
                acc += 0.5f;
            if (threadIdx.x == 0)
                out[blockIdx.x] = acc;
        }";
        let ck = compile_source(src).unwrap();
        let blocks = 1024u32;
        let launch = LaunchConfig::new(blocks, 128u32);
        let args_of = |out| [Arg::Buffer(out), Arg::int(5000)];

        let mut pg = PgasCluster::new(spec(4), PgasConfig::modeled());
        let po = pg.alloc(blocks as usize * 4);
        let pr = pg.launch(&ck, launch, &args_of(po)).unwrap();

        let mut cc = CuccCluster::with_options(spec(4), RuntimeConfig::modeled());
        let co = cc.alloc(blocks as usize * 4);
        let cr = cc.launch(&ck, launch, &args_of(co)).unwrap();

        let ratio = pr.time() / cr.time();
        assert!(ratio < 1.5 && ratio > 0.6, "ratio {ratio}");
    }

    #[test]
    fn memory_heavy_kernel_slows_down_vs_single_node() {
        // Figure 4's signature: scaling a copy kernel with PGAS makes it
        // slower than single-node execution (comm dwarfs compute savings).
        let ck = compile_source(LISTING1).unwrap();
        let n = 1_000_000usize;
        let launch = LaunchConfig::cover1(n as u64, 256);
        let mut times = Vec::new();
        for nodes in [1u32, 2, 8, 32] {
            let mut pg = PgasCluster::new(spec(nodes), PgasConfig::modeled());
            let ps = pg.alloc(n);
            let pd = pg.alloc(n);
            let r = pg
                .launch(
                    &ck,
                    launch,
                    &[Arg::Buffer(ps), Arg::Buffer(pd), Arg::int(n as i64)],
                )
                .unwrap();
            times.push(r.time());
        }
        assert!(
            times[1] > times[0],
            "2-node PGAS should be slower than 1-node: {times:?}"
        );
        assert!(times[3] > times[0], "32-node still slower: {times:?}");
    }

    #[test]
    fn block_ranges_cover_grid() {
        let pg = PgasCluster::new(spec(5), PgasConfig::default());
        let total = 313u64;
        let mut covered = 0u64;
        let mut prev_end = 0;
        for r in 0..5 {
            let range = pg.block_range(r, total);
            assert_eq!(range.start, prev_end);
            prev_end = range.end;
            covered += range.end - range.start;
        }
        assert_eq!(covered, total);
        assert_eq!(prev_end, total);
    }
}
