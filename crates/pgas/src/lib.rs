//! # cucc-pgas — the PGAS baseline (UPC++-style)
//!
//! The paper's comparison point (§3.1, §7.3): migrate a GPU program to a CPU
//! cluster by mapping its global buffers to **partitioned global arrays**
//! and replacing every element write with a fine-grained asynchronous
//! one-sided `remote_put` (Listing 3). This crate implements that migration
//! over the same simulated cluster and interconnect as CuCC, so the two
//! solutions differ in *communication strategy only*:
//!
//! * CuCC: one balanced in-place Allgather per synchronized buffer;
//! * PGAS: one message per written element (minus the fraction that happens
//!   to land on the writer's own partition).
//!
//! The distributed arrays use the element-cyclic layout; with contiguous
//! block scheduling this makes a `(N−1)/N` fraction of element writes
//! remote — the per-element traffic the paper measures for UPC++ (1200
//! remote accesses for Listing 1's 1200 writes).

pub mod global;
pub mod runtime;

pub use global::{Distribution, GlobalArray};
pub use runtime::{PgasCluster, PgasConfig, PgasFidelity, PgasReport};
