//! Minimal JSON support for the trace exporter and its tests.
//!
//! The build environment is offline, so instead of `serde_json` this
//! module provides exactly what the crate needs: escaping and float
//! formatting for the writer side, and a small recursive-descent parser
//! used to validate that exported traces round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as a JSON string literal, including the surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (no NaN/Inf, shortest round-trip not
/// required — `{:?}` round-trips through the parser).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v:?}");
    s
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char),
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char),
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char),
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos,
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (may be multi-byte).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e-2],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trips() {
        let weird = "a\"b\\c\nd\te\u{1}ü";
        let doc = format!("{{\"k\":{}}}", escape(weird));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(weird));
    }

    #[test]
    fn f64_round_trips() {
        for x in [0.0, 1.5, -2.25e-9, 123456789.125, 1e300] {
            let v = parse(&fmt_f64(x)).unwrap();
            assert_eq!(v.as_f64(), Some(x));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
    }
}
