//! Unified simulated-clock trace timeline for CuCC.
//!
//! Every component that previously kept its own ad-hoc time accounting
//! (three-phase launch phases, collective steps, PGAS puts, host↔device
//! transfers) records typed [`Span`]s and [`CounterEvent`]s into one
//! [`Timeline`] instead. Scalar views the rest of the system consumes —
//! phase times, wire bytes, the cluster clock — are *derived* from the
//! timeline, and the recording is rich enough to export as Chrome
//! trace-event JSON loadable in Perfetto / `chrome://tracing`
//! ([`Timeline::to_chrome_json`]).
//!
//! Times are simulated seconds on the cluster's virtual clock, not wall
//! clock. The export converts them to microseconds, which is what the
//! trace-event format expects.
//!
//! Bit-for-bit compatibility: depth-0 spans carry the *authoritative*
//! durations (exactly the `f64` values the legacy accounting produced),
//! and derived sums visit them in recording order, so they reproduce the
//! legacy accumulation order exactly. Depth-1 child spans (e.g. the
//! individual steps inside one allgather) exist for visualization and may
//! differ from their parent by float rounding when summed.

pub mod json;

use std::fmt::Write as _;

/// Counter name for bytes that cross the network wire.
pub const WIRE_BYTES: &str = "wire_bytes";
/// Counter name for executed arithmetic operations.
pub const OPS: &str = "ops";
/// Counter name for global-memory traffic in bytes.
pub const GLOBAL_BYTES: &str = "global_bytes";
/// Counter name for shared-memory traffic in bytes.
pub const SHARED_BYTES: &str = "shared_bytes";

/// Which lane of the trace a span or counter belongs to.
///
/// Tracks map to "threads" in the Chrome trace-event export, so each node,
/// the network, and the host get their own swim-lane in Perfetto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// One logical cluster node.
    Node(u32),
    /// The interconnect (collectives, broadcasts, point-to-point traffic).
    Network,
    /// The host driving the cluster (launches, H2D/D2H staging).
    Host,
    /// The serving front-end's job queue: one span per job from arrival to
    /// the moment placement dequeues it.
    Queue,
    /// Serving admission control: accept/reject decisions at arrival time.
    Admit,
    /// Serving placement: the window each placed job occupies its node
    /// allocation on the simulated cluster.
    Place,
}

impl Track {
    /// Stable "thread id" used by the Chrome export. Serving tracks sit
    /// above every possible `Node(i)` id (`2 + u32::MAX`), so node lanes
    /// can never collide with them.
    fn tid(self) -> u64 {
        match self {
            Track::Node(i) => 2 + i as u64,
            Track::Network => 0,
            Track::Host => 1,
            Track::Queue => 3 + u32::MAX as u64,
            Track::Admit => 4 + u32::MAX as u64,
            Track::Place => 5 + u32::MAX as u64,
        }
    }

    fn label(self) -> String {
        match self {
            Track::Node(i) => format!("node {i}"),
            Track::Network => "network".to_string(),
            Track::Host => "host".to_string(),
            Track::Queue => "serve: queue".to_string(),
            Track::Admit => "serve: admit".to_string(),
            Track::Place => "serve: place".to_string(),
        }
    }
}

/// What kind of work a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Phase 1 of a three-phase launch: partial block execution.
    Partial,
    /// Phase 2: the balanced in-place allgather.
    Allgather,
    /// Phase 3: callback block execution.
    Callback,
    /// A broadcast collective (replicated h2d distribution).
    Broadcast,
    /// Undifferentiated compute (replicated launches, PGAS ranks).
    Compute,
    /// Point-to-point traffic (PGAS puts/gets).
    P2p,
    /// Host-to-device staging.
    H2d,
    /// Device-to-host staging.
    D2h,
    /// A wasted collective attempt: timeout + exponential backoff spent
    /// detecting a fault before a step is retried (or a node evicted).
    Retry,
    /// Recovery re-execution: blocks a survivor re-runs after a node death
    /// re-partitions the dead node's slice.
    Reexec,
    /// Serving: time a job spends waiting in the front-end queue.
    Queue,
    /// Serving: an admission-control decision (accept or typed rejection).
    Admit,
    /// Serving: a placed job's residency on its node allocation.
    Place,
}

impl Category {
    /// All categories, in summary-table order.
    pub const ALL: [Category; 13] = [
        Category::Partial,
        Category::Allgather,
        Category::Callback,
        Category::Broadcast,
        Category::Compute,
        Category::P2p,
        Category::H2d,
        Category::D2h,
        Category::Retry,
        Category::Reexec,
        Category::Queue,
        Category::Admit,
        Category::Place,
    ];

    /// Short lower-case label, also used as the Chrome `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            Category::Partial => "partial",
            Category::Allgather => "allgather",
            Category::Callback => "callback",
            Category::Broadcast => "broadcast",
            Category::Compute => "compute",
            Category::P2p => "p2p",
            Category::H2d => "h2d",
            Category::D2h => "d2h",
            Category::Retry => "retry",
            Category::Reexec => "reexec",
            Category::Queue => "queue",
            Category::Admit => "admit",
            Category::Place => "place",
        }
    }

    /// Whether the category counts as communication in comm/compute splits.
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            Category::Allgather | Category::Broadcast | Category::P2p | Category::Retry
        )
    }

    /// Whether the category counts as compute in comm/compute splits.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            Category::Partial | Category::Callback | Category::Compute | Category::Reexec
        )
    }
}

/// One interval of simulated time on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Human-readable name shown in the trace viewer.
    pub name: String,
    /// Lane the span lives on.
    pub track: Track,
    /// Kind of work.
    pub category: Category,
    /// Start time in simulated seconds.
    pub start: f64,
    /// Duration in simulated seconds.
    pub dur: f64,
    /// 0 for authoritative spans, 1 for visualization-only children
    /// (e.g. the per-step breakdown inside one collective).
    pub depth: u8,
}

impl Span {
    /// End time in simulated seconds.
    pub fn end(&self) -> f64 {
        self.start + self.dur
    }
}

/// One point sample of a named counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterEvent {
    /// Counter name (one of [`WIRE_BYTES`], [`OPS`], ... or custom).
    pub name: &'static str,
    /// Lane the sample is attributed to.
    pub track: Track,
    /// Sample time in simulated seconds.
    pub t: f64,
    /// Increment recorded at `t` (deltas, not running totals).
    pub value: u64,
}

/// Per-resource ready times: one simulated-clock ready time per [`Track`]
/// lane (each node, the network, the host).
///
/// The global [`Timeline::clock`] models a fully serial host: every op
/// starts when the previous one finished. The lane clock is the async
/// generalization — an op starts at the **max of its dependency times and
/// the ready times of the lanes it occupies**, and pushes those lanes'
/// ready times to its end. Independent work on disjoint lanes genuinely
/// overlaps on the simulated clock; work on a shared lane serializes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneClock {
    /// `(lane, ready)` pairs; lanes never observed are ready at 0.0.
    lanes: Vec<(Track, f64)>,
}

impl LaneClock {
    /// An empty lane clock (every lane ready at 0.0).
    pub fn new() -> LaneClock {
        LaneClock::default()
    }

    /// Ready time of one lane (0.0 if never reserved).
    pub fn ready(&self, track: Track) -> f64 {
        self.lanes
            .iter()
            .find(|(t, _)| *t == track)
            .map_or(0.0, |(_, r)| *r)
    }

    /// Push a lane's ready time forward to `end` (never backward).
    pub fn reserve(&mut self, track: Track, end: f64) {
        match self.lanes.iter_mut().find(|(t, _)| *t == track) {
            Some((_, r)) => {
                if end > *r {
                    *r = end;
                }
            }
            None => self.lanes.push((track, end)),
        }
    }

    /// Latest ready time over every lane (0.0 when no lane was reserved).
    pub fn horizon(&self) -> f64 {
        self.lanes.iter().fold(0.0f64, |acc, (_, r)| acc.max(*r))
    }

    /// Forget every reservation (all lanes ready at 0.0 again).
    pub fn clear(&mut self) {
        self.lanes.clear();
    }
}

/// A position in the timeline, used to window derived views to the events
/// recorded after a given point (typically: one launch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mark {
    spans: usize,
    counters: usize,
}

/// The unified event record plus the simulated clock.
///
/// The clock advances only via [`Timeline::advance`]; recording spans does
/// not move it. Callers lay out spans at absolute times of their choosing
/// (usually starting at the current clock) and then advance the clock by
/// the total elapsed simulated time, which reproduces the legacy
/// `clock += elapsed` accounting bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    clock: f64,
    spans: Vec<Span>,
    counters: Vec<CounterEvent>,
    lanes: LaneClock,
}

impl Timeline {
    /// An empty timeline with the clock at zero.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Current simulated time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advance the simulated clock by `dt` seconds.
    pub fn advance(&mut self, dt: f64) {
        self.clock += dt;
    }

    /// Advance the simulated clock to at least `t` (never backward). Used
    /// by the async scheduler to settle the clock at the lane horizon on
    /// synchronization points.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Ready time of a resource lane, floored at the serial clock: sync
    /// ops advance only [`Timeline::clock`], and any async op submitted
    /// afterwards must not start before the work that already completed.
    pub fn lane_ready(&self, track: Track) -> f64 {
        self.lanes.ready(track).max(self.clock)
    }

    /// Push a resource lane's ready time forward to `end`.
    pub fn reserve_lane(&mut self, track: Track, end: f64) {
        self.lanes.reserve(track, end);
    }

    /// Latest lane ready time (0.0 when no lane was ever reserved).
    pub fn lanes_horizon(&self) -> f64 {
        self.lanes.horizon()
    }

    /// Drop all recorded events and reset the clock (and every lane) to
    /// zero.
    pub fn reset(&mut self) {
        self.clock = 0.0;
        self.spans.clear();
        self.counters.clear();
        self.lanes.clear();
    }

    /// Snapshot the current position for later [`Timeline::spans_since`] /
    /// derived-view windowing.
    pub fn checkpoint(&self) -> Mark {
        Mark {
            spans: self.spans.len(),
            counters: self.counters.len(),
        }
    }

    /// Record an authoritative (depth-0) span.
    pub fn span(
        &mut self,
        name: impl Into<String>,
        track: Track,
        category: Category,
        start: f64,
        dur: f64,
    ) {
        self.spans.push(Span {
            name: name.into(),
            track,
            category,
            start,
            dur,
            depth: 0,
        });
    }

    /// Record a visualization-only (depth-1) child span, e.g. one step of
    /// a collective whose parent span carries the authoritative duration.
    pub fn child_span(
        &mut self,
        name: impl Into<String>,
        track: Track,
        category: Category,
        start: f64,
        dur: f64,
    ) {
        self.spans.push(Span {
            name: name.into(),
            track,
            category,
            start,
            dur,
            depth: 1,
        });
    }

    /// Record a counter increment at time `t`.
    pub fn counter(&mut self, name: &'static str, track: Track, t: f64, value: u64) {
        self.counters.push(CounterEvent {
            name,
            track,
            t,
            value,
        });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded counter events, in recording order.
    pub fn counters(&self) -> &[CounterEvent] {
        &self.counters
    }

    /// Spans recorded after `mark`.
    pub fn spans_since(&self, mark: Mark) -> &[Span] {
        &self.spans[mark.spans..]
    }

    /// Counter events recorded after `mark`.
    pub fn counters_since(&self, mark: Mark) -> &[CounterEvent] {
        &self.counters[mark.counters..]
    }

    /// In-order sum of depth-0 span durations of `category` after `mark`.
    ///
    /// Visiting spans in recording order reproduces the accumulation order
    /// of the legacy per-phase `+=` loops, so the sum is bit-identical to
    /// the value the pre-timeline accounting computed.
    pub fn time_in_since(&self, mark: Mark, category: Category) -> f64 {
        let mut t = 0.0;
        for s in self.spans_since(mark) {
            if s.depth == 0 && s.category == category {
                t += s.dur;
            }
        }
        t
    }

    /// In-order sum of depth-0 span durations of `category` over the whole
    /// timeline.
    pub fn time_in(&self, category: Category) -> f64 {
        self.time_in_since(Mark::default(), category)
    }

    /// In-order sum of depth-0 span durations of `category` restricted to
    /// one `track`.
    pub fn time_in_on(&self, track: Track, category: Category) -> f64 {
        let mut t = 0.0;
        for s in &self.spans {
            if s.depth == 0 && s.category == category && s.track == track {
                t += s.dur;
            }
        }
        t
    }

    /// Maximum depth-0 span duration of `category` after `mark` (0.0 when
    /// there are none). Phases that run concurrently across nodes record
    /// one span per node; the phase's elapsed time is the slowest node.
    pub fn max_in_since(&self, mark: Mark, category: Category) -> f64 {
        let mut t = 0.0f64;
        for s in self.spans_since(mark) {
            if s.depth == 0 && s.category == category {
                t = t.max(s.dur);
            }
        }
        t
    }

    /// Maximum over tracks of the in-order per-track sum of depth-0 span
    /// durations of `category` after `mark` (0.0 when there are none).
    ///
    /// Used for phases that can repeat within one launch (fault-recovery
    /// re-execution rounds): each round records one span per surviving node,
    /// every round's spans land on the nodes that are still alive, and
    /// survivors only shrink — so the slowest surviving track accumulates
    /// every round and its sum is the phase's total elapsed time.
    pub fn max_track_sum_since(&self, mark: Mark, category: Category) -> f64 {
        let mut sums: Vec<(Track, f64)> = Vec::new();
        for s in self.spans_since(mark) {
            if s.depth == 0 && s.category == category {
                match sums.iter_mut().find(|(t, _)| *t == s.track) {
                    Some((_, sum)) => *sum += s.dur,
                    None => sums.push((s.track, s.dur)),
                }
            }
        }
        sums.iter().fold(0.0f64, |m, &(_, s)| m.max(s))
    }

    /// Total of counter `name` after `mark`.
    pub fn counter_total_since(&self, mark: Mark, name: &str) -> u64 {
        self.counters_since(mark)
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Total of counter `name` over the whole timeline.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counter_total_since(Mark::default(), name)
    }

    /// Total bytes that crossed the wire after `mark`.
    pub fn wire_bytes_since(&self, mark: Mark) -> u64 {
        self.counter_total_since(mark, WIRE_BYTES)
    }

    /// Total bytes that crossed the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes_since(Mark::default())
    }

    /// In-order sum of depth-0 durations in communication categories.
    pub fn comm_time(&self) -> f64 {
        let mut t = 0.0;
        for s in &self.spans {
            if s.depth == 0 && s.category.is_comm() && s.track == Track::Network {
                t += s.dur;
            }
        }
        t
    }

    /// Sum of depth-0 span durations on one node's track (its busy time).
    pub fn node_busy(&self, node: u32) -> f64 {
        let mut t = 0.0;
        for s in &self.spans {
            if s.depth == 0 && s.track == Track::Node(node) {
                t += s.dur;
            }
        }
        t
    }

    /// Every track that has at least one span or counter, sorted with the
    /// network and host lanes first, then nodes by id.
    pub fn tracks(&self) -> Vec<Track> {
        let mut tracks: Vec<Track> = self
            .spans
            .iter()
            .map(|s| s.track)
            .chain(self.counters.iter().map(|c| c.track))
            .collect();
        tracks.sort_by_key(|t| t.tid());
        tracks.dedup();
        tracks
    }

    /// Largest span end time, or the clock if no span reaches further.
    pub fn end_time(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| s.end())
            .fold(self.clock, f64::max)
    }

    /// Serialize as Chrome trace-event JSON (the `traceEvents` array
    /// format), loadable in Perfetto (<https://ui.perfetto.dev>) or
    /// `chrome://tracing`. Times are exported in microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * (self.spans.len() + self.counters.len()));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        for track in self.tracks() {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                track.tid(),
                json::escape(&track.label()),
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                track.tid(),
                track.tid(),
            );
        }
        for s in &self.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":{},\"cat\":\"{}\",\"args\":{{\"depth\":{}}}}}",
                s.track.tid(),
                json::fmt_f64(s.start * 1e6),
                json::fmt_f64(s.dur * 1e6),
                json::escape(&s.name),
                s.category.label(),
                s.depth,
            );
        }
        // Counters are exported as running totals per (name, track) so the
        // Perfetto counter graph shows cumulative traffic over time.
        let mut totals: Vec<(&'static str, Track, u64)> = Vec::new();
        for c in &self.counters {
            let total = match totals
                .iter_mut()
                .find(|(n, t, _)| *n == c.name && *t == c.track)
            {
                Some(entry) => {
                    entry.2 += c.value;
                    entry.2
                }
                None => {
                    totals.push((c.name, c.track, c.value));
                    c.value
                }
            };
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                 \"args\":{{\"{}\":{}}}}}",
                c.track.tid(),
                json::fmt_f64(c.t * 1e6),
                c.name,
                c.name,
                total,
            );
        }
        out.push_str("]}");
        out
    }

    /// Render a plain-text summary table: total time per category, the
    /// comm/compute split, wire bytes, and per-node busy time.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: {:.6} s simulated, {} spans",
            self.clock,
            self.spans.len()
        );
        let _ = writeln!(out, "  {:<12} {:>14} {:>8}", "category", "time", "spans");
        let mut comm = 0.0;
        let mut compute = 0.0;
        for cat in Category::ALL {
            let t = self.time_in(cat);
            let n = self
                .spans
                .iter()
                .filter(|s| s.depth == 0 && s.category == cat)
                .count();
            if n == 0 {
                continue;
            }
            if cat.is_comm() {
                comm += t;
            }
            if cat.is_compute() {
                compute += t;
            }
            let _ = writeln!(out, "  {:<12} {:>12.3} µs {:>8}", cat.label(), t * 1e6, n);
        }
        let split = comm + compute;
        if split > 0.0 {
            let _ = writeln!(
                out,
                "  comm/compute  {:>11.1} % {:>10.1} %",
                100.0 * comm / split,
                100.0 * compute / split,
            );
        }
        let wire = self.wire_bytes();
        if wire > 0 {
            let _ = writeln!(out, "  wire bytes    {wire:>14}");
        }
        for track in self.tracks() {
            if let Track::Node(i) = track {
                let _ = writeln!(
                    out,
                    "  node {i:<3} busy {:>12.3} µs",
                    self.node_busy(i) * 1e6
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut tl = Timeline::new();
        tl.span("partial", Track::Node(0), Category::Partial, 0.0, 2.0);
        tl.span("partial", Track::Node(1), Category::Partial, 0.0, 3.0);
        tl.span("allgather", Track::Network, Category::Allgather, 3.0, 1.5);
        tl.child_span("step 0", Track::Network, Category::Allgather, 3.0, 0.75);
        tl.child_span("step 1", Track::Network, Category::Allgather, 3.75, 0.75);
        tl.counter(WIRE_BYTES, Track::Network, 3.0, 64);
        tl.counter(WIRE_BYTES, Track::Network, 3.75, 64);
        tl.span("callback", Track::Node(0), Category::Callback, 4.5, 1.0);
        tl.advance(5.5);
        tl
    }

    #[test]
    fn derived_views() {
        let tl = sample();
        assert_eq!(tl.clock(), 5.5);
        assert_eq!(tl.max_in_since(Mark::default(), Category::Partial), 3.0);
        // Depth-1 steps are excluded from the authoritative sums.
        assert_eq!(tl.time_in(Category::Allgather), 1.5);
        assert_eq!(tl.wire_bytes(), 128);
        assert_eq!(tl.node_busy(0), 3.0);
        assert_eq!(tl.comm_time(), 1.5);
        assert_eq!(tl.end_time(), 5.5);
        assert_eq!(
            tl.tracks(),
            vec![Track::Network, Track::Node(0), Track::Node(1)]
        );
    }

    #[test]
    fn checkpoint_windows() {
        let mut tl = sample();
        let mark = tl.checkpoint();
        assert_eq!(tl.time_in_since(mark, Category::Partial), 0.0);
        tl.span("partial", Track::Node(0), Category::Partial, 5.5, 7.0);
        tl.counter(WIRE_BYTES, Track::Network, 5.5, 32);
        assert_eq!(tl.time_in_since(mark, Category::Partial), 7.0);
        assert_eq!(tl.wire_bytes_since(mark), 32);
        assert_eq!(tl.wire_bytes(), 160);
    }

    #[test]
    fn max_track_sum_accumulates_rounds_per_track() {
        let mut tl = Timeline::new();
        let mark = tl.checkpoint();
        // Round 1: nodes 0 and 1 survive; round 2: only node 0.
        tl.span("reexec", Track::Node(0), Category::Reexec, 1.0, 2.0);
        tl.span("reexec", Track::Node(1), Category::Reexec, 1.0, 2.0);
        tl.span("reexec", Track::Node(0), Category::Reexec, 4.0, 0.5);
        assert_eq!(tl.max_track_sum_since(mark, Category::Reexec), 2.5);
        // Depth-1 children are excluded; empty category yields 0.0.
        tl.child_span("detail", Track::Node(0), Category::Reexec, 1.0, 9.0);
        assert_eq!(tl.max_track_sum_since(mark, Category::Reexec), 2.5);
        assert_eq!(tl.max_track_sum_since(mark, Category::Retry), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut tl = sample();
        tl.reserve_lane(Track::Host, 9.0);
        tl.reset();
        assert_eq!(tl.clock(), 0.0);
        assert!(tl.spans().is_empty());
        assert!(tl.counters().is_empty());
        assert_eq!(tl.wire_bytes(), 0);
        assert_eq!(tl.lanes_horizon(), 0.0);
        assert_eq!(tl.lane_ready(Track::Host), 0.0);
    }

    #[test]
    fn lane_clock_tracks_per_resource_ready_times() {
        let mut lanes = LaneClock::new();
        assert_eq!(lanes.ready(Track::Node(0)), 0.0);
        assert_eq!(lanes.horizon(), 0.0);
        lanes.reserve(Track::Node(0), 2.0);
        lanes.reserve(Track::Network, 1.0);
        assert_eq!(lanes.ready(Track::Node(0)), 2.0);
        assert_eq!(lanes.ready(Track::Node(1)), 0.0);
        assert_eq!(lanes.horizon(), 2.0);
        // Reservations never move a lane backward.
        lanes.reserve(Track::Node(0), 1.5);
        assert_eq!(lanes.ready(Track::Node(0)), 2.0);
        lanes.clear();
        assert_eq!(lanes.horizon(), 0.0);
    }

    #[test]
    fn lane_ready_is_floored_at_the_serial_clock() {
        let mut tl = Timeline::new();
        tl.advance(3.0);
        // A lane never reserved is still "busy" until the serial clock:
        // everything the sync path did is finished by `clock`.
        assert_eq!(tl.lane_ready(Track::Host), 3.0);
        tl.reserve_lane(Track::Host, 5.0);
        assert_eq!(tl.lane_ready(Track::Host), 5.0);
        assert_eq!(tl.lanes_horizon(), 5.0);
        // advance_to never moves the clock backward.
        tl.advance_to(1.0);
        assert_eq!(tl.clock(), 3.0);
        tl.advance_to(5.0);
        assert_eq!(tl.clock(), 5.0);
    }

    #[test]
    fn chrome_export_parses_and_counts() {
        let tl = sample();
        let doc = json::parse(&tl.to_chrome_json()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        let xs = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .count();
        let cs = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("C"))
            .count();
        assert_eq!(xs, tl.spans().len());
        assert_eq!(cs, tl.counters().len());
        // Counter samples are running totals; the last one holds the sum.
        let last_total = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("C"))
            .filter_map(|e| e.get("args")?.get(WIRE_BYTES)?.as_f64())
            .fold(0.0, f64::max);
        assert_eq!(last_total as u64, tl.wire_bytes());
    }

    #[test]
    fn serving_tracks_are_distinct_lanes() {
        // Serving track ids can never collide with a node lane, even at
        // the extreme node id.
        let tids: Vec<u64> = [
            Track::Node(u32::MAX),
            Track::Queue,
            Track::Admit,
            Track::Place,
        ]
        .iter()
        .map(|t| t.tid())
        .collect();
        let mut uniq = tids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), tids.len());

        let mut tl = Timeline::new();
        tl.span("job 0 wait", Track::Queue, Category::Queue, 0.0, 1.0);
        tl.span("job 0 admit", Track::Admit, Category::Admit, 0.0, 0.0);
        tl.span("job 0 run", Track::Place, Category::Place, 1.0, 2.0);
        assert_eq!(tl.time_in(Category::Queue), 1.0);
        assert_eq!(tl.time_in(Category::Place), 2.0);
        // Serving overhead is neither comm nor compute in the split.
        assert!(!Category::Queue.is_comm() && !Category::Queue.is_compute());
        assert!(!Category::Place.is_comm() && !Category::Place.is_compute());
        assert_eq!(tl.tracks(), vec![Track::Queue, Track::Admit, Track::Place]);
        let s = tl.summary();
        assert!(s.contains("queue") && s.contains("place"));
        // The Chrome export names the serving lanes.
        assert!(tl.to_chrome_json().contains("serve: queue"));
    }

    #[test]
    fn summary_mentions_phases() {
        let s = sample().summary();
        assert!(s.contains("partial"));
        assert!(s.contains("allgather"));
        assert!(s.contains("wire bytes"));
        assert!(s.contains("comm/compute"));
    }
}
