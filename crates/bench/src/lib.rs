//! # cucc-bench — harnesses that regenerate every table and figure
//!
//! One bench target per table/figure of the paper (run with
//! `cargo bench -p cucc-bench --bench <target>`; `cargo bench` runs all):
//!
//! | target | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — cluster specifications |
//! | `fig1_waiting_times` | Fig. 1 — Slurm partition waiting times |
//! | `fig4_pgas_scaling` | Fig. 4 — PGAS migration scalability |
//! | `fig7_coverage` | Fig. 7 — Allgather-distributable coverage |
//! | `fig8_scalability` | Fig. 8 — CuCC strong scaling on both clusters |
//! | `fig9_network_overhead` | Fig. 9 — communication share of runtime |
//! | `fig10_cucc_vs_pgas` | Fig. 10 — CuCC vs UPC++-style PGAS |
//! | `fig11_cpu_vs_gpu` | Fig. 11 — CPU clusters vs V100/A100 |
//! | `fig12_throughput` | Fig. 12 — Lonestar6 cluster-wide throughput |
//! | `fig13_simd_vs_thread` | Fig. 13 + §8.2 — SIMD- vs Thread-Focused |
//! | `allgather_micro` | §2.3 — Allgather placement/balance microbench |
//! | `criterion_components` | Criterion microbenches of the pipeline |
//!
//! Performance numbers come from the **modeled** execution fidelity at
//! paper-scale workloads: kernels are sample-interpreted for their dynamic
//! operation mix, and the calibrated cluster/GPU models convert the counts
//! to time. Measured-vs-paper comparisons live in `EXPERIMENTS.md`.

use cucc_cluster::ClusterSpec;
use cucc_core::{compile_source, CuccCluster, LaunchReport, RuntimeConfig};
use cucc_gpu_model::{GpuDevice, GpuSpec};
use cucc_pgas::{PgasCluster, PgasConfig, PgasReport};
use cucc_workloads::{setup_args, Benchmark};

/// Run one benchmark on a CuCC cluster in modeled fidelity.
pub fn cucc_report(bench: &dyn Benchmark, spec: ClusterSpec) -> LaunchReport {
    cucc_report_traced(bench, spec).0
}

/// Run one benchmark on a CuCC cluster in modeled fidelity and return the
/// trace timeline covering exactly the launch (h2d setup traffic is
/// dropped, so the span record is the kernel alone).
pub fn cucc_report_traced(
    bench: &dyn Benchmark,
    spec: ClusterSpec,
) -> (LaunchReport, cucc_trace::Timeline) {
    let ck = compile_source(&bench.source()).expect("compile");
    let mut cl = CuccCluster::with_options(spec, RuntimeConfig::modeled());
    let (args, _) = setup_args(bench, &ck.kernel, &mut cl);
    cl.reset_clock();
    let report = cl
        .launch(&ck, bench.launch(), &args)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    let timeline = cl.timeline().clone();
    (report, timeline)
}

/// Run one benchmark on the PGAS baseline in modeled fidelity.
pub fn pgas_report(bench: &dyn Benchmark, spec: ClusterSpec) -> PgasReport {
    let ck = compile_source(&bench.source()).expect("compile");
    let mut pg = PgasCluster::new(spec, PgasConfig::modeled());
    let (args, _) = setup_args(bench, &ck.kernel, &mut pg);
    pg.launch(&ck, bench.launch(), &args)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
}

/// Roofline kernel time on a GPU.
pub fn gpu_time(bench: &dyn Benchmark, spec: GpuSpec) -> f64 {
    let ck = compile_source(&bench.source()).expect("compile");
    let mut gpu = GpuDevice::new(spec);
    let (args, _) = setup_args(bench, &ck.kernel, &mut gpu);
    gpu.time_only(&ck.kernel, bench.launch(), &args)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
}

/// Best (minimum) CuCC time across the given node counts; returns
/// `(best_nodes, best_time)`.
pub fn best_cucc(bench: &dyn Benchmark, base: ClusterSpec, node_counts: &[u32]) -> (u32, f64) {
    node_counts
        .iter()
        .map(|&n| (n, cucc_report(bench, base.clone().with_nodes(n)).time()))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("at least one node count")
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Pretty banner for a figure harness.
pub fn banner(figure: &str, caption: &str) {
    println!("\n================================================================");
    println!("{figure}: {caption}");
    println!("================================================================");
}

/// Format seconds adaptively.
pub fn fmt_time(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.3} s")
    } else if t >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else {
        format!("{:.2} µs", t * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_workloads::{perf::VecCopy, Scale};

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn harness_helpers_run() {
        let b = VecCopy::new(Scale::Test);
        let spec = ClusterSpec::simd_focused().with_nodes(2);
        let r = cucc_report(&b, spec.clone());
        assert!(r.time() > 0.0);
        let p = pgas_report(&b, spec.clone());
        assert!(p.time() > 0.0);
        let g = gpu_time(&b, GpuSpec::a100());
        assert!(g > 0.0);
        let (_, best) = best_cucc(&b, spec, &[1, 2]);
        assert!(best > 0.0);
    }

    #[test]
    fn fmt_time_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
    }
}
