//! Criterion microbenchmarks of the CuCC pipeline components: the mini-CUDA
//! front-end, the Allgather-distributable analysis, the instrumented
//! interpreter and the functional collectives. These measure *real* wall
//! time of the framework itself (not simulated time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use cucc_analysis::{analyze, plan_launch};
use cucc_core::compile_source;
use cucc_exec::{execute_block, Arg, MemPool};
use cucc_ir::{parse_kernel, LaunchConfig};
use cucc_net::{allgather, AllgatherAlgo, AllgatherPlacement, NetModel};
use cucc_workloads::{perf::Kmeans, Benchmark, Scale};

const LISTING1: &str = "__global__ void vec_copy(char* src, char* dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}";

fn bench_frontend(c: &mut Criterion) {
    let kmeans_src = Kmeans::new(Scale::Test).source();
    c.bench_function("parse/listing1", |b| {
        b.iter(|| parse_kernel(std::hint::black_box(LISTING1)).unwrap())
    });
    c.bench_function("parse/kmeans", |b| {
        b.iter(|| parse_kernel(std::hint::black_box(&kmeans_src)).unwrap())
    });
}

fn bench_analysis(c: &mut Criterion) {
    let kernel = parse_kernel(&Kmeans::new(Scale::Test).source()).unwrap();
    c.bench_function("analysis/allgather_distributable+simd", |b| {
        b.iter(|| analyze(std::hint::black_box(&kernel)))
    });

    let ck = compile_source(LISTING1).unwrap();
    let mut pool = MemPool::new();
    let src = pool.alloc(65536);
    let dest = pool.alloc(65536);
    let args = vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(65536)];
    let launch = LaunchConfig::cover1(65536, 256);
    c.bench_function("analysis/plan_launch(256_blocks)", |b| {
        b.iter(|| {
            plan_launch(
                &ck.kernel,
                std::hint::black_box(&ck.analysis.verdict),
                launch,
                &args,
                &pool,
            )
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let ck = compile_source(LISTING1).unwrap();
    let mut pool = MemPool::new();
    let src = pool.alloc(65536);
    let dest = pool.alloc(65536);
    let args = vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(65536)];
    let launch = LaunchConfig::cover1(65536, 256);
    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(256));
    g.bench_function("vec_copy_block(256_threads)", |b| {
        b.iter(|| execute_block(&ck.kernel, launch, 0, &args, &mut pool).unwrap())
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let model = NetModel::infiniband_100g();
    let mut g = c.benchmark_group("allgather_functional");
    #[allow(clippy::single_element_loop)] // sweep list; add (nodes, unit) configs here
    for (nodes, unit) in [(8usize, 1usize << 17)] {
        let total = nodes * unit;
        g.throughput(Throughput::Bytes((total * (nodes - 1)) as u64));
        g.bench_function(format!("ring/{nodes}x{}KiB", unit >> 10), |b| {
            b.iter_batched(
                || (0..nodes).map(|_| vec![0u8; total]).collect::<Vec<_>>(),
                |mut regions| {
                    let mut views: Vec<&mut [u8]> =
                        regions.iter_mut().map(|r| r.as_mut_slice()).collect();
                    allgather(
                        &mut views,
                        &vec![unit as u64; nodes],
                        &model,
                        AllgatherAlgo::Ring,
                        AllgatherPlacement::InPlace,
                    )
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    use cucc_cluster::ClusterSpec;
    use cucc_core::{CuccCluster, RuntimeConfig};
    use cucc_workloads::setup_args;
    let bench = cucc_workloads::perf::VecCopy::new(Scale::Test);
    let ck = compile_source(&bench.source()).unwrap();
    c.bench_function("end_to_end/veccopy_2nodes_functional", |b| {
        b.iter(|| {
            let mut cl = CuccCluster::with_options(
                ClusterSpec::simd_focused().with_nodes(2),
                RuntimeConfig::default(),
            );
            let (args, _) = setup_args(&bench, &ck.kernel, &mut cl);
            cl.launch(&ck, bench.launch(), &args).unwrap()
        })
    });
}

fn bench_transforms(c: &mut Criterion) {
    use cucc_core::split_blocks;
    use cucc_ir::optimize;
    let kmeans_src = Kmeans::new(Scale::Test).source();
    c.bench_function("optimize/kmeans", |b| {
        b.iter_batched(
            || parse_kernel(&kmeans_src).unwrap(),
            |mut k| optimize(&mut k),
            BatchSize::SmallInput,
        )
    });
    let saxpy = parse_kernel(LISTING1).unwrap();
    let launch = LaunchConfig::cover1(65536, 256);
    c.bench_function("split_blocks/x8", |b| {
        b.iter(|| split_blocks(std::hint::black_box(&saxpy), launch, 8).unwrap())
    });
}

fn bench_oracle(c: &mut Criterion) {
    use cucc_analysis::{plan_launch, verify_plan, Plan};
    let ck = compile_source(LISTING1).unwrap();
    let mut pool = MemPool::new();
    let src = pool.alloc(65536);
    let dest = pool.alloc(65536);
    let args = vec![Arg::Buffer(src), Arg::Buffer(dest), Arg::int(65536)];
    let launch = LaunchConfig::cover1(65536, 256);
    let Plan::ThreePhase(tp) = plan_launch(&ck.kernel, &ck.analysis.verdict, launch, &args, &pool)
    else {
        panic!("expected plan");
    };
    c.bench_function("oracle/verify_plan(256_blocks)", |b| {
        b.iter(|| verify_plan(&ck.kernel, launch, &args, &pool, &tp).unwrap())
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_analysis,
    bench_interpreter,
    bench_collectives,
    bench_transforms,
    bench_oracle,
    bench_end_to_end
);
criterion_main!(benches);
