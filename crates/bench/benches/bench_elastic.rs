//! Elasticity bench — node-join repartition vs staying degraded, and
//! checkpoint/restore cost against state size.
//!
//! Part 1 compares, on the simulated clock, a job growing from 4 to 8
//! nodes through scripted `join:` events against the same job pinned at 4
//! nodes, and a mid-launch kill whose geometry allows the §6 re-partition
//! against one that forces degraded (replicated-on-survivors) completion.
//! Part 2 measures wall-clock checkpoint serialization and restore across
//! growing state sizes. Every elastic run must reproduce the healthy
//! run's memory bit-for-bit. Writes `BENCH_elastic.json` at the
//! repository root.

use cucc_bench::banner;
use cucc_cluster::ClusterSpec;
use cucc_core::{compile_source, CompiledKernel, CuccCluster, FaultPlan, RuntimeConfig};
use cucc_exec::Arg;
use cucc_ir::LaunchConfig;

const SAXPY: &str = "__global__ void saxpy(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

/// Geometry whose dead-node slice re-partitions evenly across the 7
/// survivors of an 8-node cluster, and across the 3 survivors of 4.
const N_BALANCED: usize = 21 * 8 * 256;
/// Large power-of-two grid: a kill at 8 nodes leaves 7 survivors that
/// the distribution chunk count cannot divide onto — degraded.
const N_DEGRADED: usize = 1 << 20;

fn make(nodes: u32, faults: FaultPlan) -> CuccCluster {
    CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::builder().faults(faults).build(),
    )
}

struct Outcome {
    sim_time: f64,
    degraded: bool,
    reexecuted_blocks: u64,
    memory: Vec<u8>,
}

/// Upload, run the kernel twice (two launch boundaries), download.
fn run_twice(ck: &CompiledKernel, nodes: u32, n: usize, faults: FaultPlan) -> Outcome {
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 100.0).collect();
    let ys: Vec<f32> = (0..n).map(|i| 50.0 - i as f32 * 0.125).collect();
    let mut cl = make(nodes, faults);
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    cl.upload::<f32>(x, &xs).expect("upload x");
    cl.upload::<f32>(y, &ys).expect("upload y");
    let args = [
        Arg::Buffer(x),
        Arg::Buffer(y),
        Arg::float(2.0),
        Arg::int(n as i64),
    ];
    let launch = LaunchConfig::cover1(n as u64, 256);
    let t0 = cl.clock();
    let r1 = cl.launch(ck, launch, &args).expect("launch 1");
    let r2 = cl.launch(ck, launch, &args).expect("launch 2");
    Outcome {
        sim_time: cl.clock() - t0,
        degraded: r1.faults.degraded || r2.faults.degraded,
        reexecuted_blocks: r1.faults.reexecuted_blocks + r2.faults.reexecuted_blocks,
        memory: cl.download::<u8>(y).expect("download y"),
    }
}

/// A plan that grows the cluster from `from` to `to` nodes just after the
/// first launch begins: growth joins are launch-boundary events, so the
/// second launch runs on the enlarged communicator.
fn growth_plan(from: u32, to: u32, after: f64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for node in from..to {
        plan = plan.join(node, after + 1e-9);
    }
    plan
}

fn main() {
    banner(
        "Elastic",
        "join-driven growth, repartition vs degraded, checkpoint cost",
    );
    let ck = compile_source(SAXPY).expect("compile saxpy");

    // ---- Part 1: growth and recovery on the simulated clock ----------
    let upload_clock = {
        // The uploads' simulated duration fixes when the first launch
        // starts; growth joins are timestamped just after it.
        let mut cl = make(4, FaultPlan::none());
        let x = cl.alloc(N_BALANCED * 4);
        let y = cl.alloc(N_BALANCED * 4);
        cl.upload::<f32>(x, &vec![0.0; N_BALANCED]).unwrap();
        cl.upload::<f32>(y, &vec![0.0; N_BALANCED]).unwrap();
        cl.clock()
    };

    let clean4 = run_twice(&ck, 4, N_BALANCED, FaultPlan::none());
    let clean8 = run_twice(&ck, 8, N_BALANCED, FaultPlan::none());
    let grown = run_twice(&ck, 4, N_BALANCED, growth_plan(4, 8, upload_clock));
    assert_eq!(
        grown.memory, clean4.memory,
        "grow-to-8 run diverges from the 4-node run"
    );
    assert!(!grown.degraded);

    let clean8_deg = run_twice(&ck, 8, N_DEGRADED, FaultPlan::none());
    let repart = run_twice(&ck, 8, N_BALANCED, FaultPlan::none().kill(7, 0.0));
    let degraded = run_twice(&ck, 8, N_DEGRADED, FaultPlan::none().kill(7, 0.0));
    assert!(
        !repart.degraded,
        "balanced geometry must re-partition, not degrade"
    );
    assert!(
        degraded.degraded,
        "indivisible geometry must degrade to replicated"
    );
    assert_eq!(repart.memory, clean8.memory, "repartition memory diverges");
    assert_eq!(
        degraded.memory, clean8_deg.memory,
        "degraded memory diverges"
    );

    println!(
        "{:<22} {:>7} {:>12} {:>10} {:>8}",
        "scenario", "nodes", "simulated", "vs clean", "reexec"
    );
    let mut scenario_rows = String::new();
    for (name, nodes, o, base) in [
        ("clean@4", 4u32, &clean4, &clean4),
        ("clean@8", 8, &clean8, &clean8),
        ("grow:4->8", 4, &grown, &clean4),
        ("kill@8:repartition", 8, &repart, &clean8),
        ("kill@8:degraded", 8, &degraded, &clean8_deg),
    ] {
        let rel = o.sim_time / base.sim_time;
        println!(
            "{:<22} {:>7} {:>9.3} ms {:>9.2}x {:>8}{}",
            name,
            nodes,
            o.sim_time * 1e3,
            rel,
            o.reexecuted_blocks,
            if o.degraded { "  (degraded)" } else { "" }
        );
        if !scenario_rows.is_empty() {
            scenario_rows.push_str(",\n");
        }
        scenario_rows.push_str(&format!(
            "    {{\"scenario\": \"{name}\", \"nodes\": {nodes}, \
             \"simulated_s\": {:.9}, \"vs_clean\": {rel:.4}, \
             \"reexecuted_blocks\": {}, \"degraded\": {}}}",
            o.sim_time, o.reexecuted_blocks, o.degraded
        ));
    }

    // ---- Part 2: checkpoint/restore wall time vs state size ----------
    println!(
        "\n{:<14} {:>12} {:>14} {:>12}",
        "state", "image", "checkpoint", "restore"
    );
    let mut ckpt_rows = String::new();
    for elems in [1usize << 16, 1 << 18, 1 << 20, 1 << 22] {
        let data: Vec<f32> = (0..elems).map(|i| i as f32 * 0.5).collect();
        let mut cl = make(4, FaultPlan::none());
        let x = cl.alloc(elems * 4);
        let y = cl.alloc(elems * 4);
        cl.upload::<f32>(x, &data).unwrap();
        cl.upload::<f32>(y, &data).unwrap();
        cl.launch(
            &ck,
            LaunchConfig::cover1(elems as u64, 256),
            &[
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::float(2.0),
                Arg::int(elems as i64),
            ],
        )
        .unwrap();
        let reference = cl.download::<u8>(y).unwrap();

        let path = std::env::temp_dir().join(format!("cucc-bench-elastic-{elems}.ckpt"));
        let w0 = std::time::Instant::now();
        let image_bytes = cl.checkpoint_to(&path).expect("checkpoint");
        let t_ckpt = w0.elapsed().as_secs_f64();
        let w1 = std::time::Instant::now();
        let mut restored = CuccCluster::restore_from(
            ClusterSpec::simd_focused().with_nodes(4),
            RuntimeConfig::default(),
            &path,
        )
        .expect("restore");
        let t_restore = w1.elapsed().as_secs_f64();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            restored.download::<u8>(y).unwrap(),
            reference,
            "restored memory diverges at {elems} elems"
        );

        let state_bytes = elems * 8; // two f32 buffers
        println!(
            "{:>10} KiB {:>8} KiB {:>11.3} ms {:>9.3} ms",
            state_bytes / 1024,
            image_bytes / 1024,
            t_ckpt * 1e3,
            t_restore * 1e3
        );
        if !ckpt_rows.is_empty() {
            ckpt_rows.push_str(",\n");
        }
        ckpt_rows.push_str(&format!(
            "    {{\"state_bytes\": {state_bytes}, \"image_bytes\": {image_bytes}, \
             \"checkpoint_s\": {t_ckpt:.9}, \"restore_s\": {t_restore:.9}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"elastic\",\n  \"unit\": \"simulated_seconds|wall_seconds\",\n  \
         \"scenarios\": [\n{scenario_rows}\n  ],\n  \"checkpoint\": [\n{ckpt_rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_elastic.json");
    std::fs::write(path, &json).expect("write BENCH_elastic.json");
    println!("\nwrote {path}");
}
