//! Graph bench — capture/replay speedup and Allgather elision savings.
//!
//! Captures a ping-pong chain of slice-local producer→consumer launches
//! into a launch graph and replays it, comparing against the same ops
//! issued as plain `launch` calls:
//!
//! * **wall-clock speedup** — replay serves every schedule from the
//!   cache (no probe, no profiler) and elides every gather (no
//!   functional copy, no cross-pool consistency sweep);
//! * **wire-byte reduction** — elided gathers move zero bytes on the
//!   simulated wire.
//!
//! The replayed memory must stay bit-identical to the uncaptured run.
//! Writes `BENCH_graph.json` and a Perfetto trace of one replay
//! (`TRACE_graph.json`) at the repository root.

use cucc_bench::banner;
use cucc_cluster::ClusterSpec;
use cucc_core::{compile_source, CuccCluster, GraphCapture, ReplayStats, RuntimeConfig};
use cucc_exec::Arg;
use cucc_ir::LaunchConfig;

/// Unguarded slice-local step: dense writes, no tail block, reads only
/// its own index — every gather in the chain is elidable.
const STEP: &str = "__global__ void step(float* y, float* x) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    y[id] = x[id] * 1.0009765f + 0.25f;
}";

const ELEMS: usize = 16 * 256;
const NODES: u32 = 4;
const CHAIN: usize = 8;
const ITERS: usize = 50;

fn launch_cfg() -> LaunchConfig {
    LaunchConfig::cover1(ELEMS as u64, 256)
}

fn cluster() -> CuccCluster {
    CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(NODES),
        RuntimeConfig::default(),
    )
}

fn main() {
    banner(
        "Graph",
        "launch-graph replay vs uncaptured launches (schedule cache + gather elision)",
    );
    let ck = compile_source(STEP).expect("compile step kernel");
    let xs: Vec<f32> = (0..ELEMS).map(|i| (i % 97) as f32 * 0.125 - 4.0).collect();
    let init: Vec<u8> = xs.iter().flat_map(|v| v.to_le_bytes()).collect();

    // Captured side: upload + CHAIN ping-pong launches, replayed ITERS times.
    let mut a = cluster();
    let ba = a.alloc(ELEMS * 4);
    let bb = a.alloc(ELEMS * 4);
    let mut cap = GraphCapture::new();
    cap.upload(ba, init.clone());
    for i in 0..CHAIN {
        let (dst, src) = if i % 2 == 0 { (bb, ba) } else { (ba, bb) };
        cap.launch(&ck, launch_cfg(), &[Arg::Buffer(dst), Arg::Buffer(src)]);
    }
    let graph = cap.finish();

    let wall0 = std::time::Instant::now();
    let mut total = ReplayStats::default();
    for _ in 0..ITERS {
        let s = a.graph_replay(&graph).expect("replay");
        total.accumulate(&s);
    }
    let replay_wall = wall0.elapsed().as_secs_f64();

    // Uncaptured side: identical op sequence through the plain launch path.
    let mut b = cluster();
    let ca = b.alloc(ELEMS * 4);
    let cb = b.alloc(ELEMS * 4);
    let mut plain_wire = 0u64;
    let wall0 = std::time::Instant::now();
    for _ in 0..ITERS {
        b.upload::<u8>(ca, &init).expect("upload");
        for i in 0..CHAIN {
            let (dst, src) = if i % 2 == 0 { (cb, ca) } else { (ca, cb) };
            let report = b
                .launch(&ck, launch_cfg(), &[Arg::Buffer(dst), Arg::Buffer(src)])
                .expect("launch");
            plain_wire += report.wire_bytes;
        }
    }
    let plain_wall = wall0.elapsed().as_secs_f64();

    // Correctness gate: replayed memory is bit-identical to the
    // uncaptured run (downloads materialize any pending gathers).
    assert_eq!(
        a.download::<u8>(ba).expect("download"),
        b.download::<u8>(ca).expect("download"),
        "buffer a diverged from the uncaptured run"
    );
    assert_eq!(
        a.download::<u8>(bb).expect("download"),
        b.download::<u8>(cb).expect("download"),
        "buffer b diverged from the uncaptured run"
    );

    let speedup = plain_wall / replay_wall.max(1e-12);
    let launches = (ITERS * CHAIN) as u64;
    let wire_reduction = if plain_wire > 0 {
        1.0 - total.wire_bytes as f64 / plain_wire as f64
    } else {
        0.0
    };
    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "side", "wall", "wire bytes", "gathers"
    );
    println!(
        "{:<28} {:>9.3} ms {:>12} {:>9}",
        "uncaptured launches",
        plain_wall * 1e3,
        plain_wire,
        launches
    );
    println!(
        "{:<28} {:>9.3} ms {:>12} {:>9}",
        "graph replay",
        replay_wall * 1e3,
        total.wire_bytes,
        total.gathers_full
    );
    println!(
        "\nreplay speedup {speedup:.2}x, wire bytes {} -> {} ({:.1}% reduction), \
         cache hit rate {:.1}%, {} gathers elided / {} narrowed",
        plain_wire,
        total.wire_bytes,
        wire_reduction * 100.0,
        total.cache_hit_rate() * 100.0,
        total.gathers_elided,
        total.gathers_narrowed
    );
    assert!(
        total.gathers_elided == launches,
        "every gather in the slice-local chain must elide"
    );
    assert!(
        speedup >= 1.3,
        "replay must be at least 1.3x faster than uncaptured launches (got {speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"graph\",\n  \"nodes\": {NODES},\n  \"chain\": {CHAIN},\n  \
         \"iterations\": {ITERS},\n  \"elems\": {ELEMS},\n  \
         \"uncaptured_wall_s\": {plain_wall:.9},\n  \"replay_wall_s\": {replay_wall:.9},\n  \
         \"replay_speedup\": {speedup:.4},\n  \"uncaptured_wire_bytes\": {plain_wire},\n  \
         \"replay_wire_bytes\": {},\n  \"wire_reduction\": {wire_reduction:.6},\n  \
         \"wire_bytes_saved\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"gathers_elided\": {},\n  \"gathers_narrowed\": {},\n  \"materializations\": {}\n}}\n",
        total.wire_bytes,
        total.wire_bytes_saved,
        total.cache_hits,
        total.cache_misses,
        total.gathers_elided,
        total.gathers_narrowed,
        total.materializations
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_graph.json");
    std::fs::write(path, &json).expect("write BENCH_graph.json");
    println!("\nwrote {path}");

    let trace = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_graph.json");
    std::fs::write(trace, a.timeline().to_chrome_json()).expect("write TRACE_graph.json");
    println!("wrote {trace} (load in https://ui.perfetto.dev)");
}
