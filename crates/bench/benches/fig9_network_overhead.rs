//! Figure 9 — Network overhead in the SIMD-Focused cluster.
//!
//! Communication share of total runtime, per benchmark and cluster size.
//! Expected shape: negligible for compute-heavy kernels (FIR,
//! BinomialOption), dominant for memory-movement kernels (Transpose) at
//! scale — the reason Transpose stops scaling in Figure 8.

use cucc_bench::{banner, cucc_report_traced};
use cucc_cluster::ClusterSpec;
use cucc_workloads::{perf_suite, Scale};

fn main() {
    banner("Figure 9", "communication share of runtime (SIMD-Focused)");
    let node_counts = [2u32, 4, 8, 16, 32];
    print!("{:<16}", "benchmark");
    for n in node_counts {
        print!(" {:>8}", format!("{n} nodes"));
    }
    println!();
    for bench in perf_suite(Scale::Paper) {
        print!("{:<16}", bench.name());
        for n in node_counts {
            // The comm/total split is read off the trace timeline: the
            // network track carries the collectives, the span horizon is
            // the whole launch.
            let (r, tl) =
                cucc_report_traced(bench.as_ref(), ClusterSpec::simd_focused().with_nodes(n));
            let comm = tl.comm_time();
            let total = tl.end_time();
            let frac = if total > 0.0 { comm / total } else { 0.0 };
            debug_assert_eq!(
                frac.to_bits(),
                r.times.comm_fraction().to_bits(),
                "timeline and report disagree"
            );
            print!(" {:>7.1}%", frac * 100.0);
        }
        println!();
    }
    println!("\npaper: Transpose communication-bound at scale; FIR/BinomialOption");
    println!("communication negligible relative to computation");
}
