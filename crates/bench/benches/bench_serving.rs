//! Multi-tenant serving bench — sustained launches/sec and tail latency
//! under load, naive FIFO vs the admission-controlled fair scheduler.
//!
//! A 1000-job synthetic stream from 8 tenants (linearly skewed arrival
//! mix, exponential interarrivals well below the service rate — the
//! cluster is overloaded) is driven through the `cucc-core::serve`
//! front-end twice: once with the naive single FIFO queue (head-of-line
//! blocking, no admission control) and once with the fair policy
//! (weighted deficit counter + EASY backfill + per-tenant queue-depth
//! admission). Both runs execute every placed job functionally on the
//! shared cluster; the fair run must improve p99 end-to-end latency.
//! Writes `BENCH_serving.json` and the fair run's Queue/Admit/Place
//! timeline to `TRACE_serving.json` at the repository root.

use cucc_bench::banner;
use cucc_cluster::ClusterSpec;
use cucc_core::{synthetic_stream, JobServer, ServeConfig, ServePolicy, ServeReport};

const JOBS: usize = 1000;
const TENANTS: u32 = 8;
const NODES: u32 = 8;
const SEED: u64 = 42;
/// Mean interarrival gap, seconds. Service times at these problem sizes
/// are a few microseconds per job, so a 1 µs gap overloads the pool and
/// queues actually form.
const GAP: f64 = 1e-6;
/// Per-tenant admission limit for the fair policy.
const DEPTH: usize = 8;

fn run(policy: ServePolicy, queue_depth: usize) -> (ServeReport, String) {
    let mut srv = JobServer::new(
        ClusterSpec::simd_focused().with_nodes(NODES),
        ServeConfig {
            policy,
            queue_depth,
            ..ServeConfig::default()
        },
    )
    .expect("build server");
    let stream = synthetic_stream(JOBS, TENANTS, SEED, GAP);
    let report = srv.run(&stream).expect("serve stream");
    (report, srv.timeline().to_chrome_json())
}

fn policy_json(label: &str, r: &ServeReport) -> String {
    let mut classes = String::new();
    for c in &r.per_class {
        if !classes.is_empty() {
            classes.push_str(",\n");
        }
        classes.push_str(&format!(
            "        {{\"class\": \"{}\", \"jobs\": {}, \
             \"p50_queue_s\": {:.9}, \"p99_queue_s\": {:.9}, \
             \"p50_total_s\": {:.9}, \"p99_total_s\": {:.9}}}",
            c.class.label(),
            c.jobs,
            c.p50_queue,
            c.p99_queue,
            c.p50_total,
            c.p99_total
        ));
    }
    let mut tenants = String::new();
    for t in &r.per_tenant {
        if !tenants.is_empty() {
            tenants.push_str(",\n");
        }
        tenants.push_str(&format!(
            "        {{\"tenant\": {}, \"admitted\": {}, \"rejected\": {}, \
             \"completed\": {}, \"cache_hit_rate\": {:.4}, \
             \"p99_total_s\": {:.9}}}",
            t.tenant,
            t.admitted,
            t.rejected,
            t.completed,
            t.cache_hit_rate(),
            t.p99_total
        ));
    }
    format!(
        "    {{\n      \"policy\": \"{label}\",\n      \"submitted\": {}, \
         \"admitted\": {}, \"rejected\": {}, \"completed\": {},\n      \
         \"makespan_s\": {:.9}, \"launches_per_sec\": {:.3},\n      \
         \"p50_total_s\": {:.9}, \"p99_total_s\": {:.9},\n      \
         \"cache_hits\": {}, \"cache_misses\": {},\n      \
         \"classes\": [\n{classes}\n      ],\n      \
         \"tenants\": [\n{tenants}\n      ]\n    }}",
        r.submitted,
        r.admitted,
        r.rejected,
        r.completed,
        r.makespan,
        r.launches_per_sec,
        r.p50_total,
        r.p99_total,
        r.cache.hits,
        r.cache.misses
    )
}

fn main() {
    banner(
        "Serving",
        "multi-tenant job stream: FIFO vs admission-controlled fair scheduling",
    );
    println!(
        "{JOBS} jobs / {TENANTS} tenants on {NODES} nodes, mean gap {:.1} us\n",
        GAP * 1e6
    );

    let (fifo, _) = run(ServePolicy::Fifo, 0);
    let (fair, fair_trace) = run(ServePolicy::Fair, DEPTH);

    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>14} {:>12} {:>12}",
        "policy", "admitted", "rejected", "complete", "launches/sec", "p50 total", "p99 total"
    );
    for (label, r) in [("fifo", &fifo), ("fair", &fair)] {
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>14.1} {:>9.3} ms {:>9.3} ms",
            label,
            r.admitted,
            r.rejected,
            r.completed,
            r.launches_per_sec,
            r.p50_total * 1e3,
            r.p99_total * 1e3
        );
    }
    println!("\nper-class p99 total latency (ms):");
    for r in [&fifo, &fair] {
        for c in &r.per_class {
            println!(
                "  {:<6} {:<12} {:>9.3} ms ({} jobs)",
                r.policy.label(),
                c.class.label(),
                c.p99_total * 1e3,
                c.jobs
            );
        }
    }

    let improvement = fifo.p99_total / fair.p99_total.max(1e-12);
    println!("\nfair p99 improvement over naive FIFO: {improvement:.2}x");
    assert_eq!(
        fifo.completed, fifo.admitted,
        "FIFO must drain every admitted job"
    );
    assert_eq!(
        fair.completed, fair.admitted,
        "fair must drain every admitted job"
    );
    assert!(
        fair.p99_total < fifo.p99_total,
        "admission-controlled fair scheduling must improve p99 \
         (fifo {:.3} ms vs fair {:.3} ms)",
        fifo.p99_total * 1e3,
        fair.p99_total * 1e3
    );
    assert!(fair.cache.hits > 0, "repeated tenant kernels must warm-hit");

    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"unit\": \"simulated_seconds\",\n  \
         \"jobs\": {JOBS}, \"tenants\": {TENANTS}, \"nodes\": {NODES}, \
         \"mean_gap_s\": {GAP:e}, \"queue_depth\": {DEPTH},\n  \
         \"p99_improvement\": {improvement:.4},\n  \"policies\": [\n{},\n{}\n  ]\n}}\n",
        policy_json("fifo", &fifo),
        policy_json("fair", &fair)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("wrote {path}");

    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_serving.json");
    std::fs::write(trace_path, &fair_trace).expect("write TRACE_serving.json");
    println!("wrote {trace_path}");
}
