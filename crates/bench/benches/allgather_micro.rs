//! §2.3 microbenchmark — Allgather placement and balance.
//!
//! The design-space observation CuCC is built on: **balanced in-place**
//! Allgather consistently wins over out-of-place and imbalanced variants,
//! which is why the three-phase workflow is engineered to make balanced
//! in-place gathering legal.

use cucc_bench::{banner, fmt_time};
use cucc_net::{allgather_traced, AllgatherAlgo, AllgatherPlacement, NetModel};
use cucc_trace::{Category, Timeline};

/// Run one Allgather through the traced collective and read time and wire
/// traffic back off the recorded timeline.
fn run(n: usize, sizes: &[u64], placement: AllgatherPlacement) -> (f64, u64) {
    let total: u64 = sizes.iter().sum();
    let mut regions: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; total as usize]).collect();
    let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
    let mut tl = Timeline::new();
    allgather_traced(
        &mut views,
        sizes,
        &NetModel::infiniband_100g(),
        AllgatherAlgo::Ring,
        placement,
        &mut tl,
        0.0,
        "allgather",
    );
    (tl.time_in(Category::Allgather), tl.wire_bytes())
}

fn main() {
    banner(
        "§2.3 micro",
        "Allgather placement × balance (ring, 100 Gb/s IB)",
    );
    for (nodes, total_mb) in [(2usize, 64u64), (8, 64), (8, 256), (32, 64)] {
        let total = total_mb << 20;
        let balanced: Vec<u64> = vec![total / nodes as u64; nodes];
        // Imbalanced: segment sizes proportional to rank+1 (the paper's
        // 2-node N/4 vs 3N/4 example generalized), same total.
        let weight_sum: u64 = (1..=nodes as u64).sum();
        let mut imbalanced: Vec<u64> = (1..=nodes as u64).map(|w| total * w / weight_sum).collect();
        let assigned: u64 = imbalanced.iter().sum();
        imbalanced[nodes - 1] += total - assigned;

        println!("\n{nodes} nodes, {total_mb} MiB total:");
        let mut rows = Vec::new();
        for (balance_name, sizes) in [("balanced", &balanced), ("imbalanced", &imbalanced)] {
            for (place_name, placement) in [
                ("in-place", AllgatherPlacement::InPlace),
                ("out-of-place", AllgatherPlacement::OutOfPlace),
            ] {
                let (t, wire) = run(nodes, sizes, placement);
                rows.push((format!("{balance_name:>10} {place_name:<12}"), t, wire));
            }
        }
        let best = rows
            .iter()
            .map(|(_, t, _)| *t)
            .fold(f64::INFINITY, f64::min);
        for (name, t, wire) in rows {
            let marker = if t == best { "  ← fastest" } else { "" };
            println!(
                "  {name} {:>12}  ({:>6.1} MiB wire){marker}",
                fmt_time(t),
                wire as f64 / (1 << 20) as f64
            );
        }
    }
    println!("\npaper: \"balanced-in-place Allgather consistently achieves the");
    println!("highest performance\" — CuCC uses it exclusively");
}
