//! §2.3 microbenchmark — Allgather placement and balance.
//!
//! The design-space observation CuCC is built on: **balanced in-place**
//! Allgather consistently wins over out-of-place and imbalanced variants,
//! which is why the three-phase workflow is engineered to make balanced
//! in-place gathering legal.

use cucc_bench::{banner, fmt_time};
use cucc_net::{allgather, AllgatherAlgo, AllgatherPlacement, NetModel};

fn run(n: usize, sizes: &[u64], placement: AllgatherPlacement) -> f64 {
    let total: u64 = sizes.iter().sum();
    let mut regions: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; total as usize]).collect();
    let mut views: Vec<&mut [u8]> = regions.iter_mut().map(|r| r.as_mut_slice()).collect();
    allgather(
        &mut views,
        sizes,
        &NetModel::infiniband_100g(),
        AllgatherAlgo::Ring,
        placement,
    )
    .time
}

fn main() {
    banner("§2.3 micro", "Allgather placement × balance (ring, 100 Gb/s IB)");
    for (nodes, total_mb) in [(2usize, 64u64), (8, 64), (8, 256), (32, 64)] {
        let total = total_mb << 20;
        let balanced: Vec<u64> = vec![total / nodes as u64; nodes];
        // Imbalanced: segment sizes proportional to rank+1 (the paper's
        // 2-node N/4 vs 3N/4 example generalized), same total.
        let weight_sum: u64 = (1..=nodes as u64).sum();
        let mut imbalanced: Vec<u64> = (1..=nodes as u64)
            .map(|w| total * w / weight_sum)
            .collect();
        let assigned: u64 = imbalanced.iter().sum();
        imbalanced[nodes - 1] += total - assigned;

        println!("\n{nodes} nodes, {total_mb} MiB total:");
        let mut rows = Vec::new();
        for (balance_name, sizes) in [("balanced", &balanced), ("imbalanced", &imbalanced)] {
            for (place_name, placement) in [
                ("in-place", AllgatherPlacement::InPlace),
                ("out-of-place", AllgatherPlacement::OutOfPlace),
            ] {
                let t = run(nodes, sizes, placement);
                rows.push((format!("{balance_name:>10} {place_name:<12}"), t));
            }
        }
        let best = rows
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        for (name, t) in rows {
            let marker = if t == best { "  ← fastest" } else { "" };
            println!("  {name} {:>12}{marker}", fmt_time(t));
        }
    }
    println!("\npaper: \"balanced-in-place Allgather consistently achieves the");
    println!("highest performance\" — CuCC uses it exclusively");
}
