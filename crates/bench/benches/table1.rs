//! Table 1 — Cluster Specifications.

use cucc_bench::banner;
use cucc_cluster::table1_rows;
use cucc_gpu_model::GpuSpec;

fn main() {
    banner("Table 1", "Cluster Specifications");
    println!(
        "{:<15} {:>5}  {:<22} {:>5} {:>9} {:>12}  {:<12}",
        "Name", "Nodes", "Single Node Config.", "Year", "Cores/SMs", "FLOPs (Tera)", "Network"
    );
    for (name, nodes, config, year, cores, tflops, net) in table1_rows() {
        println!(
            "{:<15} {:>5}  {:<22} {:>5} {:>9} {:>12.2}  {:<12}",
            name, nodes, config, year, cores, tflops, net
        );
    }
    for gpu in [GpuSpec::a100(), GpuSpec::v100()] {
        println!(
            "{:<15} {:>5}  {:<22} {:>5} {:>9} {:>12.2}  {:<12}",
            format!("{} GPU", gpu.name.trim_start_matches("NVIDIA ")),
            1,
            gpu.name,
            gpu.year,
            gpu.sms,
            gpu.peak_flops / 1e12,
            "N/A"
        );
    }
    println!("\npaper Table 1: SIMD-Focused 32 nodes / 24 cores / 4.15 TF;");
    println!("               Thread-Focused 4 nodes / 128 cores / 8.19 TF;");
    println!("               A100 108 SMs / 19.5 TF; V100 80 SMs / 15.7 TF");
}
