//! Tree-walk interpreter vs bytecode engine vs the vectorized lane-array
//! tier: blocks/second on three representative kernels (elementwise SAXPY, a
//! shared-memory tile reverse with a barrier, and a compute-bound Horner
//! polynomial).
//!
//! All three launches exactly cover their data (`N = BLOCKS * THREADS`), so
//! the kernels need no tail guard — their segments are straight-line and
//! exercise the engines' dense modes; guarded/divergent and looping kernels
//! are covered by the equivalence suites and unit tests.
//!
//! Besides the criterion report, the harness re-measures each configuration
//! directly — at 1, 2, 4 and 8 intra-node workers — and writes
//! `BENCH_interp.json` at the repository root so docs and CI can quote the
//! numbers: one row per (kernel, worker count) with `tree`, `bytecode` and
//! `simd` blocks/s columns (`bytecode_speedup` is vs the serial tree walk,
//! `simd_speedup` is vs the bytecode engine at the *same* worker count),
//! plus steady-state `*_run_blocks_per_sec` (checked) and
//! `*_unchecked_blocks_per_sec` (range-certified, bounds-check-elided)
//! columns with compile + range analysis hoisted out of the timed region
//! — the schedule cache amortizes both across replays — so
//! `elide_speedup` (certified simd vs checked simd run-only, same worker
//! count) isolates the elision effect from per-launch compile jitter.
//!
//! The harness doubles as the perf-regression smoke: it panics if the
//! vectorized tier fails to beat the bytecode engine, or if the certified
//! unchecked path falls behind the checked path, on the saxpy or horner15
//! serial rows — so a CI bench run fails on a vectorization or elision
//! regression. Checked-vs-unchecked bit-identity (stats and memory) is
//! asserted before anything is timed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cucc_analysis::{certify_program, global_extents};
use cucc_exec::{
    execute_block_range, run_range, run_range_parallel, run_range_parallel_simd, run_range_simd,
    sanitize_launch, Arg, BufferId, CertMode, MemPool, Program,
};
use cucc_ir::{Axis, Expr, Kernel, KernelBuilder, LaunchConfig, Scalar};
use std::time::Instant;

const BLOCKS: u32 = 128;
const THREADS: u32 = 128;
const N: i64 = (BLOCKS as i64) * (THREADS as i64);
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Which launch arguments a kernel takes (all buffers are `f32[N]`).
#[derive(Clone, Copy)]
enum ArgSpec {
    /// `(x, y)`
    Xy,
    /// `(x, y, z, a)` — two inputs, one output, one scalar.
    XyzA,
}

fn global_tid(b: &mut KernelBuilder) -> cucc_ir::VarId {
    b.let_(
        "g",
        Expr::BlockIdx(Axis::X)
            .mul(Expr::BlockDim(Axis::X))
            .add(Expr::ThreadIdx(Axis::X)),
    )
}

/// `z[g] = a * x[g] + y[g]` — the elementwise multi-block baseline
/// (out-of-place, so loads and stores touch disjoint buffers).
fn saxpy() -> Kernel {
    let mut b = KernelBuilder::new("saxpy");
    let x = b.buffer("x", Scalar::F32);
    let y = b.buffer("y", Scalar::F32);
    let z = b.buffer("z", Scalar::F32);
    let a = b.scalar("a", Scalar::F32);
    let g = global_tid(&mut b);
    b.store(
        z,
        Expr::Var(g),
        a.clone()
            .mul(Expr::load(x, Expr::Var(g)))
            .add(Expr::load(y, Expr::Var(g))),
    );
    b.finish()
}

/// Stage a tile in shared memory, barrier, write it back reversed.
fn tile_reverse() -> Kernel {
    let mut b = KernelBuilder::new("tile_reverse");
    let x = b.buffer("x", Scalar::F32);
    let y = b.buffer("y", Scalar::F32);
    let tile = b.shared("tile", Scalar::F32, THREADS as usize);
    let g = global_tid(&mut b);
    b.store(tile, Expr::ThreadIdx(Axis::X), Expr::load(x, Expr::Var(g)));
    b.sync_threads();
    b.store(
        y,
        Expr::Var(g),
        Expr::load(
            tile,
            Expr::BlockDim(Axis::X)
                .sub(Expr::int(1))
                .sub(Expr::ThreadIdx(Axis::X)),
        ),
    );
    b.finish()
}

/// Degree-15 Horner polynomial per element — a compute-bound straight-line
/// chain of 30 dependent multiply/adds.
fn horner15() -> Kernel {
    let mut b = KernelBuilder::new("horner15");
    let xb = b.buffer("x", Scalar::F32);
    let yb = b.buffer("y", Scalar::F32);
    let g = global_tid(&mut b);
    let xv = b.let_("xv", Expr::load(xb, Expr::Var(g)));
    let mut acc = Expr::float(0.5);
    for i in 0..15 {
        acc = acc
            .mul(Expr::Var(xv))
            .add(Expr::float(0.25 + f64::from(i) * 0.125));
    }
    b.store(yb, Expr::Var(g), acc);
    b.finish()
}

fn setup(pool: &mut MemPool, spec: ArgSpec) -> Vec<Arg> {
    let x = pool.alloc_elems(Scalar::F32, N as usize);
    let y = pool.alloc_elems(Scalar::F32, N as usize);
    let xs: Vec<u8> = (0..N)
        .flat_map(|i| ((i % 257) as f32 * 0.01 - 1.0).to_le_bytes())
        .collect();
    let ys: Vec<u8> = (0..N)
        .flat_map(|i| (3.0 - i as f32 * 0.125).to_le_bytes())
        .collect();
    pool.write_all(x, &xs);
    pool.write_all(y, &ys);
    match spec {
        ArgSpec::Xy => vec![Arg::Buffer(x), Arg::Buffer(y)],
        ArgSpec::XyzA => {
            let z = pool.alloc_elems(Scalar::F32, N as usize);
            vec![
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::Buffer(z),
                Arg::float(1.0009765625),
            ]
        }
    }
}

/// Serial baselines, measured once per kernel.
struct SerialBase {
    tree: f64,
    /// Tree-walk with the dynamic sanitizer (write tracing on a scratch
    /// pool + interval sweep) — quantifies the `--sanitize` overhead.
    sanitize: f64,
}

/// One (kernel, worker count) configuration: bytecode vs vectorized with
/// compile inside the timed region (the historical columns), plus
/// steady-state run-only rows — compile + range analysis hoisted, as the
/// schedule cache amortizes them across replays — in checked and
/// range-certified (bounds-check-elided) flavours, so `elide_speedup`
/// isolates the elision effect from per-launch compile jitter.
struct WorkerRow {
    workers: usize,
    bytecode: f64,
    simd: f64,
    bytecode_run: f64,
    simd_run: f64,
    bytecode_unchecked: f64,
    simd_unchecked: f64,
}

/// Compile and attach `CertMode::Elide` certificates against the pool's
/// real allocation sizes; the dense exact-cover bench kernels must
/// certify every access or the elided rows would be measuring nothing.
fn compile_certified(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &MemPool,
) -> Program {
    let mut prog = Program::compile(kernel, launch, args).unwrap();
    let exts = global_extents(&prog, |b| (b.index() < pool.len()).then(|| pool.size_of(b)));
    let (certified, total) = certify_program(&mut prog, &exts, CertMode::Elide).stats();
    assert_eq!(
        certified, total,
        "bench kernel `{}` only certified {certified}/{total} accesses",
        kernel.name
    );
    prog
}

/// Best-of-`reps` blocks/second for every engine configuration, after an
/// equivalence sanity check between the serial engines. Compile-once cost
/// is part of the launch, so it stays inside the timed region for the
/// bytecode and simd configurations.
fn measure(
    kernel: &Kernel,
    launch: LaunchConfig,
    spec: ArgSpec,
    reps: usize,
) -> (SerialBase, Vec<WorkerRow>) {
    let mut pool_a = MemPool::new();
    let args = setup(&mut pool_a, spec);
    let mut pool_b = pool_a.clone();
    let mut pool_c = pool_a.clone();
    let mut pool_d = pool_a.clone();
    let mut pool_e = pool_a.clone();
    let nblocks = launch.num_blocks();

    let sa = execute_block_range(kernel, launch, 0..nblocks, &args, &mut pool_a).unwrap();
    let prog = Program::compile(kernel, launch, &args).unwrap();
    let sb = run_range(&prog, &mut pool_b, 0..nblocks).unwrap();
    assert_eq!(sa, sb, "engines disagree — refusing to benchmark");
    let sc = run_range_simd(&prog, &mut pool_c, 0..nblocks).unwrap();
    assert_eq!(sa, sc, "simd engine disagrees — refusing to benchmark");

    // Checked-vs-unchecked bit-identity: the certified elided path must
    // reproduce the checked path's stats and memory exactly.
    let prog_u = compile_certified(kernel, launch, &args, &pool_d);
    let sd = run_range(&prog_u, &mut pool_d, 0..nblocks).unwrap();
    assert_eq!(
        sa, sd,
        "certified bytecode disagrees — refusing to benchmark"
    );
    let se = run_range_simd(&prog_u, &mut pool_e, 0..nblocks).unwrap();
    assert_eq!(sa, se, "certified simd disagrees — refusing to benchmark");
    for i in 0..pool_a.len() {
        let id = BufferId(i as u32);
        assert_eq!(
            pool_a.bytes(id),
            pool_d.bytes(id),
            "certified bytecode memory diverged"
        );
        assert_eq!(
            pool_a.bytes(id),
            pool_e.bytes(id),
            "certified simd memory diverged"
        );
    }

    let bps = |secs: f64| nblocks as f64 / secs;
    let mut tree = f64::MAX;
    let mut sanitize = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        execute_block_range(kernel, launch, 0..nblocks, &args, &mut pool_a).unwrap();
        tree = tree.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let report = sanitize_launch(kernel, launch, &args, &pool_a);
        sanitize = sanitize.min(t.elapsed().as_secs_f64());
        assert!(report.clean(), "bench kernel flagged: {}", report.summary());
    }

    let mut rows = Vec::new();
    for workers in WORKER_COUNTS {
        // Pre-built programs for the steady-state (run-only) rows.
        let prog_run = Program::compile(kernel, launch, &args).unwrap();
        let prog_cert = compile_certified(kernel, launch, &args, &pool_d);
        let mut bytecode = f64::MAX;
        let mut simd = f64::MAX;
        let mut bytecode_r = f64::MAX;
        let mut simd_r = f64::MAX;
        let mut bytecode_u = f64::MAX;
        let mut simd_u = f64::MAX;
        for _ in 0..reps {
            let t = Instant::now();
            let prog = Program::compile(kernel, launch, &args).unwrap();
            if workers <= 1 {
                run_range(&prog, &mut pool_b, 0..nblocks).unwrap();
            } else {
                run_range_parallel(&prog, &mut pool_b, 0..nblocks, workers).unwrap();
            }
            bytecode = bytecode.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            let prog = Program::compile(kernel, launch, &args).unwrap();
            if workers <= 1 {
                run_range_simd(&prog, &mut pool_c, 0..nblocks).unwrap();
            } else {
                run_range_parallel_simd(&prog, &mut pool_c, 0..nblocks, workers).unwrap();
            }
            simd = simd.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            if workers <= 1 {
                run_range(&prog_run, &mut pool_b, 0..nblocks).unwrap();
            } else {
                run_range_parallel(&prog_run, &mut pool_b, 0..nblocks, workers).unwrap();
            }
            bytecode_r = bytecode_r.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            if workers <= 1 {
                run_range_simd(&prog_run, &mut pool_c, 0..nblocks).unwrap();
            } else {
                run_range_parallel_simd(&prog_run, &mut pool_c, 0..nblocks, workers).unwrap();
            }
            simd_r = simd_r.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            if workers <= 1 {
                run_range(&prog_cert, &mut pool_d, 0..nblocks).unwrap();
            } else {
                run_range_parallel(&prog_cert, &mut pool_d, 0..nblocks, workers).unwrap();
            }
            bytecode_u = bytecode_u.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            if workers <= 1 {
                run_range_simd(&prog_cert, &mut pool_e, 0..nblocks).unwrap();
            } else {
                run_range_parallel_simd(&prog_cert, &mut pool_e, 0..nblocks, workers).unwrap();
            }
            simd_u = simd_u.min(t.elapsed().as_secs_f64());
        }
        rows.push(WorkerRow {
            workers,
            bytecode: bps(bytecode),
            simd: bps(simd),
            bytecode_run: bps(bytecode_r),
            simd_run: bps(simd_r),
            bytecode_unchecked: bps(bytecode_u),
            simd_unchecked: bps(simd_u),
        });
    }
    (
        SerialBase {
            tree: bps(tree),
            sanitize: bps(sanitize),
        },
        rows,
    )
}

fn bench_engines(c: &mut Criterion) {
    let kernels: [(&str, Kernel, ArgSpec); 3] = [
        ("saxpy", saxpy(), ArgSpec::XyzA),
        ("tile_reverse", tile_reverse(), ArgSpec::Xy),
        ("horner15", horner15(), ArgSpec::Xy),
    ];
    let launch = LaunchConfig::new(BLOCKS, THREADS);

    let mut rows = String::new();
    for (name, kernel, spec) in &kernels {
        let mut pool = MemPool::new();
        let args = setup(&mut pool, *spec);
        let mut g = c.benchmark_group(format!("interp/{name}"));
        g.throughput(Throughput::Elements(launch.num_blocks()));
        g.bench_function("tree_walk", |b| {
            b.iter(|| {
                execute_block_range(kernel, launch, 0..launch.num_blocks(), &args, &mut pool)
                    .unwrap()
            })
        });
        g.bench_function("bytecode", |b| {
            b.iter(|| {
                let prog = Program::compile(kernel, launch, &args).unwrap();
                run_range(&prog, &mut pool, 0..launch.num_blocks()).unwrap()
            })
        });
        g.bench_function("simd", |b| {
            b.iter(|| {
                let prog = Program::compile(kernel, launch, &args).unwrap();
                run_range_simd(&prog, &mut pool, 0..launch.num_blocks()).unwrap()
            })
        });
        g.finish();

        let (base, wrows) = measure(kernel, launch, *spec, 9);
        for r in &wrows {
            println!(
                "{name:<14} w={} tree {:>10.0} blk/s | bytecode {:>10.0} blk/s ({:.2}x) | \
                 simd {:>10.0} blk/s ({:.2}x vs bytecode) | certified simd {:>10.0} blk/s \
                 ({:.2}x vs checked run-only {:>10.0}) | sanitize {:>10.0} blk/s",
                r.workers,
                base.tree,
                r.bytecode,
                r.bytecode / base.tree,
                r.simd,
                r.simd / r.bytecode,
                r.simd_unchecked,
                r.simd_unchecked / r.simd_run,
                r.simd_run,
                base.sanitize,
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"kernel\": \"{name}\", \"blocks\": {}, \"threads_per_block\": {}, \
                 \"workers\": {}, \"tree_blocks_per_sec\": {:.0}, \
                 \"bytecode_blocks_per_sec\": {:.0}, \"bytecode_speedup\": {:.2}, \
                 \"simd_blocks_per_sec\": {:.0}, \"simd_speedup\": {:.2}, \
                 \"bytecode_run_blocks_per_sec\": {:.0}, \
                 \"simd_run_blocks_per_sec\": {:.0}, \
                 \"bytecode_unchecked_blocks_per_sec\": {:.0}, \
                 \"simd_unchecked_blocks_per_sec\": {:.0}, \"elide_speedup\": {:.2}, \
                 \"sanitize_blocks_per_sec\": {:.0}, \"sanitize_overhead_vs_tree\": {:.2}}}",
                BLOCKS,
                THREADS,
                r.workers,
                base.tree,
                r.bytecode,
                r.bytecode / base.tree,
                r.simd,
                r.simd / r.bytecode,
                r.bytecode_run,
                r.simd_run,
                r.bytecode_unchecked,
                r.simd_unchecked,
                r.simd_unchecked / r.simd_run,
                base.sanitize,
                base.tree / base.sanitize,
            ));
        }
        // Perf-regression smoke: the vectorized tier must not lose to the
        // bytecode engine, and the certified bounds-check-elided path must
        // not lose to the checked path, on the dense compute kernels they
        // were built for.
        if matches!(*name, "saxpy" | "horner15") {
            let serial = &wrows[0];
            assert!(
                serial.simd >= serial.bytecode,
                "{name}: simd tier regressed below bytecode \
                 ({:.0} < {:.0} blocks/s serial)",
                serial.simd,
                serial.bytecode,
            );
            // 10% noise floor: on the compute-bound kernels the two
            // memory ops per element put elision within run-to-run
            // jitter, so only a real regression should fail CI. Both
            // sides are steady-state run-only measurements.
            assert!(
                serial.simd_unchecked >= serial.simd_run * 0.9,
                "{name}: certified simd path regressed below checked \
                 ({:.0} < {:.0} blocks/s serial run-only)",
                serial.simd_unchecked,
                serial.simd_run,
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"interp\",\n  \"unit\": \"blocks_per_sec\",\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
    std::fs::write(path, &json).expect("write BENCH_interp.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
