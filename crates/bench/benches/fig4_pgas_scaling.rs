//! Figure 4 — Performance of CPU cluster migration using PGAS.
//!
//! The paper's negative result: migrating the benchmarks with a UPC++-style
//! PGAS solution (fine-grained remote puts) yields poor scalability, and
//! memory-movement kernels get *slower* than single-node execution as soon
//! as remote traffic appears.

use cucc_bench::{banner, fmt_time, pgas_report};
use cucc_cluster::ClusterSpec;
use cucc_workloads::{perf_suite, Scale};

fn main() {
    banner(
        "Figure 4",
        "PGAS migration on the SIMD-Focused cluster (speedup over 1 node)",
    );
    let node_counts = [1u32, 2, 4, 8, 16, 32];
    print!("{:<16} {:>12}", "benchmark", "t(1 node)");
    for n in &node_counts[1..] {
        print!(" {:>8}", format!("x{n}"));
    }
    println!();
    let mut slowdowns = 0;
    for bench in perf_suite(Scale::Paper) {
        let t1 = pgas_report(bench.as_ref(), ClusterSpec::simd_focused().with_nodes(1)).time();
        print!("{:<16} {:>12}", bench.name(), fmt_time(t1));
        for &n in &node_counts[1..] {
            let t = pgas_report(bench.as_ref(), ClusterSpec::simd_focused().with_nodes(n)).time();
            let s = t1 / t;
            if s < 1.0 {
                slowdowns += 1;
            }
            print!(" {:>7.2}x", s);
        }
        println!();
    }
    println!(
        "\n{} of the multi-node configurations are SLOWER than single-node.",
        slowdowns
    );
    println!("paper: \"most GPU programs do not achieve high scalability, and some");
    println!("even slow down when scaled to distributed nodes\"");
}
