//! Figure 8 — CuCC scalability evaluation (strong scaling, both clusters).
//!
//! Fixed paper-scale problem sizes across cluster configurations. Expected
//! shapes: most kernels scale at small node counts; Kmeans and Transpose
//! stop scaling (or regress) on the 32-node SIMD-Focused cluster; FIR
//! scales near-linearly to 32 nodes; the Thread-Focused cluster scales less
//! because each node is far more capable.

use cucc_bench::{banner, cucc_report, fmt_time};
use cucc_cluster::ClusterSpec;
use cucc_workloads::{perf_suite, Scale};

fn main() {
    banner("Figure 8", "CuCC strong scaling (speedup over 1 node)");
    for (cluster_name, base, node_counts) in [
        (
            "SIMD-Focused",
            ClusterSpec::simd_focused(),
            vec![1u32, 2, 4, 8, 16, 32],
        ),
        (
            "Thread-Focused",
            ClusterSpec::thread_focused(),
            vec![1u32, 2, 4],
        ),
    ] {
        println!("\n--- {cluster_name} cluster ---");
        print!("{:<16} {:>12}", "benchmark", "t(1 node)");
        for n in &node_counts[1..] {
            print!(" {:>8}", format!("x{n}"));
        }
        println!();
        for bench in perf_suite(Scale::Paper) {
            let t1 = cucc_report(bench.as_ref(), base.clone().with_nodes(1)).time();
            print!("{:<16} {:>12}", bench.name(), fmt_time(t1));
            for &n in &node_counts[1..] {
                let t = cucc_report(bench.as_ref(), base.clone().with_nodes(n)).time();
                print!(" {:>7.2}x", t1 / t);
            }
            println!();
        }
    }
    println!("\npaper shapes: FIR near-linear to 32 nodes; Kmeans/Transpose regress");
    println!("at large SIMD-Focused scale; Thread-Focused scales less (e.g. paper");
    println!("Transpose: 2.88x on 4-node SIMD-Focused vs 1.14x on 4-node Thread-Focused)");
}
