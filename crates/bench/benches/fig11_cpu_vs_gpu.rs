//! Figure 11 — Runtime comparison between CPU clusters and GPUs.
//!
//! Best CPU-cluster runtime (across cluster sizes) per benchmark vs the
//! V100 and A100 roofline times. Paper headlines: geomean SIMD-Focused
//! 2.55×/4.14× slower than V100/A100; Thread-Focused 1.57×/2.54×; Transpose
//! *faster* on CPUs than on both GPUs; EP and GA 5–10× slower.

use cucc_bench::{banner, best_cucc, fmt_time, geomean, gpu_time};
use cucc_cluster::ClusterSpec;
use cucc_gpu_model::GpuSpec;
use cucc_workloads::{perf_suite, Scale};

fn main() {
    banner("Figure 11", "best CPU-cluster runtime vs V100/A100");
    println!(
        "{:<16} {:>11} {:>11} {:>14} {:>14} {:>9} {:>9}",
        "benchmark", "V100", "A100", "SIMD (best n)", "Thread (best n)", "S/V100", "T/V100"
    );
    let mut simd_vs_v100 = Vec::new();
    let mut simd_vs_a100 = Vec::new();
    let mut thread_vs_v100 = Vec::new();
    let mut thread_vs_a100 = Vec::new();
    for bench in perf_suite(Scale::Paper) {
        let v100 = gpu_time(bench.as_ref(), GpuSpec::v100());
        let a100 = gpu_time(bench.as_ref(), GpuSpec::a100());
        let (sn, simd) = best_cucc(
            bench.as_ref(),
            ClusterSpec::simd_focused(),
            &[1, 2, 4, 8, 16, 32],
        );
        let (tn, thread) = best_cucc(bench.as_ref(), ClusterSpec::thread_focused(), &[1, 2, 4]);
        simd_vs_v100.push(simd / v100);
        simd_vs_a100.push(simd / a100);
        thread_vs_v100.push(thread / v100);
        thread_vs_a100.push(thread / a100);
        println!(
            "{:<16} {:>11} {:>11} {:>10} ({:>2}) {:>10} ({:>2}) {:>8.2}x {:>8.2}x",
            bench.name(),
            fmt_time(v100),
            fmt_time(a100),
            fmt_time(simd),
            sn,
            fmt_time(thread),
            tn,
            simd / v100,
            thread / v100
        );
    }
    println!("\ngeomean slowdowns (CPU time / GPU time — >1 means GPU faster):");
    println!(
        "  SIMD-Focused : {:.2}x vs V100, {:.2}x vs A100   (paper: 2.55x / 4.14x)",
        geomean(&simd_vs_v100),
        geomean(&simd_vs_a100)
    );
    println!(
        "  Thread-Focused: {:.2}x vs V100, {:.2}x vs A100   (paper: 1.57x / 2.54x)",
        geomean(&thread_vs_v100),
        geomean(&thread_vs_a100)
    );
}
