//! Figure 12 — Throughput provided by GPUs and GPUs+CPUs on a
//! Lonestar6-shaped datacenter (560 CPU nodes, 16 GPU nodes × 3 A100).
//!
//! Paper headlines: adding the CPU fleet improves batch throughput 3.59×
//! on average; the CPU fleet alone provides 2.59× the GPUs' throughput.

use cucc_bench::{banner, best_cucc, gpu_time};
use cucc_cluster::ClusterSpec;
use cucc_gpu_model::GpuSpec;
use cucc_slurm::Datacenter;
use cucc_workloads::{perf_suite, Scale};

fn main() {
    banner(
        "Figure 12",
        "cluster-wide batch throughput, GPUs vs GPUs+CPUs",
    );
    let dc = Datacenter::lonestar6();
    println!(
        "inventory: {} CPU nodes (Thread-Focused class), {} GPUs (A100)\n",
        dc.cpu_nodes,
        dc.total_gpus()
    );
    println!(
        "{:<16} {:>12} {:>16} {:>14} {:>14} {:>9} {:>9}",
        "benchmark", "gpu t", "cpu t (best n)", "gpu-only /s", "gpu+cpu /s", "cpu/gpu", "ratio"
    );
    let mut improvements = Vec::new();
    let mut cpu_only_ratios = Vec::new();
    for bench in perf_suite(Scale::Paper) {
        let gt = gpu_time(bench.as_ref(), GpuSpec::a100());
        let (bn, ct) = best_cucc(bench.as_ref(), ClusterSpec::thread_focused(), &[1, 2, 4, 8]);
        let gpu_only = dc.gpu_throughput(gt);
        let cpu_only = dc.cpu_throughput(bn, ct);
        let combined = gpu_only + cpu_only;
        improvements.push(combined / gpu_only);
        cpu_only_ratios.push(cpu_only / gpu_only);
        println!(
            "{:<16} {:>9.2} ms {:>11.2} ms ({}) {:>14.1} {:>14.1} {:>8.2}x {:>8.2}x",
            bench.name(),
            gt * 1e3,
            ct * 1e3,
            bn,
            gpu_only,
            combined,
            cpu_only / gpu_only,
            combined / gpu_only
        );
    }
    let avg_imp = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let avg_cpu = cpu_only_ratios.iter().sum::<f64>() / cpu_only_ratios.len() as f64;
    println!(
        "\naverage: CPUs add {:.2}x the GPUs' throughput → combined {:.2}x",
        avg_cpu, avg_imp
    );
    println!("paper: CPUs alone 2.59x; combined 3.59x");
}
