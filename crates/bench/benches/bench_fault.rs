//! Fault bench — recovery overhead on the simulated clock.
//!
//! Runs the same saxpy-style launch fault-free and under injected faults
//! (node kill at several points in the timeline, a straggler, a dropped
//! collective step) and reports how much simulated time each recovery
//! path costs relative to the clean run. Every faulty run must still
//! reproduce the clean output memory bit-for-bit. Writes the overheads
//! to `BENCH_fault.json` at the repository root.

use cucc_bench::banner;
use cucc_cluster::ClusterSpec;
use cucc_core::{compile_source, CompiledKernel, CuccCluster, FaultPlan, RuntimeConfig};
use cucc_exec::Arg;
use cucc_ir::LaunchConfig;
use cucc_net::FaultKind;

const SAXPY: &str = "__global__ void saxpy(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

const N: usize = 1 << 20;
const NODES: u32 = 4;
// Geometry whose dead-node slice re-partitions evenly across survivors
// (25 blocks on 3 nodes -> 24 distribution chunks -> 12 per survivor).
const N_SMALL: usize = 25 * 256;

struct Outcome {
    total: f64,
    retries: u32,
    failures: u32,
    reexecuted_blocks: u64,
    degraded: bool,
    memory: Vec<u8>,
}

fn run(ck: &CompiledKernel, nodes: u32, n: usize, faults: FaultPlan) -> Outcome {
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 100.0).collect();
    let ys: Vec<f32> = (0..n).map(|i| 50.0 - i as f32 * 0.125).collect();
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::builder().faults(faults).build(),
    );
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    cl.upload::<f32>(x, &xs).expect("upload x");
    cl.upload::<f32>(y, &ys).expect("upload y");
    let report = cl
        .launch(
            ck,
            LaunchConfig::cover1(n as u64, 256),
            &[
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::float(2.0),
                Arg::int(n as i64),
            ],
        )
        .expect("recoverable launch");
    Outcome {
        total: report.times.total(),
        retries: report.faults.retries,
        failures: report.faults.failures,
        reexecuted_blocks: report.faults.reexecuted_blocks,
        degraded: report.faults.degraded,
        memory: cl.download::<u8>(y).expect("download y"),
    }
}

fn main() {
    banner(
        "Fault",
        "recovery overhead of kill / straggle / drop injection",
    );
    let ck = compile_source(SAXPY).expect("compile saxpy");

    let clean = run(&ck, NODES, N, FaultPlan::none());
    let clean_small = run(&ck, 3, N_SMALL, FaultPlan::none());
    println!(
        "{:<26} {:>12} {:>9} {:>8} {:>8}",
        "scenario", "simulated", "overhead", "retries", "reexec"
    );
    println!(
        "{:<26} {:>9.3} ms {:>8.2}x {:>8} {:>8}",
        "clean",
        clean.total * 1e3,
        1.0,
        0,
        0
    );

    let scenarios: Vec<(&str, u32, usize, FaultPlan)> = vec![
        ("kill@degraded", NODES, N, FaultPlan::none().kill(2, 0.0)),
        (
            "kill@repartition",
            3,
            N_SMALL,
            FaultPlan::none().kill(2, 0.0),
        ),
        (
            "straggle:3x",
            NODES,
            N,
            FaultPlan::none().straggle(1, 0.0, 3.0),
        ),
        ("drop-step", NODES, N, FaultPlan::none().drop_step(0.0)),
    ];

    let mut rows = String::new();
    for (name, nodes, n, plan) in scenarios {
        let base = if n == N { &clean } else { &clean_small };
        let kills = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Kill { .. }))
            .count();
        let o = run(&ck, nodes, n, plan);
        assert_eq!(
            o.memory, base.memory,
            "{name}: recovered memory diverges from the fault-free run"
        );
        assert_eq!(
            o.failures, kills as u32,
            "{name}: every injected kill must be detected"
        );
        let overhead = o.total / base.total;
        assert!(
            overhead >= 1.0 - 1e-12,
            "{name}: a fault cannot make the launch faster ({overhead:.3}x)"
        );
        println!(
            "{:<26} {:>9.3} ms {:>8.2}x {:>8} {:>8}{}",
            name,
            o.total * 1e3,
            overhead,
            o.retries,
            o.reexecuted_blocks,
            if o.degraded { "  (degraded)" } else { "" }
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"scenario\": \"{name}\", \"nodes\": {nodes}, \"n\": {n}, \
             \"clean_s\": {:.9}, \"faulty_s\": {:.9}, \"overhead\": {overhead:.4}, \
             \"retries\": {}, \"reexecuted_blocks\": {}, \"degraded\": {}}}",
            base.total, o.total, o.retries, o.reexecuted_blocks, o.degraded
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fault\",\n  \"unit\": \"simulated_seconds\",\n  \"scenarios\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault.json");
    std::fs::write(path, &json).expect("write BENCH_fault.json");
    println!("\nwrote {path}");
}
