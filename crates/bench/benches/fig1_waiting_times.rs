//! Figure 1 — Waiting times for CPU and GPU partitions.
//!
//! Reproduces the paper's motivation study: one simulated week of job
//! arrivals on four CPU and four GPU partitions of a PACE-like machine.
//! GPU partitions run near saturation (demand outstrips the few GPU
//! nodes), CPU partitions at moderate load — FIFO queueing then yields
//! waits of hours vs minutes.

use cucc_bench::banner;
use cucc_slurm::sim::{mean_wait, median_wait, simulate_fifo, Partition, PartitionKind};
use cucc_slurm::{simulate_backfill, synthetic_week, TraceParams};

fn main() {
    banner(
        "Figure 1",
        "Waiting times for CPU and GPU partitions (1 simulated week)",
    );
    let partitions = [
        ("cpu-small", 256u32, PartitionKind::Cpu),
        ("cpu-medium", 128, PartitionKind::Cpu),
        ("cpu-large", 64, PartitionKind::Cpu),
        ("cpu-himem", 32, PartitionKind::Cpu),
        ("gpu-v100", 12, PartitionKind::Gpu),
        ("gpu-a100", 8, PartitionKind::Gpu),
        ("gpu-a100-mig", 6, PartitionKind::Gpu),
        ("gpu-h100", 4, PartitionKind::Gpu),
    ];
    println!(
        "{:<14} {:>6} {:>6} {:>14} {:>14} {:>14} {:>7}",
        "partition", "kind", "nodes", "mean wait", "median wait", "w/ backfill", "jobs"
    );
    let mut cpu_means = Vec::new();
    let mut gpu_means = Vec::new();
    for (i, (name, nodes, kind)) in partitions.iter().enumerate() {
        let params = match kind {
            PartitionKind::Cpu => TraceParams::cpu_partition(*nodes, i as u64 + 1),
            PartitionKind::Gpu => TraceParams::gpu_partition(*nodes, i as u64 + 1),
        };
        let jobs = synthetic_week(&params);
        let part = Partition {
            name: name.to_string(),
            nodes: *nodes,
            kind: *kind,
        };
        let outcomes = simulate_fifo(&part, &jobs);
        let mean = mean_wait(&outcomes);
        let median = median_wait(&outcomes);
        let bf_mean = mean_wait(&simulate_backfill(&part, &jobs));
        match kind {
            PartitionKind::Cpu => cpu_means.push(mean),
            PartitionKind::Gpu => gpu_means.push(mean),
        }
        println!(
            "{:<14} {:>6} {:>6} {:>11.1} min {:>11.1} min {:>11.1} min {:>7}",
            name,
            match kind {
                PartitionKind::Cpu => "CPU",
                PartitionKind::Gpu => "GPU",
            },
            nodes,
            mean / 60.0,
            median / 60.0,
            bf_mean / 60.0,
            outcomes.len()
        );
    }
    let cpu_avg = cpu_means.iter().sum::<f64>() / cpu_means.len() as f64;
    let gpu_avg = gpu_means.iter().sum::<f64>() / gpu_means.len() as f64;
    println!(
        "\naverage wait: CPU partitions {:.1} min, GPU partitions {:.1} min ({:.0}x longer)",
        cpu_avg / 60.0,
        gpu_avg / 60.0,
        gpu_avg / cpu_avg.max(1.0)
    );
    println!("paper: CPU partitions wait significantly shorter than GPU partitions");
    println!("(the backfill column shows the gap persists even under EASY backfill:");
    println!(" GPU waiting is capacity saturation, not head-of-line blocking)");
}
