//! Ablation: network generation (the paper's §10 outlook).
//!
//! "As the industry moves toward higher-bandwidth networks such as 400 Gbps
//! and 800 Gbps, the performance of clustered CPUs will continue to
//! improve." This harness re-runs the communication-bound benchmarks on
//! 100 Gb/s vs 400 Gb/s fabrics and also compares Allgather algorithm
//! choices.

use cucc_bench::{banner, cucc_report, fmt_time};
use cucc_cluster::ClusterSpec;
use cucc_core::{compile_source, CuccCluster, RuntimeConfig};
use cucc_net::{AllgatherAlgo, NetModel};
use cucc_workloads::{perf_suite, setup_args, Benchmark, Scale};

fn main() {
    banner("§10 ablation", "network generation & Allgather algorithm");

    // ---- 100G vs 400G on the 32-node SIMD-Focused cluster -------------
    println!("\n100 Gb/s vs 400 Gb/s InfiniBand (SIMD-Focused, 32 nodes):");
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "benchmark", "100G", "400G", "speedup"
    );
    for bench in perf_suite(Scale::Paper) {
        let base = ClusterSpec::simd_focused().with_nodes(32);
        let mut fast = base.clone();
        fast.net = NetModel::infiniband_400g();
        let t100 = cucc_report(bench.as_ref(), base).time();
        let t400 = cucc_report(bench.as_ref(), fast).time();
        println!(
            "{:<16} {:>12} {:>12} {:>8.2}x",
            bench.name(),
            fmt_time(t100),
            fmt_time(t400),
            t100 / t400
        );
    }

    // ---- Allgather algorithm choice ------------------------------------
    println!("\nAllgather algorithm (Transpose, SIMD-Focused, 32 nodes):");
    for algo in [
        AllgatherAlgo::Ring,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
    ] {
        let bench = cucc_workloads::perf::Transpose::new(Scale::Paper);
        let ck = compile_source(&bench.source()).unwrap();
        let mut cfg = RuntimeConfig::modeled();
        cfg.allgather_algo = algo;
        let mut cl = CuccCluster::with_options(ClusterSpec::simd_focused().with_nodes(32), cfg);
        let (args, _) = setup_args(&bench, &ck.kernel, &mut cl);
        let r = cl.launch(&ck, bench.launch(), &args).unwrap();
        println!(
            "  {:<20} total {:>10}, allgather {:>10}",
            format!("{algo:?}"),
            fmt_time(r.time()),
            fmt_time(r.times.allgather)
        );
    }
    println!("\npaper §10: faster fabrics directly shrink the Allgather phase,");
    println!("making CPU-cluster migration increasingly compelling.");
}
