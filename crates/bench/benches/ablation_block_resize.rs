//! Ablation: block resizing (the §8.3 "Workload Redistribution" proposal,
//! implemented as the `split_blocks` IR transformation).
//!
//! Kernels with few, fat blocks underutilize large clusters: Kmeans' 313
//! blocks leave SIMD-Focused 32-node cores idle and inflate the callback
//! share (§7.2). Splitting each block multiplies the schedulable units
//! without changing semantics. This harness quantifies the effect.

use cucc_bench::{banner, fmt_time};
use cucc_cluster::ClusterSpec;
use cucc_core::{compile, split_blocks, CuccCluster, RuntimeConfig};
use cucc_ir::parse_kernel;
use cucc_workloads::{perf::Ep, perf::Kmeans, setup_args, Benchmark, Scale};

fn timed_with_factor(bench: &dyn Benchmark, spec: ClusterSpec, factor: u32) -> Option<f64> {
    let kernel = parse_kernel(&bench.source()).ok()?;
    let (kernel, launch) = split_blocks(&kernel, bench.launch(), factor).ok()?;
    let ck = compile(kernel).ok()?;
    let mut cl = CuccCluster::with_options(spec, RuntimeConfig::modeled());
    let (args, _) = setup_args(bench, &ck.kernel, &mut cl);
    Some(cl.launch(&ck, launch, &args).ok()?.time())
}

fn main() {
    banner(
        "§8.3 ablation",
        "block resizing via the split_blocks transformation",
    );
    let factors = [1u32, 2, 4, 8];
    for (name, bench, spec) in [
        (
            "Kmeans (313 blocks), SIMD-Focused ×32",
            Box::new(Kmeans::new(Scale::Paper)) as Box<dyn Benchmark>,
            ClusterSpec::simd_focused().with_nodes(32),
        ),
        (
            "Kmeans (313 blocks), SIMD-Focused ×16",
            Box::new(Kmeans::new(Scale::Paper)),
            ClusterSpec::simd_focused().with_nodes(16),
        ),
        (
            "EP (512 blocks), SIMD-Focused ×32",
            Box::new(Ep::new(Scale::Paper)),
            ClusterSpec::simd_focused().with_nodes(32),
        ),
        (
            "EP (512 blocks), Thread-Focused ×4",
            Box::new(Ep::new(Scale::Paper)),
            ClusterSpec::thread_focused().with_nodes(4),
        ),
    ] {
        print!("{name:<40}");
        let mut base = None;
        for &f in &factors {
            match timed_with_factor(bench.as_ref(), spec.clone(), f) {
                Some(t) => {
                    let b = *base.get_or_insert(t);
                    print!("  x{f}: {:>9} ({:>5.2}x)", fmt_time(t), b / t);
                }
                None => print!("  x{f}: n/a"),
            }
        }
        println!();
    }
    println!("\npaper §8.3: \"adjustable block sizes could help redistribute");
    println!("workloads to align with hardware capabilities\" — splitting fat");
    println!("blocks recovers the idle-core losses of few-block kernels.");
}
