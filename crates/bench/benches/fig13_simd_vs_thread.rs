//! Figure 13 + §8.2 — SIMD-style vs thread-style execution, reproduced from
//! **measured** engine runs instead of the capacity model.
//!
//! The paper contrasts a SIMD-Focused cluster (few fat cores, wide vectors)
//! with a Thread-Focused one (many scalar cores) at equalized peak capacity.
//! Our measured analog drives the three real engine tiers over the eight
//! evaluation kernels: the tree-walk oracle, the scalar bytecode engine
//! across 1/2/4/8 workers (thread-style scaling), and the vectorized
//! lane-array engine across the same worker counts (SIMD-style scaling).
//! The per-worker `simd/bytecode` ratio is the measured counterpart of the
//! figure's SIMD-vs-thread trade-off, and the §8.2 ablation (what a
//! SIMD-focused machine loses when vector execution is disabled) becomes
//! literal: run the same kernel with the lane engine turned off.

use cucc_bench::{banner, geomean};
use cucc_exec::{
    execute_block_range, run_range, run_range_parallel, run_range_parallel_simd, run_range_simd,
    Arg, MemPool, Program,
};
use cucc_ir::Param;
use cucc_workloads::{perf_suite, Benchmark, Scale};
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

struct Prepared {
    name: &'static str,
    kernel: cucc_ir::Kernel,
    launch: cucc_ir::LaunchConfig,
    pool: MemPool,
    args: Vec<Arg>,
    summary: String,
}

fn prepare(bench: &dyn Benchmark) -> Prepared {
    let kernel = cucc_ir::parse_kernel(&bench.source()).expect("benchmark kernel parses");
    cucc_ir::validate(&kernel).expect("benchmark kernel validates");
    let launch = bench.launch();
    let mut pool = MemPool::new();
    let mut args = Vec::with_capacity(kernel.params.len());
    let host = bench.buffers();
    let scalars = bench.scalars();
    let (mut bi, mut si) = (0usize, 0usize);
    for p in &kernel.params {
        match p {
            Param::Buffer { .. } => {
                let id = pool.alloc(host[bi].len());
                pool.write_all(id, &host[bi]);
                bi += 1;
                args.push(Arg::Buffer(id));
            }
            Param::Scalar { .. } => {
                args.push(Arg::Scalar(scalars[si]));
                si += 1;
            }
        }
    }
    let summary = match Program::compile(&kernel, launch, &args) {
        Ok(p) => p.phase_summary().lines().collect::<Vec<_>>().join(" "),
        Err(e) => format!("uncompiled ({e})"),
    };
    Prepared {
        name: bench.name(),
        kernel,
        launch,
        pool,
        args,
        summary,
    }
}

/// Best-of-`REPS` wall time for one full launch; every rep runs on a fresh
/// copy of the initial pool so non-idempotent kernels measure the same work.
fn best_time(p: &Prepared, f: impl Fn(&Prepared, &mut MemPool)) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let mut pool = p.pool.clone();
        let t = Instant::now();
        f(p, &mut pool);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    banner(
        "Figure 13",
        "SIMD-style (lane engine) vs thread-style (bytecode workers), measured",
    );
    let suite = perf_suite(Scale::Test);
    println!(
        "{:<16} {:>10}   {}",
        "benchmark",
        "tree",
        WORKER_COUNTS
            .iter()
            .map(|w| format!("{:>22}", format!("w={w}: simd/bytecode")))
            .collect::<String>()
    );

    let mut ratios_per_w: Vec<Vec<f64>> = vec![Vec::new(); WORKER_COUNTS.len()];
    let mut serial: Vec<(String, f64, f64)> = Vec::new();
    let mut modes = String::new();
    for bench in &suite {
        let p = prepare(bench.as_ref());
        let blocks = p.launch.num_blocks();
        let tree = best_time(&p, |p, pool| {
            execute_block_range(&p.kernel, p.launch, 0..blocks, &p.args, pool).unwrap();
        });
        print!("{:<16} {:>8.2}ms  ", p.name, tree * 1e3);
        let prog = Program::compile(&p.kernel, p.launch, &p.args).unwrap();
        for (i, &w) in WORKER_COUNTS.iter().enumerate() {
            let byte = best_time(&p, |_, pool| {
                if w <= 1 {
                    run_range(&prog, pool, 0..blocks).unwrap();
                } else {
                    run_range_parallel(&prog, pool, 0..blocks, w).unwrap();
                }
            });
            let simd = best_time(&p, |_, pool| {
                if w <= 1 {
                    run_range_simd(&prog, pool, 0..blocks).unwrap();
                } else {
                    run_range_parallel_simd(&prog, pool, 0..blocks, w).unwrap();
                }
            });
            let ratio = byte / simd;
            ratios_per_w[i].push(ratio);
            if i == 0 {
                serial.push((p.name.to_string(), byte, simd));
            }
            print!("{:>19.2}x   ", ratio);
        }
        println!();
        modes += &format!("  {:<16} {}\n", p.name, p.summary);
    }
    print!("{:<16} {:>10}   ", "geomean", "");
    for ratios in &ratios_per_w {
        print!("{:>19.2}x   ", geomean(ratios));
    }
    println!();
    println!("\nvectorization mode per kernel (phase summary):");
    print!("{modes}");

    // ---- §8.2 ablation: disable vector execution on the SIMD-style tier ----
    // The paper disables SIMD on both CPUs and reports Transpose slowing
    // 61.66x on the SIMD-Focused machine but ~1x on the Thread-Focused one.
    // Measured analog: the lane engine with its vector tier removed *is* the
    // scalar bytecode engine, so the slowdown is simd-time vs bytecode-time
    // serially; the thread-style tier never used vectors and is unchanged.
    banner("§8.2 ablation", "Transpose with vector execution disabled");
    let (name, byte, simd) = serial
        .iter()
        .find(|(n, _, _)| n == "Transpose")
        .expect("Transpose in suite");
    println!(
        "  {name}: lane engine {:.3}ms -> scalar {:.3}ms ({:.2}x slowdown; paper 61.66x on 512-lane hardware)",
        simd * 1e3,
        byte * 1e3,
        byte / simd
    );
    println!("  thread-style tier: unchanged (never vectorized; paper ~1x)");
}
