//! Figure 13 + §8.2 — Runtime in SIMD-Focused vs Thread-Focused clusters
//! at **equalized peak capacity** (the EPYC node capped at 64 cores:
//! 4.096 TF vs the Xeon's 4.147 TF), plus the SIMD-disabled ablation.
//!
//! Paper headlines: Thread-Focused 4.61×/4.66×/4.32× faster at 1/2/4
//! nodes (geomean); BinomialOption 55× on a single node; Transpose only
//! 1.3×; disabling SIMD slows the SIMD-Focused CPU 61.66× on Transpose but
//! leaves the Thread-Focused CPU unchanged.

use cucc_bench::{banner, cucc_report, fmt_time, geomean};
use cucc_cluster::ClusterSpec;
use cucc_workloads::{perf_suite, Benchmark, Scale};

fn capped_thread() -> ClusterSpec {
    let mut spec = ClusterSpec::thread_focused();
    spec.cpu = spec.cpu.with_cores(64);
    spec
}

fn main() {
    banner(
        "Figure 13",
        "SIMD-Focused vs Thread-Focused (64-core cap) runtime",
    );
    let node_counts = [1u32, 2, 4];
    println!(
        "{:<16} {}",
        "benchmark",
        node_counts
            .iter()
            .map(|n| format!("{:>24}", format!("{n} node(s): simd/thread")))
            .collect::<String>()
    );
    let mut ratios_per_n: Vec<Vec<f64>> = vec![Vec::new(); node_counts.len()];
    let mut single_node: Vec<(String, f64)> = Vec::new();
    for bench in perf_suite(Scale::Paper) {
        print!("{:<16}", bench.name());
        for (i, &n) in node_counts.iter().enumerate() {
            let simd = cucc_report(bench.as_ref(), ClusterSpec::simd_focused().with_nodes(n));
            let thread = cucc_report(bench.as_ref(), capped_thread().with_nodes(n));
            let ratio = simd.time() / thread.time();
            ratios_per_n[i].push(ratio);
            if i == 0 {
                single_node.push((bench.name().to_string(), ratio));
            }
            print!("{:>17.2}x       ", ratio);
        }
        println!();
    }
    print!("{:<16}", "geomean");
    for ratios in &ratios_per_n {
        print!("{:>17.2}x       ", geomean(ratios));
    }
    println!("\n(paper geomeans: 4.61x / 4.66x / 4.32x)");

    let bo = single_node
        .iter()
        .find(|(n, _)| n == "BinomialOption")
        .unwrap();
    let tr = single_node.iter().find(|(n, _)| n == "Transpose").unwrap();
    println!(
        "\nsingle-node extremes: BinomialOption {:.1}x (paper 55x), Transpose {:.2}x (paper 1.3x)",
        bo.1, tr.1
    );

    // ---- §8.2 ablation: disable SIMD on both CPUs, Transpose only ----
    banner("§8.2 ablation", "Transpose with SIMD execution disabled");
    let transpose: Box<dyn Benchmark> =
        Box::new(cucc_workloads::perf::Transpose::new(Scale::Paper));
    let mut simd_off = ClusterSpec::simd_focused().with_nodes(1);
    simd_off.cpu = simd_off.cpu.without_simd();
    let mut thread_off = capped_thread().with_nodes(1);
    thread_off.cpu = thread_off.cpu.without_simd();

    let s_on = cucc_report(
        transpose.as_ref(),
        ClusterSpec::simd_focused().with_nodes(1),
    )
    .time();
    let s_off = cucc_report(transpose.as_ref(), simd_off).time();
    let t_on = cucc_report(transpose.as_ref(), capped_thread().with_nodes(1)).time();
    let t_off = cucc_report(transpose.as_ref(), thread_off).time();
    println!(
        "  SIMD-Focused : {} → {}  ({:.2}x slowdown; paper 61.66x)",
        fmt_time(s_on),
        fmt_time(s_off),
        s_off / s_on
    );
    println!(
        "  Thread-Focused: {} → {}  ({:.2}x slowdown; paper ~1x)",
        fmt_time(t_on),
        fmt_time(t_off),
        t_off / t_on
    );
}
