//! Figure 7 — Coverage evaluation for Allgather distributable.

use cucc_bench::banner;
use cucc_workloads::{classify_coverage, heteromark_kernels, triton_kernels, Expected};

fn main() {
    banner(
        "Figure 7",
        "Coverage evaluation for Allgather distributable",
    );
    let groups: [(&str, Vec<_>); 3] = [
        (
            "ViT",
            triton_kernels()
                .into_iter()
                .filter(|k| k.suite == "ViT")
                .collect(),
        ),
        (
            "BERT",
            triton_kernels()
                .into_iter()
                .filter(|k| k.suite == "BERT")
                .collect(),
        ),
        ("Hetero-Mark", heteromark_kernels()),
    ];
    println!(
        "{:<14} {:>8} {:>15} {:>9} {:>9}",
        "suite", "kernels", "distributable", "overlap", "indirect"
    );
    for (name, kernels) in groups {
        let mut counts = [0usize; 3];
        for k in &kernels {
            match classify_coverage(k).expect("classification") {
                Expected::Distributable => counts[0] += 1,
                Expected::Overlap => counts[1] += 1,
                Expected::Indirect => counts[2] += 1,
            }
        }
        println!(
            "{:<14} {:>8} {:>15} {:>9} {:>9}",
            name,
            kernels.len(),
            counts[0],
            counts[1],
            counts[2]
        );
    }
    println!("\npaper: all 21 ViT+BERT kernels distributable; Hetero-Mark 8 of 13");
    println!("(4 overlapping write intervals, 1 indirect access)");
}
