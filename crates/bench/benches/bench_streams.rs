//! Streams bench — transfer/compute overlap on the simulated clock.
//!
//! A chunked pipeline uploads one chunk per replica and runs a saxpy-style
//! kernel on it. Serially, every upload sits between two kernels; with two
//! or four streams the host-link uploads prefetch under the previous
//! chunk's compute, so the end-to-end simulated time shrinks. Writes the
//! overlap wins to `BENCH_streams.json` at the repository root and a
//! Perfetto-loadable trace of the two-stream run to `TRACE_streams.json`.

use cucc_bench::banner;
use cucc_cluster::ClusterSpec;
use cucc_core::{compile_source, CompiledKernel, CuccCluster, RuntimeConfig};
use cucc_exec::Arg;
use cucc_ir::LaunchConfig;

const SCALE: &str = "__global__ void scale(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

const CHUNK: usize = 32_768;
const REPLICAS: usize = 8;
const NODES: u32 = 4;

/// Run the chunked pipeline with `streams` streams (0 = sync default
/// stream) and return (elapsed simulated seconds, cluster for the trace).
fn pipeline(ck: &CompiledKernel, streams: usize) -> (f64, CuccCluster) {
    let data: Vec<u8> = (0..CHUNK).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let launch = LaunchConfig::cover1(CHUNK as u64, 256);
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(NODES),
        RuntimeConfig::default(),
    );
    let ss: Vec<_> = (0..streams).map(|_| cl.stream_create()).collect();
    for r in 0..REPLICAS {
        let x = cl.alloc(CHUNK * 4);
        let y = cl.alloc(CHUNK * 4);
        let args = [
            Arg::Buffer(x),
            Arg::Buffer(y),
            Arg::float(2.0),
            Arg::int(CHUNK as i64),
        ];
        match ss.get(r % ss.len().max(1)) {
            Some(&s) => {
                cl.upload_on(x, &data, s).unwrap();
                cl.launch_on(ck, launch, &args, s).unwrap();
            }
            None => {
                cl.upload(x, &data).unwrap();
                cl.launch(ck, launch, &args).unwrap();
            }
        }
    }
    let elapsed = cl.synchronize().expect("synchronize");
    (elapsed, cl)
}

fn main() {
    banner(
        "Streams",
        "h2d/compute overlap from the async command-queue runtime",
    );
    let ck = compile_source(SCALE).expect("compile scale kernel");

    let (serial, _) = pipeline(&ck, 0);
    println!("{:<12} {:>12} {:>9}", "layout", "simulated", "speedup");
    println!("{:<12} {:>9.3} ms {:>8.2}x", "serial", serial * 1e3, 1.0);

    let mut rows = String::new();
    let mut trace = None;
    for streams in [2usize, 4] {
        let (overlapped, cl) = pipeline(&ck, streams);
        let speedup = serial / overlapped;
        println!(
            "{:<12} {:>9.3} ms {:>8.2}x",
            format!("{streams} streams"),
            overlapped * 1e3,
            speedup
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"streams\": {streams}, \"replicas\": {REPLICAS}, \"nodes\": {NODES}, \
             \"serial_s\": {serial:.9}, \"overlapped_s\": {overlapped:.9}, \
             \"speedup\": {speedup:.3}}}"
        ));
        if streams == 2 {
            assert!(
                speedup >= 1.2,
                "acceptance: two-stream pipeline must win >=1.2x, got {speedup:.3}x"
            );
            trace = Some(cl.timeline().to_chrome_json());
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"streams\",\n  \"unit\": \"simulated_seconds\",\n  \"pipelines\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streams.json");
    std::fs::write(path, &json).expect("write BENCH_streams.json");
    println!("\nwrote {path}");

    let tpath = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_streams.json");
    std::fs::write(tpath, trace.expect("two-stream trace")).expect("write TRACE_streams.json");
    println!("wrote {tpath} (load in https://ui.perfetto.dev)");
}
