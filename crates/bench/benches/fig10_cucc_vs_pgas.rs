//! Figure 10 — CuCC and PGAS solution runtime comparison.
//!
//! Relative runtime (PGAS / CuCC) per benchmark and cluster size on the
//! SIMD-Focused cluster. Paper headline: excluding the Transpose outlier,
//! CuCC is 4.09× faster on 2 nodes and 12.81× on 32 nodes; GA and
//! BinomialOption are close to parity because they write so little.

use cucc_bench::{banner, cucc_report, geomean, pgas_report};
use cucc_cluster::ClusterSpec;
use cucc_workloads::{perf_suite, Scale};

fn main() {
    banner(
        "Figure 10",
        "PGAS runtime / CuCC runtime (SIMD-Focused cluster)",
    );
    let node_counts = [2u32, 4, 8, 16, 32];
    print!("{:<16}", "benchmark");
    for n in node_counts {
        print!(" {:>9}", format!("{n} nodes"));
    }
    println!();
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); node_counts.len()];
    let mut per_size_no_transpose: Vec<Vec<f64>> = vec![Vec::new(); node_counts.len()];
    for bench in perf_suite(Scale::Paper) {
        print!("{:<16}", bench.name());
        for (i, &n) in node_counts.iter().enumerate() {
            let spec = ClusterSpec::simd_focused().with_nodes(n);
            let pg = pgas_report(bench.as_ref(), spec.clone()).time();
            let cc = cucc_report(bench.as_ref(), spec).time();
            let ratio = pg / cc;
            per_size[i].push(ratio);
            if bench.name() != "Transpose" {
                per_size_no_transpose[i].push(ratio);
            }
            print!(" {:>8.2}x", ratio);
        }
        println!();
    }
    print!("{:<16}", "geomean");
    for ratios in &per_size {
        print!(" {:>8.2}x", geomean(ratios));
    }
    println!();
    print!("{:<16}", "… w/o Transpose");
    for ratios in &per_size_no_transpose {
        print!(" {:>8.2}x", geomean(ratios));
    }
    println!();
    println!("\npaper (excluding the Transpose outlier): 4.09x at 2 nodes,");
    println!("12.81x at 32 nodes; GA and BinomialOption near parity");
}
