//! # cucc-gpu-model — GPU baseline: roofline timing + functional reference
//!
//! The paper compares CPU-cluster execution against NVIDIA V100 and A100
//! GPUs "released in the same era as the evaluated CPUs" (§7.4). We have no
//! GPUs, so this crate provides:
//!
//! * [`GpuSpec`] — published hardware parameters of the two cards;
//! * a **roofline execution model** ([`GpuSpec::kernel_time`]): a kernel is
//!   bounded by compute (`ops / peak`), by memory (`bytes / HBM bandwidth`)
//!   or by occupancy (too few threads to fill the SMs), whichever binds,
//!   plus a fixed launch overhead — first-order GPU performance, which is
//!   all Figures 11 and 12 need;
//! * [`GpuDevice`] — a functional CUDA-like device (alloc / h2d / launch /
//!   d2h) whose launches run the *exact* interpreter semantics. Its memory
//!   after a launch is the **correctness oracle** every distributed
//!   execution is compared against, byte for byte.

pub mod device;
pub mod spec;

pub use device::GpuDevice;
pub use spec::GpuSpec;
