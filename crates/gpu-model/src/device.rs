//! A functional CUDA-like GPU device.
//!
//! [`GpuDevice`] exposes the `cudaMalloc`/`cudaMemcpy`/launch surface the
//! paper's original GPU programs use. Launches execute the interpreter's
//! exact semantics over the device pool (blocks in ascending order — a
//! valid GPU execution, since CUDA guarantees no inter-block ordering) and
//! return the roofline-simulated time, so the same object serves as both
//! the **correctness oracle** and the **GPU performance baseline**.

use crate::spec::GpuSpec;
use cucc_exec::{execute_launch, profile_launch, Arg, BufferId, ExecError, MemPool};
use cucc_ir::{Kernel, LaunchConfig};

/// A simulated GPU with its own device memory.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    /// Hardware description used for timing.
    pub spec: GpuSpec,
    pool: MemPool,
    elapsed: f64,
}

/// Result of one kernel launch on the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuLaunchResult {
    /// Simulated kernel execution time in seconds.
    pub time: f64,
    /// Dynamic statistics of the whole launch.
    pub stats: cucc_exec::BlockStats,
}

impl GpuDevice {
    /// New device with empty memory.
    pub fn new(spec: GpuSpec) -> GpuDevice {
        GpuDevice {
            spec,
            pool: MemPool::new(),
            elapsed: 0.0,
        }
    }

    /// `cudaMalloc`: allocate zeroed device memory.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        self.pool.alloc(bytes)
    }

    /// `cudaMemcpy` host→device.
    pub fn h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.pool.write_all(buf, data);
    }

    /// `cudaMemcpy` device→host.
    pub fn d2h(&self, buf: BufferId) -> Vec<u8> {
        self.pool.bytes(buf).to_vec()
    }

    /// Direct access to device memory (for typed helpers).
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// Mutable access to device memory.
    pub fn pool_mut(&mut self) -> &mut MemPool {
        &mut self.pool
    }

    /// Launch a kernel: functional execution of every block over device
    /// memory, timed with the roofline model. Large launches are timed via
    /// sampled profiles but executed in full.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<GpuLaunchResult, ExecError> {
        let stats = execute_launch(kernel, launch, args, &mut self.pool)?;
        let time = self.spec.kernel_time(&stats, launch);
        self.elapsed += time;
        Ok(GpuLaunchResult { time, stats })
    }

    /// Time a launch **without** executing it functionally (sampled
    /// profile). Used when only the performance number is needed.
    pub fn time_only(
        &self,
        kernel: &Kernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<f64, ExecError> {
        let prof = profile_launch(kernel, launch, args, &self.pool, 3)?;
        Ok(self.spec.kernel_time(&prof.total, launch))
    }

    /// Total simulated time of all launches so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::parse_kernel;

    #[test]
    fn end_to_end_vector_copy() {
        let k = parse_kernel(
            "__global__ void vec_copy(char* src, char* dest, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) dest[id] = src[id];
            }",
        )
        .unwrap();
        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let n = 1200;
        let src = gpu.alloc(n);
        let dest = gpu.alloc(n);
        let data: Vec<u8> = (0..n).map(|i| (i * 7 % 255) as u8).collect();
        gpu.h2d(src, &data);
        let r = gpu
            .launch(
                &k,
                LaunchConfig::cover1(n as u64, 256),
                &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(n as i64)],
            )
            .unwrap();
        assert_eq!(gpu.d2h(dest), data);
        assert!(r.time > 0.0);
        assert_eq!(gpu.elapsed(), r.time);
    }

    #[test]
    fn time_only_close_to_full_run() {
        let k = parse_kernel(
            "__global__ void sq(float* out, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) out[id] = (float)(id) * 0.5f;
            }",
        )
        .unwrap();
        let n: u64 = 100_000;
        let mut gpu = GpuDevice::new(GpuSpec::v100());
        let out = gpu.alloc(n as usize * 4);
        let args = [Arg::Buffer(out), Arg::int(n as i64)];
        let launch = LaunchConfig::cover1(n, 256);
        let quick = gpu.time_only(&k, launch, &args).unwrap();
        let full = gpu.launch(&k, launch, &args).unwrap();
        let rel = (quick - full.time).abs() / full.time;
        assert!(rel < 0.02, "sampled {quick} vs full {}", full.time);
    }
}
