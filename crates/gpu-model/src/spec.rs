//! GPU hardware parameters and the roofline timing model.

use cucc_exec::BlockStats;
use cucc_ir::LaunchConfig;
use serde::{Deserialize, Serialize};

/// Published parameters of a GPU (Table 1's GPU rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Resident threads per SM at full occupancy.
    pub threads_per_sm: u32,
    /// Peak single-precision FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth, bytes/s.
    pub hbm_bw: f64,
    /// L2 cache, bytes (paper §7.4: V100 6 MB, A100 40 MB).
    pub l2_bytes: u64,
    /// Fixed kernel launch overhead, seconds.
    pub launch_overhead: f64,
    /// Fraction of peak compute a typical benchmark kernel sustains.
    pub compute_efficiency: f64,
    /// Fraction of peak HBM bandwidth real access patterns sustain.
    pub mem_efficiency: f64,
    /// Release year (Table 1).
    pub year: u32,
}

impl GpuSpec {
    /// NVIDIA A100 (2020): 108 SMs, 19.5 TFLOP/s FP32, 1555 GB/s HBM2e.
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA A100".into(),
            sms: 108,
            threads_per_sm: 2048,
            peak_flops: 19.5e12,
            hbm_bw: 1555.0e9,
            l2_bytes: 40_000_000,
            launch_overhead: 5.0e-6,
            compute_efficiency: 0.30,
            mem_efficiency: 0.70,
            year: 2020,
        }
    }

    /// NVIDIA V100 (2017): 80 SMs, 15.7 TFLOP/s FP32, 900 GB/s HBM2.
    pub fn v100() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA V100".into(),
            sms: 80,
            threads_per_sm: 2048,
            peak_flops: 15.7e12,
            hbm_bw: 900.0e9,
            l2_bytes: 6_000_000,
            launch_overhead: 5.0e-6,
            compute_efficiency: 0.30,
            mem_efficiency: 0.70,
            year: 2017,
        }
    }

    /// Occupancy factor for a launch: fraction of the GPU's resident-thread
    /// capacity the grid fills (clamped to 1). Launches with few blocks
    /// underutilize the SMs — the reason EP (512 blocks) and GA (256
    /// blocks) still beat CPU clusters but leave GPU headroom.
    pub fn occupancy(&self, launch: LaunchConfig) -> f64 {
        let capacity = self.sms as f64 * self.threads_per_sm as f64;
        // A block occupies at least one SM slot; tiny blocks still spread
        // across SMs.
        let resident = launch.total_threads() as f64;
        // Floor: even very small grids extract some throughput through
        // instruction-level parallelism within the resident threads.
        (resident / (capacity * 0.25)).clamp(0.05, 1.0)
    }

    /// Roofline execution time of a whole launch from its instrumented
    /// dynamic statistics.
    ///
    /// `stats` must be launch totals (e.g. [`cucc_exec::LaunchProfile::total`]).
    pub fn kernel_time(&self, stats: &BlockStats, launch: LaunchConfig) -> f64 {
        let ops = (stats.int_ops + stats.float_ops) as f64;
        let eff = self.compute_efficiency * self.occupancy(launch);
        let compute = ops / (self.peak_flops * eff.max(1e-3));
        // Shared/local traffic runs at SM-local speeds ~10× HBM.
        let hbm = stats.global_bytes() as f64 / (self.hbm_bw * self.mem_efficiency);
        let smem = (stats.shared_bytes + stats.local_bytes) as f64 / (self.hbm_bw * 10.0);
        compute.max(hbm + smem) + self.launch_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(float_ops: u64, global_bytes: u64) -> BlockStats {
        BlockStats {
            float_ops,
            global_read_bytes: global_bytes / 2,
            global_write_bytes: global_bytes - global_bytes / 2,
            ..BlockStats::default()
        }
    }

    fn big_launch() -> LaunchConfig {
        LaunchConfig::new(4096u32, 256u32)
    }

    #[test]
    fn a100_beats_v100() {
        let s = stats(10_000_000_000, 4_000_000_000);
        let l = big_launch();
        assert!(GpuSpec::a100().kernel_time(&s, l) < GpuSpec::v100().kernel_time(&s, l));
    }

    #[test]
    fn memory_bound_kernel_scales_with_bandwidth() {
        // Transpose-like: no flops, lots of bytes.
        let s = stats(0, 8_000_000_000);
        let l = big_launch();
        let a = GpuSpec::a100();
        let v = GpuSpec::v100();
        let ratio = v.kernel_time(&s, l) / a.kernel_time(&s, l);
        let bw_ratio = a.hbm_bw / v.hbm_bw;
        assert!(
            (ratio - bw_ratio).abs() / bw_ratio < 0.05,
            "{ratio} vs {bw_ratio}"
        );
    }

    #[test]
    fn low_occupancy_hurts() {
        let s = stats(1_000_000_000, 0);
        let small = LaunchConfig::new(64u32, 256u32); // 16k threads
        let large = big_launch(); // 1M threads
        let a = GpuSpec::a100();
        assert!(a.kernel_time(&s, small) > a.kernel_time(&s, large));
        assert!(a.occupancy(small) < 0.5);
        assert!((a.occupancy(large) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn launch_overhead_floors_empty_kernels() {
        let a = GpuSpec::a100();
        let t = a.kernel_time(&BlockStats::default(), LaunchConfig::new(1u32, 1u32));
        assert!(t >= a.launch_overhead);
    }

    #[test]
    fn table1_numbers() {
        let a = GpuSpec::a100();
        assert_eq!(a.sms, 108);
        assert_eq!(a.year, 2020);
        let v = GpuSpec::v100();
        assert_eq!(v.sms, 80);
        assert!((v.peak_flops / 1e12 - 15.7).abs() < 1e-9);
    }
}
