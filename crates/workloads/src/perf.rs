//! The eight performance benchmarks of the paper's evaluation (§7.2–§7.4),
//! plus the Listing-1 running example.
//!
//! Six are named in the paper — Transpose, FIR, Kmeans, BinomialOption, EP,
//! GA — and two stand in for the unnamed remainder of the eight "GPU
//! programs previously used in other GPU migration projects": BlackScholes
//! and Conv2D (see DESIGN.md §7). Each benchmark carries
//!
//! * its mini-CUDA kernel source,
//! * a launch geometry per [`Scale`] (`Test` sizes run functionally in the
//!   test suite; `Paper` sizes feed the modeled performance sweeps),
//! * deterministic input data, and
//! * a pure-Rust reference mirroring the interpreter's numeric semantics
//!   (f64 intermediates, narrowing at stores) so distributed results verify
//!   bit-for-bit or within a tiny relative tolerance.

use cucc_ir::{LaunchConfig, Scalar, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for functional (interpreted, byte-exact) runs.
    Test,
    /// Paper-magnitude sizes for modeled performance sweeps.
    Paper,
}

/// A runnable benchmark instance.
pub trait Benchmark: Send + Sync {
    /// Display name (matches the paper's figures).
    fn name(&self) -> &'static str;
    /// Mini-CUDA kernel source.
    fn source(&self) -> String;
    /// Launch geometry.
    fn launch(&self) -> LaunchConfig;
    /// Initial contents of each buffer parameter, in parameter order.
    fn buffers(&self) -> Vec<Vec<u8>>;
    /// Scalar arguments, in parameter order.
    fn scalars(&self) -> Vec<Value>;
    /// Expected contents of each buffer parameter after one launch.
    fn reference(&self) -> Vec<Vec<u8>>;
    /// Element type for tolerant comparison (`None` ⇒ exact bytes).
    fn compare_elem(&self) -> Option<Scalar> {
        None
    }
    /// Relative tolerance when `compare_elem` is float.
    fn tolerance(&self) -> f64 {
        0.0
    }
}

/// All eight evaluation benchmarks at the given scale.
pub fn perf_suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Transpose::new(scale)),
        Box::new(Fir::new(scale)),
        Box::new(Kmeans::new(scale)),
        Box::new(BinomialOption::new(scale)),
        Box::new(Ep::new(scale)),
        Box::new(Ga::new(scale)),
        Box::new(BlackScholes::new(scale)),
        Box::new(Conv2d::new(scale)),
    ]
}

fn f32s(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn i32s(v: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

// =====================================================================
// VecCopy — Listing 1, the running example.
// =====================================================================

/// `dest[id] = src[id]` with the canonical tail guard.
#[derive(Debug, Clone)]
pub struct VecCopy {
    /// Elements copied.
    pub n: usize,
}

impl VecCopy {
    /// Listing 1's N = 1200 at test scale; 64 Mi at paper scale.
    pub fn new(scale: Scale) -> VecCopy {
        VecCopy {
            n: match scale {
                Scale::Test => 1200,
                Scale::Paper => 64 << 20,
            },
        }
    }
}

impl Benchmark for VecCopy {
    fn name(&self) -> &'static str {
        "VecCopy"
    }
    fn source(&self) -> String {
        "__global__ void vec_copy(char* src, char* dest, int n) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            if (id < n)
                dest[id] = src[id];
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::cover1(self.n as u64, 256)
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(1);
        let src: Vec<u8> = (0..self.n).map(|_| rng.gen()).collect();
        vec![src, vec![0u8; self.n]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![Value::I64(self.n as i64)]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let b = self.buffers();
        vec![b[0].clone(), b[0].clone()]
    }
}

// =====================================================================
// Transpose — memory movement through shared-memory tiles (§7.2, §7.4).
// =====================================================================

/// Tiled matrix transpose (`out = inᵀ`), 32×32 shared tiles.
#[derive(Debug, Clone)]
pub struct Transpose {
    /// Matrix dimension (multiple of 32).
    pub n: usize,
}

impl Transpose {
    /// 128×128 test, 4096×4096 paper — the paper-scale matrix (128 MiB of
    /// traffic) fits the Thread-Focused node's 512 MiB LLC but not the
    /// SIMD-Focused node's 38.5 MiB, reproducing §7.4's cache explanation
    /// for Transpose's CPU-vs-GPU behaviour.
    pub fn new(scale: Scale) -> Transpose {
        Transpose {
            n: match scale {
                Scale::Test => 128,
                Scale::Paper => 4096,
            },
        }
    }
}

impl Benchmark for Transpose {
    fn name(&self) -> &'static str {
        "Transpose"
    }
    fn source(&self) -> String {
        // Blocks tile the OUTPUT: block (bx, by) writes output rows
        // by·32..+32 — the write index is affine with blockIdx.y coefficient
        // 32n, so a grid row of blocks forms one dense Allgather chunk.
        "__global__ void transpose(float* in, float* out, int n) {
            __shared__ float tile[1024];
            tile[threadIdx.y * 32 + threadIdx.x]
                = in[(blockIdx.x * 32 + threadIdx.y) * n + blockIdx.y * 32 + threadIdx.x];
            __syncthreads();
            out[(blockIdx.y * 32 + threadIdx.y) * n + blockIdx.x * 32 + threadIdx.x]
                = tile[threadIdx.x * 32 + threadIdx.y];
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        let g = (self.n / 32) as u32;
        LaunchConfig::new((g, g), (32u32, 32u32))
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<f32> = (0..self.n * self.n)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        vec![f32s(&data), vec![0u8; self.n * self.n * 4]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![Value::I64(self.n as i64)]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let bufs = self.buffers();
        let n = self.n;
        let input: Vec<f32> = bufs[0]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut out = vec![0f32; n * n];
        for r in 0..n {
            for c in 0..n {
                out[r * n + c] = input[c * n + r];
            }
        }
        vec![bufs[0].clone(), f32s(&out)]
    }
}

// =====================================================================
// FIR — finite impulse response filter (§7.2: near-linear scaling).
// =====================================================================

/// `out[i] = Σ_t in[i+t]·coef[t]` — compute-heavy inner loop per thread.
#[derive(Debug, Clone)]
pub struct Fir {
    /// Output length.
    pub n: usize,
    /// Filter taps.
    pub taps: usize,
}

impl Fir {
    /// 8192×32 test; 4 Mi × 4096 paper.
    pub fn new(scale: Scale) -> Fir {
        match scale {
            Scale::Test => Fir { n: 8192, taps: 32 },
            Scale::Paper => Fir {
                n: 4 << 20,
                taps: 4096,
            },
        }
    }
}

impl Benchmark for Fir {
    fn name(&self) -> &'static str {
        "FIR"
    }
    fn source(&self) -> String {
        "__global__ void fir(float* in, float* coef, float* out, int n, int taps) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            float acc = 0.0f;
            for (int t = 0; t < taps; t++)
                acc += in[id + t] * coef[t];
            if (id < n)
                out[id] = acc;
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::cover1(self.n as u64, 256)
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(3);
        // in is padded by taps + a full block so every thread's reads stay
        // in bounds (including tail-block threads past n).
        let pad = self.taps + 256;
        let input: Vec<f32> = (0..self.n + pad)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let coef: Vec<f32> = (0..self.taps).map(|_| rng.gen_range(-0.1..0.1)).collect();
        vec![f32s(&input), f32s(&coef), vec![0u8; self.n * 4]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![Value::I64(self.n as i64), Value::I64(self.taps as i64)]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let bufs = self.buffers();
        let input: Vec<f32> = bufs[0]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let coef: Vec<f32> = bufs[1]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut out = vec![0f32; self.n];
        for i in 0..self.n {
            let mut acc = 0.0f64;
            for t in 0..self.taps {
                acc += input[i + t] as f64 * coef[t] as f64;
            }
            out[i] = acc as f32;
        }
        vec![bufs[0].clone(), bufs[1].clone(), f32s(&out)]
    }
}

// =====================================================================
// Kmeans — membership assignment (§7.2: the 313-block walk-through).
// =====================================================================

/// Nearest-centroid assignment: one thread per point.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Points.
    pub n: usize,
    /// Clusters.
    pub k: usize,
    /// Features per point.
    pub f: usize,
}

impl Kmeans {
    /// Paper scale reproduces §7.2's geometry exactly: 80 000 points / 256
    /// threads = **313 blocks**.
    pub fn new(scale: Scale) -> Kmeans {
        match scale {
            Scale::Test => Kmeans {
                n: 4096,
                k: 4,
                f: 4,
            },
            Scale::Paper => Kmeans {
                n: 80_000,
                k: 16,
                f: 8,
            },
        }
    }
}

impl Benchmark for Kmeans {
    fn name(&self) -> &'static str {
        "Kmeans"
    }
    fn source(&self) -> String {
        "__global__ void kmeans_membership(float* points, float* centers, int* membership,
                                           int n, int k, int f) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            if (id < n) {
                int best = 0;
                float bestd = 1.0e30f;
                for (int c = 0; c < k; c++) {
                    float d = 0.0f;
                    for (int j = 0; j < f; j++) {
                        float diff = points[id * f + j] - centers[c * f + j];
                        d += diff * diff;
                    }
                    if (d < bestd) {
                        bestd = d;
                        best = c;
                    }
                }
                membership[id] = best;
            }
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::cover1(self.n as u64, 256)
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(4);
        let points: Vec<f32> = (0..self.n * self.f)
            .map(|_| rng.gen_range(0.0..10.0))
            .collect();
        let centers: Vec<f32> = (0..self.k * self.f)
            .map(|_| rng.gen_range(0.0..10.0))
            .collect();
        vec![f32s(&points), f32s(&centers), vec![0u8; self.n * 4]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![
            Value::I64(self.n as i64),
            Value::I64(self.k as i64),
            Value::I64(self.f as i64),
        ]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let bufs = self.buffers();
        let points: Vec<f32> = bufs[0]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let centers: Vec<f32> = bufs[1]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut membership = vec![0i32; self.n];
        for i in 0..self.n {
            let mut best = 0i32;
            let mut bestd = 1.0e30f64;
            for c in 0..self.k {
                let mut d = 0.0f64;
                for j in 0..self.f {
                    // Mirror the kernel: f32 loads, f64 arithmetic, f32
                    // narrowing at the `diff`/`d` variables is absent (they
                    // are kernel locals — full f64 precision).
                    let diff = points[i * self.f + j] as f64 - centers[c * self.f + j] as f64;
                    d += diff * diff;
                }
                if d < bestd {
                    bestd = d;
                    best = c as i32;
                }
            }
            membership[i] = best;
        }
        vec![bufs[0].clone(), bufs[1].clone(), i32s(&membership)]
    }
}

// =====================================================================
// BinomialOption — serial recurrence per block (§7.4, §8.2: 55× gap).
// =====================================================================

/// One option per block: binomial-tree valuation with a per-thread local
/// array, written as a single scalar by the block's only thread.
#[derive(Debug, Clone)]
pub struct BinomialOption {
    /// Options (= blocks).
    pub options: usize,
    /// Time steps of the binomial tree.
    pub steps: usize,
}

impl BinomialOption {
    /// 16×64 test; 1024×2048 paper (the paper's 1024 GPU blocks, §8.2).
    pub fn new(scale: Scale) -> BinomialOption {
        match scale {
            Scale::Test => BinomialOption {
                options: 16,
                steps: 64,
            },
            Scale::Paper => BinomialOption {
                options: 1024,
                steps: 2048,
            },
        }
    }
}

impl Benchmark for BinomialOption {
    fn name(&self) -> &'static str {
        "BinomialOption"
    }
    fn source(&self) -> String {
        format!(
            "__global__ void binomial_option(float* price, float* result, int steps) {{
                float vals[{len}];
                if (threadIdx.x == 0) {{
                    float s = price[blockIdx.x];
                    float u = 1.01f;
                    for (int i = 0; i <= steps; i++)
                        vals[i] = fmaxf(s * powf(u, (float)(2 * i - steps)) - 100.0f, 0.0f);
                    for (int t = 0; t < steps; t++)
                        for (int i = 0; i < steps - t; i++)
                            vals[i] = (0.5f * vals[i + 1] + 0.5f * vals[i]) * 0.9995f;
                    result[blockIdx.x] = vals[0];
                }}
            }}",
            len = self.steps + 1
        )
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.options as u32, 1u32)
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(5);
        let prices: Vec<f32> = (0..self.options)
            .map(|_| rng.gen_range(80.0..120.0))
            .collect();
        vec![f32s(&prices), vec![0u8; self.options * 4]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![Value::I64(self.steps as i64)]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let bufs = self.buffers();
        let prices: Vec<f32> = bufs[0]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let steps = self.steps;
        let mut result = vec![0f32; self.options];
        for (o, &price) in prices.iter().enumerate() {
            // Mirror the kernel exactly: vals is a *local f32 array* — every
            // write narrows to f32.
            let mut vals = vec![0f32; steps + 1];
            let s = price as f64;
            // `float u = 1.01f` declares an f32: the parser narrows the
            // initializer, so mirror that.
            let u = 1.01f32 as f64;
            for (i, v) in vals.iter_mut().enumerate() {
                let e = (2 * i as i64 - steps as i64) as f32 as f64;
                *v = (s * u.powf(e) - 100.0).max(0.0) as f32;
            }
            for t in 0..steps {
                for i in 0..steps - t {
                    vals[i] = ((0.5 * vals[i + 1] as f64 + 0.5 * vals[i] as f64) * 0.9995) as f32;
                }
            }
            result[o] = vals[0];
        }
        vec![bufs[0].clone(), f32s(&result)]
    }
}

// =====================================================================
// EP — embarrassingly parallel random-number accumulation (§7.4: GPUs win).
// =====================================================================

/// Per-thread LCG loop accumulating squared uniforms; 512 blocks at paper
/// scale — too few to feed a large CPU cluster.
#[derive(Debug, Clone)]
pub struct Ep {
    /// Blocks.
    pub blocks: usize,
    /// Threads per block.
    pub threads: usize,
    /// LCG iterations per thread.
    pub iters: usize,
}

impl Ep {
    /// 8×64×128 test; 512×256×8192 paper (the paper's 512 blocks).
    pub fn new(scale: Scale) -> Ep {
        match scale {
            Scale::Test => Ep {
                blocks: 8,
                threads: 64,
                iters: 128,
            },
            Scale::Paper => Ep {
                blocks: 512,
                threads: 256,
                iters: 8192,
            },
        }
    }
}

impl Benchmark for Ep {
    fn name(&self) -> &'static str {
        "EP"
    }
    fn source(&self) -> String {
        "__global__ void ep(float* sums, int iters, int seed) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            int s = seed + id;
            float acc = 0.0f;
            for (int i = 0; i < iters; i++) {
                s = (s * 1103515245 + 12345) & 2147483647;
                float x = (float)(s) / 2147483648.0f;
                acc += x * x;
            }
            sums[id] = acc;
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks as u32, self.threads as u32)
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        vec![vec![0u8; self.blocks * self.threads * 4]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![Value::I64(self.iters as i64), Value::I64(20260131)]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let total = self.blocks * self.threads;
        let mut sums = vec![0f32; total];
        for (id, sum) in sums.iter_mut().enumerate() {
            let mut s: i64 = 20260131 + id as i64;
            let mut acc = 0.0f64;
            for _ in 0..self.iters {
                s = (s.wrapping_mul(1103515245).wrapping_add(12345)) & 2147483647;
                let x = (s as f32) as f64 / 2147483648.0;
                acc += x * x;
            }
            *sum = acc as f32;
        }
        vec![f32s(&sums)]
    }
}

// =====================================================================
// GA — gene (sequence) alignment with per-block match counts (§7.3/§7.4).
// =====================================================================

/// Each thread scans a segment of the target for exact query matches; the
/// block reduces counts through shared memory and thread 0 writes one int.
#[derive(Debug, Clone)]
pub struct Ga {
    /// Blocks.
    pub blocks: usize,
    /// Threads per block.
    pub threads: usize,
    /// Segment length per thread.
    pub seg: usize,
    /// Query length.
    pub qlen: usize,
}

impl Ga {
    /// 8×64×16×4 test; 256×256×256×8 paper (the paper's 256 blocks).
    pub fn new(scale: Scale) -> Ga {
        match scale {
            Scale::Test => Ga {
                blocks: 8,
                threads: 64,
                seg: 16,
                qlen: 4,
            },
            Scale::Paper => Ga {
                blocks: 256,
                threads: 256,
                seg: 256,
                qlen: 8,
            },
        }
    }

    fn target_len(&self) -> usize {
        self.blocks * self.threads * self.seg + self.qlen
    }
}

impl Benchmark for Ga {
    fn name(&self) -> &'static str {
        "GA"
    }
    fn source(&self) -> String {
        "__global__ void ga(uchar* target, uchar* query, int* matches, int seg, int qlen) {
            __shared__ int partial[256];
            int tid = threadIdx.x;
            int base = (blockIdx.x * blockDim.x + tid) * seg;
            int count = 0;
            for (int i = 0; i < seg; i++) {
                int m = 1;
                for (int j = 0; j < qlen; j++) {
                    if (target[base + i + j] != query[j])
                        m = 0;
                }
                count += m;
            }
            partial[tid] = count;
            __syncthreads();
            if (tid == 0) {
                int total = 0;
                for (int t = 0; t < blockDim.x; t++)
                    total += partial[t];
                matches[blockIdx.x] = total;
            }
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks as u32, self.threads as u32)
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(6);
        // 4-letter alphabet: matches are rare but nonzero.
        let target: Vec<u8> = (0..self.target_len())
            .map(|_| rng.gen_range(0u8..4))
            .collect();
        let query: Vec<u8> = (0..self.qlen).map(|_| rng.gen_range(0u8..4)).collect();
        vec![target, query, vec![0u8; self.blocks * 4]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![Value::I64(self.seg as i64), Value::I64(self.qlen as i64)]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let bufs = self.buffers();
        let target = &bufs[0];
        let query = &bufs[1];
        let mut matches = vec![0i32; self.blocks];
        for (b, m) in matches.iter_mut().enumerate() {
            let mut total = 0i32;
            for t in 0..self.threads {
                let base = (b * self.threads + t) * self.seg;
                for i in 0..self.seg {
                    if (0..self.qlen).all(|j| target[base + i + j] == query[j]) {
                        total += 1;
                    }
                }
            }
            *m = total;
        }
        vec![bufs[0].clone(), bufs[1].clone(), i32s(&matches)]
    }
}

// =====================================================================
// BlackScholes — straight-line transcendental kernel (fully SIMD).
// =====================================================================

/// European option pricing averaged over a volatility scenario sweep —
/// compute-intensive per thread (the paper's workloads are sized for
/// single-GPU execution and therefore heavy, §8.1), two output buffers,
/// tail-divergent guard.
#[derive(Debug, Clone)]
pub struct BlackScholes {
    /// Options priced.
    pub n: usize,
    /// Volatility scenarios averaged per option.
    pub scenarios: usize,
}

impl BlackScholes {
    /// 4096×4 test; 2 Mi × 32 paper.
    pub fn new(scale: Scale) -> BlackScholes {
        match scale {
            Scale::Test => BlackScholes {
                n: 4096,
                scenarios: 4,
            },
            Scale::Paper => BlackScholes {
                n: 2 << 20,
                scenarios: 32,
            },
        }
    }
}

impl Benchmark for BlackScholes {
    fn name(&self) -> &'static str {
        "BlackScholes"
    }
    fn source(&self) -> String {
        "__global__ void black_scholes(float* spot, float* strike, float* years,
                                       float* call, float* put, int n, float r, float v,
                                       int scenarios) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            if (id < n) {
                float s = spot[id];
                float k = strike[id];
                float t = years[id];
                float disc = expf(0.0f - r * t);
                float acc = 0.0f;
                for (int sc = 0; sc < scenarios; sc++) {
                    float vs = v + 0.01f * (float)(sc);
                    float srt = vs * sqrtf(t);
                    float d1 = (logf(s / k) + (r + 0.5f * vs * vs) * t) / srt;
                    float d2 = d1 - srt;
                    float nd1 = 0.5f * (1.0f + erff(d1 / 1.4142135623730951f));
                    float nd2 = 0.5f * (1.0f + erff(d2 / 1.4142135623730951f));
                    acc += s * nd1 - k * disc * nd2;
                }
                float c = acc / (float)(scenarios);
                call[id] = c;
                put[id] = c - s + k * disc;
            }
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::cover1(self.n as u64, 256)
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(7);
        let spot: Vec<f32> = (0..self.n).map(|_| rng.gen_range(10.0..100.0)).collect();
        let strike: Vec<f32> = (0..self.n).map(|_| rng.gen_range(10.0..100.0)).collect();
        let years: Vec<f32> = (0..self.n).map(|_| rng.gen_range(0.2..3.0)).collect();
        vec![
            f32s(&spot),
            f32s(&strike),
            f32s(&years),
            vec![0u8; self.n * 4],
            vec![0u8; self.n * 4],
        ]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![
            Value::I64(self.n as i64),
            Value::F64(0.02),
            Value::F64(0.3),
            Value::I64(self.scenarios as i64),
        ]
    }
    fn compare_elem(&self) -> Option<Scalar> {
        Some(Scalar::F32)
    }
    fn tolerance(&self) -> f64 {
        1e-5
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let bufs = self.buffers();
        let read = |i: usize| -> Vec<f32> {
            bufs[i]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        };
        let (spot, strike, years) = (read(0), read(1), read(2));
        // Scalar params are declared float in the kernel, so they narrow to
        // f32 on read.
        let r = 0.02f32 as f64;
        let v = 0.3f32 as f64;
        let mut call = vec![0f32; self.n];
        let mut put = vec![0f32; self.n];
        for i in 0..self.n {
            let s = spot[i] as f64;
            let k = strike[i] as f64;
            let t = years[i] as f64;
            let disc = (-r * t).exp();
            let mut acc = 0.0f64;
            for sc in 0..self.scenarios {
                let vs = v + 0.01 * (sc as f32 as f64);
                let srt = vs * t.sqrt();
                let d1 = ((s / k).ln() + (r + 0.5 * vs * vs) * t) / srt;
                let d2 = d1 - srt;
                let nd1 = 0.5 * (1.0 + cucc_exec::interp::erf(d1 / std::f64::consts::SQRT_2));
                let nd2 = 0.5 * (1.0 + cucc_exec::interp::erf(d2 / std::f64::consts::SQRT_2));
                acc += s * nd1 - k * disc * nd2;
            }
            let c = acc / self.scenarios as f32 as f64;
            call[i] = c as f32;
            put[i] = (c as f32 as f64 - s + k * disc) as f32;
        }
        vec![
            bufs[0].clone(),
            bufs[1].clone(),
            bufs[2].clone(),
            f32s(&call),
            f32s(&put),
        ]
    }
}

// =====================================================================
// Conv2D — 5×5 stencil over a 2-D grid (row-chunked distribution).
// =====================================================================

/// Dense 2-D convolution with a padded input.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Output width = height.
    pub n: usize,
    /// Filter size (odd).
    pub fsize: usize,
}

impl Conv2d {
    /// 128×3 test; 4096×5 paper.
    pub fn new(scale: Scale) -> Conv2d {
        match scale {
            Scale::Test => Conv2d { n: 128, fsize: 3 },
            Scale::Paper => Conv2d { n: 4096, fsize: 5 },
        }
    }

    fn padded(&self) -> usize {
        self.n + self.fsize - 1
    }
}

impl Benchmark for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2D"
    }
    fn source(&self) -> String {
        "__global__ void conv2d(float* in, float* filt, float* out,
                                int width, int fsize) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            int pw = width + fsize - 1;
            float acc = 0.0f;
            for (int fy = 0; fy < fsize; fy++) {
                for (int fx = 0; fx < fsize; fx++) {
                    acc += in[(y + fy) * pw + x + fx] * filt[fy * fsize + fx];
                }
            }
            out[y * width + x] = acc;
        }"
        .into()
    }
    fn launch(&self) -> LaunchConfig {
        let g = (self.n / 32) as u32;
        LaunchConfig::new((g, g), (32u32, 32u32))
    }
    fn buffers(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(8);
        let p = self.padded();
        let input: Vec<f32> = (0..p * p).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let filt: Vec<f32> = (0..self.fsize * self.fsize)
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();
        vec![f32s(&input), f32s(&filt), vec![0u8; self.n * self.n * 4]]
    }
    fn scalars(&self) -> Vec<Value> {
        vec![Value::I64(self.n as i64), Value::I64(self.fsize as i64)]
    }
    fn reference(&self) -> Vec<Vec<u8>> {
        let bufs = self.buffers();
        let p = self.padded();
        let input: Vec<f32> = bufs[0]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let filt: Vec<f32> = bufs[1]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut out = vec![0f32; self.n * self.n];
        for y in 0..self.n {
            for x in 0..self.n {
                let mut acc = 0.0f64;
                for fy in 0..self.fsize {
                    for fx in 0..self.fsize {
                        acc +=
                            input[(y + fy) * p + x + fx] as f64 * filt[fy * self.fsize + fx] as f64;
                    }
                }
                out[y * self.n + x] = acc as f32;
            }
        }
        vec![bufs[0].clone(), bufs[1].clone(), f32s(&out)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{run_reference_check, setup_args};
    use cucc_core::compile_source;
    use cucc_gpu_model::{GpuDevice, GpuSpec};

    /// Every benchmark, executed on the GPU reference device, must match
    /// its pure-Rust reference.
    #[test]
    fn gpu_reference_matches_rust_reference() {
        let mut suite = perf_suite(Scale::Test);
        suite.push(Box::new(VecCopy::new(Scale::Test)));
        for bench in &suite {
            let ck =
                compile_source(&bench.source()).unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
            let mut gpu = GpuDevice::new(GpuSpec::a100());
            let (args, handles) = setup_args(bench.as_ref(), &ck.kernel, &mut gpu);
            gpu.launch(&ck.kernel, bench.launch(), &args)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
            run_reference_check(bench.as_ref(), &mut gpu, &handles)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    /// All eight perf benchmarks must be Allgather distributable (they are
    /// the programs the paper runs with the three-phase workflow).
    #[test]
    fn perf_suite_is_distributable() {
        for bench in perf_suite(Scale::Test) {
            let ck = compile_source(&bench.source()).unwrap();
            assert!(
                ck.is_distributable(),
                "{} should be distributable: {:?}",
                bench.name(),
                ck.analysis.verdict.reasons()
            );
        }
    }

    /// SIMD classes match the paper's characterizations (§8.2–§8.3).
    #[test]
    fn simd_classes_match_paper_narrative() {
        use cucc_analysis::SimdClass;
        let class_of = |b: &dyn Benchmark| compile_source(&b.source()).unwrap().analysis.simd.class;
        // Transpose: "highly amenable to SIMD optimization".
        assert_eq!(class_of(&Transpose::new(Scale::Test)), SimdClass::Full);
        // BlackScholes with the scenario recurrence → Scalar.
        assert_eq!(class_of(&BlackScholes::new(Scale::Test)), SimdClass::Scalar);
        // BinomialOption: "non-parallel for-loop … challenging to apply
        // SIMD" → Scalar.
        assert_eq!(
            class_of(&BinomialOption::new(Scale::Test)),
            SimdClass::Scalar
        );
        // EP/GA: "for-loops that cannot be optimized with SIMD".
        assert_eq!(class_of(&Ep::new(Scale::Test)), SimdClass::Scalar);
        assert_eq!(class_of(&Ga::new(Scale::Test)), SimdClass::Scalar);
        // FIR: accumulator recurrence → Scalar.
        assert_eq!(class_of(&Fir::new(Scale::Test)), SimdClass::Scalar);
    }

    /// Kmeans at paper scale reproduces §7.2's block arithmetic.
    #[test]
    fn kmeans_paper_geometry() {
        let km = Kmeans::new(Scale::Paper);
        assert_eq!(km.launch().num_blocks(), 313);
    }

    /// EP/GA paper block counts match §7.4.
    #[test]
    fn ep_ga_paper_block_counts() {
        assert_eq!(Ep::new(Scale::Paper).launch().num_blocks(), 512);
        assert_eq!(Ga::new(Scale::Paper).launch().num_blocks(), 256);
        assert_eq!(
            BinomialOption::new(Scale::Paper).launch().num_blocks(),
            1024
        );
    }

    /// Deterministic inputs: two constructions give identical data.
    #[test]
    fn inputs_deterministic() {
        let a = Fir::new(Scale::Test);
        let b = Fir::new(Scale::Test);
        assert_eq!(a.buffers(), b.buffers());
        assert_eq!(a.reference(), b.reference());
        assert_eq!(
            Transpose::new(Scale::Test).buffers(),
            Transpose::new(Scale::Test).buffers()
        );
    }
}
