//! Coverage suite 1: Triton-generated AI kernels (paper §7.1, Figure 7).
//!
//! The paper compiles BERT and ViT with Triton and analyzes the resulting
//! 21 GPU kernels: **all** are Allgather distributable, because Triton's
//! programming model (no inter-block barriers, block-tiled writes) produces
//! regular affine memory access. The kernels below reproduce the op mix of
//! the two models — embeddings, layernorm, QKV projections, attention
//! score/softmax/context, GELU MLPs, residuals, dropout, pooling, logits —
//! with the block-tiled store patterns Triton emits.

use cucc_ir::{LaunchConfig, Value};

/// Expected Figure-7 category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Non-trivially Allgather distributable.
    Distributable,
    /// Write intervals overlap between blocks (atomics or halo writes).
    Overlap,
    /// Statically unanalyzable indirect store index.
    Indirect,
}

/// A kernel in the coverage study, with enough launch/arg information to
/// run the launch-time planner on it.
#[derive(Debug, Clone)]
pub struct CoverageKernel {
    /// Kernel name.
    pub name: &'static str,
    /// Source model/suite (`BERT`, `ViT`, `Hetero-Mark`).
    pub suite: &'static str,
    /// Mini-CUDA source.
    pub source: String,
    /// A representative launch.
    pub launch: LaunchConfig,
    /// Byte size of each buffer parameter (zero-initialized for analysis).
    pub buffer_bytes: Vec<usize>,
    /// Scalar arguments in parameter order.
    pub scalars: Vec<Value>,
    /// Expected classification.
    pub expected: Expected,
}

// Model geometry: hidden H=256, sequence S=64, rows R=64 blocks of 256.
const H: usize = 256;
const S: usize = 64;

fn k(
    name: &'static str,
    suite: &'static str,
    source: &str,
    launch: LaunchConfig,
    buffer_bytes: Vec<usize>,
    scalars: Vec<Value>,
    expected: Expected,
) -> CoverageKernel {
    CoverageKernel {
        name,
        suite,
        source: source.to_string(),
        launch,
        buffer_bytes,
        scalars,
        expected,
    }
}

/// The 21 BERT + ViT kernels (12 + 9).
pub fn triton_kernels() -> Vec<CoverageKernel> {
    let n = S * H; // flattened activation length
    let d = Expected::Distributable;
    let row_launch = LaunchConfig::new(S as u32, H as u32); // block per row
    let flat = LaunchConfig::cover1(n as u64, 256);
    let f4 = 4usize;

    vec![
        // ---------------- BERT ----------------
        k(
            "bert_embed_sum",
            "BERT",
            "__global__ void embed_sum(float* wte, float* wpe, int* ids, float* out, int n, int h) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    int tok = ids[i / h];
                    out[i] = wte[tok * h + i % h] + wpe[i % h];
                }
            }",
            flat,
            vec![64 * H * f4, H * f4, S * 4, n * f4],
            vec![Value::I64(n as i64), Value::I64(H as i64)],
            d,
        ),
        k(
            "bert_layernorm",
            "BERT",
            "__global__ void layernorm(float* x, float* gamma, float* beta, float* out, int h) {
                __shared__ float red[256];
                int row = blockIdx.x;
                int tid = threadIdx.x;
                red[tid] = x[row * h + tid];
                __syncthreads();
                for (int s = 0; s < 8; s++) {
                    int w = 128 >> s;
                    if (tid < w)
                        red[tid] = red[tid] + red[tid + w];
                    __syncthreads();
                }
                float mean = red[0] / (float)(h);
                __syncthreads();
                float dev = x[row * h + tid] - mean;
                red[tid] = dev * dev;
                __syncthreads();
                for (int s = 0; s < 8; s++) {
                    int w = 128 >> s;
                    if (tid < w)
                        red[tid] = red[tid] + red[tid + w];
                    __syncthreads();
                }
                float var = red[0] / (float)(h);
                out[row * h + tid] = gamma[tid] * dev * rsqrtf(var + 0.00001f) + beta[tid];
            }",
            row_launch,
            vec![n * f4, H * f4, H * f4, n * f4],
            vec![Value::I64(H as i64)],
            d,
        ),
        k(
            "bert_qkv_bias",
            "BERT",
            "__global__ void qkv_bias(float* x, float* bias, float* out, int n, int hqkv) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n)
                    out[i] = x[i] + bias[i % hqkv];
            }",
            LaunchConfig::cover1((3 * n) as u64, 256),
            vec![3 * n * f4, 3 * H * f4, 3 * n * f4],
            vec![Value::I64(3 * n as i64), Value::I64(3 * H as i64)],
            d,
        ),
        k(
            "bert_attn_scores",
            "BERT",
            "__global__ void attn_scores(float* q, float* kmat, float* scores, int s, int h, float scale) {
                int col = blockIdx.x * blockDim.x + threadIdx.x;
                int row = blockIdx.y * blockDim.y + threadIdx.y;
                float acc = 0.0f;
                for (int e = 0; e < h; e++)
                    acc += q[row * h + e] * kmat[col * h + e];
                scores[row * s + col] = acc * scale;
            }",
            LaunchConfig::new((4u32, 4u32), (16u32, 16u32)),
            vec![S * H * f4, S * H * f4, S * S * f4],
            vec![
                Value::I64(S as i64),
                Value::I64(H as i64),
                Value::F64(0.0625),
            ],
            d,
        ),
        k(
            "bert_softmax",
            "BERT",
            "__global__ void softmax_row(float* scores, float* probs, int s) {
                __shared__ float red[64];
                int row = blockIdx.x;
                int tid = threadIdx.x;
                float v = scores[row * s + tid];
                red[tid] = v;
                __syncthreads();
                for (int st = 0; st < 6; st++) {
                    int w = 32 >> st;
                    if (tid < w)
                        red[tid] = fmaxf(red[tid], red[tid + w]);
                    __syncthreads();
                }
                float m = red[0];
                __syncthreads();
                float e = expf(v - m);
                red[tid] = e;
                __syncthreads();
                for (int st = 0; st < 6; st++) {
                    int w = 32 >> st;
                    if (tid < w)
                        red[tid] = red[tid] + red[tid + w];
                    __syncthreads();
                }
                probs[row * s + tid] = e / red[0];
            }",
            LaunchConfig::new(S as u32, S as u32),
            vec![S * S * f4, S * S * f4],
            vec![Value::I64(S as i64)],
            d,
        ),
        k(
            "bert_attn_context",
            "BERT",
            "__global__ void attn_context(float* probs, float* v, float* ctx, int s, int h) {
                int col = blockIdx.x * blockDim.x + threadIdx.x;
                int row = blockIdx.y * blockDim.y + threadIdx.y;
                float acc = 0.0f;
                for (int e = 0; e < s; e++)
                    acc += probs[row * s + e] * v[e * h + col];
                ctx[row * h + col] = acc;
            }",
            LaunchConfig::new((16u32, 4u32), (16u32, 16u32)),
            vec![S * S * f4, S * H * f4, S * H * f4],
            vec![Value::I64(S as i64), Value::I64(H as i64)],
            d,
        ),
        k(
            "bert_dense_gelu",
            "BERT",
            "__global__ void dense_gelu(float* x, float* bias, float* out, int n, int h) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    float v = x[i] + bias[i % h];
                    out[i] = 0.5f * v * (1.0f + erff(v / 1.4142135623730951f));
                }
            }",
            flat,
            vec![n * f4, H * f4, n * f4],
            vec![Value::I64(n as i64), Value::I64(H as i64)],
            d,
        ),
        k(
            "bert_residual_add",
            "BERT",
            "__global__ void residual(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n)
                    out[i] = a[i] + b[i];
            }",
            flat,
            vec![n * f4, n * f4, n * f4],
            vec![Value::I64(n as i64)],
            d,
        ),
        k(
            "bert_dropout",
            "BERT",
            "__global__ void dropout(float* x, float* out, int n, int seed) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    int r = ((seed + i) * 1103515245 + 12345) & 2147483647;
                    out[i] = r % 10 < 9 ? x[i] * 1.1111111f : 0.0f;
                }
            }",
            flat,
            vec![n * f4, n * f4],
            vec![Value::I64(n as i64), Value::I64(1234)],
            d,
        ),
        k(
            "bert_pooler_tanh",
            "BERT",
            "__global__ void pooler(float* x, float* w, float* out, int h) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < h)
                    out[i] = tanhf(x[i] * w[i]);
            }",
            LaunchConfig::cover1(H as u64, 64),
            vec![H * f4, H * f4, H * f4],
            vec![Value::I64(H as i64)],
            d,
        ),
        k(
            "bert_logits_bias",
            "BERT",
            "__global__ void logits(float* x, float* b, float* out, int n, int v) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n)
                    out[i] = x[i] + b[i % v];
            }",
            flat,
            vec![n * f4, 1000 * f4, n * f4],
            vec![Value::I64(n as i64), Value::I64(1000)],
            d,
        ),
        k(
            "bert_matmul_tile",
            "BERT",
            "__global__ void matmul(float* a, float* b, float* c, int m, int kk, int nn) {
                int col = blockIdx.x * blockDim.x + threadIdx.x;
                int row = blockIdx.y * blockDim.y + threadIdx.y;
                float acc = 0.0f;
                for (int e = 0; e < kk; e++)
                    acc += a[row * kk + e] * b[e * nn + col];
                c[row * nn + col] = acc;
            }",
            LaunchConfig::new((16u32, 4u32), (16u32, 16u32)),
            vec![S * H * f4, H * H * f4, S * H * f4],
            vec![
                Value::I64(S as i64),
                Value::I64(H as i64),
                Value::I64(H as i64),
            ],
            d,
        ),
        // ---------------- ViT ----------------
        k(
            "vit_patch_embed",
            "ViT",
            "__global__ void patch_embed(float* img, float* proj, float* out, int p, int h) {
                int col = blockIdx.x * blockDim.x + threadIdx.x;
                int patch = blockIdx.y;
                float acc = 0.0f;
                for (int e = 0; e < p; e++)
                    acc += img[patch * p + e] * proj[e * h + col];
                out[patch * h + col] = acc;
            }",
            LaunchConfig::new((1u32, S as u32), (H as u32, 1u32)),
            vec![S * 192 * f4, 192 * H * f4, S * H * f4],
            vec![Value::I64(192), Value::I64(H as i64)],
            d,
        ),
        k(
            "vit_pos_embed",
            "ViT",
            "__global__ void pos_embed(float* x, float* pos, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n)
                    out[i] = x[i] + pos[i];
            }",
            flat,
            vec![n * f4, n * f4, n * f4],
            vec![Value::I64(n as i64)],
            d,
        ),
        k(
            "vit_cls_concat",
            "ViT",
            "__global__ void cls_concat(float* cls, float* x, float* out, int h, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n)
                    out[i] = i < h ? cls[i] : x[i - h];
            }",
            LaunchConfig::cover1((n + H) as u64, 256),
            vec![H * f4, n * f4, (n + H) * f4],
            vec![Value::I64(H as i64), Value::I64((n + H) as i64)],
            d,
        ),
        k(
            "vit_layernorm",
            "ViT",
            "__global__ void layernorm_vit(float* x, float* out, int h) {
                int row = blockIdx.x;
                int tid = threadIdx.x;
                __shared__ float sums[2];
                if (tid == 0) {
                    float acc = 0.0f;
                    float acc2 = 0.0f;
                    for (int e = 0; e < h; e++) {
                        float v = x[row * h + e];
                        acc += v;
                        acc2 += v * v;
                    }
                    sums[0] = acc / (float)(h);
                    sums[1] = acc2 / (float)(h) - (acc / (float)(h)) * (acc / (float)(h));
                }
                __syncthreads();
                out[row * h + tid] = (x[row * h + tid] - sums[0]) * rsqrtf(sums[1] + 0.00001f);
            }",
            row_launch,
            vec![n * f4, n * f4],
            vec![Value::I64(H as i64)],
            d,
        ),
        k(
            "vit_attn_softmax",
            "ViT",
            "__global__ void attn_softmax_vit(float* scores, float* out, int s, float scale) {
                __shared__ float red[64];
                int row = blockIdx.x;
                int tid = threadIdx.x;
                float e = expf(scores[row * s + tid] * scale);
                red[tid] = e;
                __syncthreads();
                for (int st = 0; st < 6; st++) {
                    int w = 32 >> st;
                    if (tid < w)
                        red[tid] = red[tid] + red[tid + w];
                    __syncthreads();
                }
                out[row * s + tid] = e / red[0];
            }",
            LaunchConfig::new(S as u32, S as u32),
            vec![S * S * f4, S * S * f4],
            vec![Value::I64(S as i64), Value::F64(0.125)],
            d,
        ),
        k(
            "vit_gelu",
            "ViT",
            "__global__ void gelu_vit(float* x, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    float v = x[i];
                    float inner = 0.7978845608f * (v + 0.044715f * v * v * v);
                    out[i] = 0.5f * v * (1.0f + tanhf(inner));
                }
            }",
            flat,
            vec![n * f4, n * f4],
            vec![Value::I64(n as i64)],
            d,
        ),
        k(
            "vit_mlp_fc",
            "ViT",
            "__global__ void mlp_fc(float* x, float* w, float* out, int h, int h4) {
                int col = blockIdx.x * blockDim.x + threadIdx.x;
                int row = blockIdx.y * blockDim.y + threadIdx.y;
                float acc = 0.0f;
                for (int e = 0; e < h; e++)
                    acc += x[row * h + e] * w[e * h4 + col];
                out[row * h4 + col] = acc;
            }",
            LaunchConfig::new((64u32, 4u32), (16u32, 16u32)),
            vec![S * H * f4, H * 4 * H * f4, S * 4 * H * f4],
            vec![Value::I64(H as i64), Value::I64(4 * H as i64)],
            d,
        ),
        k(
            "vit_scale_residual",
            "ViT",
            "__global__ void scale_residual(float* a, float* b, float* out, int n, float gamma) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n)
                    out[i] = a[i] * gamma + b[i];
            }",
            flat,
            vec![n * f4, n * f4, n * f4],
            vec![Value::I64(n as i64), Value::F64(0.9)],
            d,
        ),
        k(
            "vit_token_pool",
            "ViT",
            "__global__ void token_pool(float* x, float* out, int s, int h) {
                int col = threadIdx.x;
                int feat = blockIdx.x;
                float acc = 0.0f;
                if (col == 0) {
                    for (int t = 0; t < s; t++)
                        acc += x[t * h + feat];
                    out[feat] = acc / (float)(s);
                }
            }",
            LaunchConfig::new(H as u32, 32u32),
            vec![n * f4, H * f4],
            vec![Value::I64(S as i64), Value::I64(H as i64)],
            d,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_kernels() {
        let ks = triton_kernels();
        assert_eq!(ks.len(), 21);
        assert_eq!(ks.iter().filter(|k| k.suite == "BERT").count(), 12);
        assert_eq!(ks.iter().filter(|k| k.suite == "ViT").count(), 9);
    }

    #[test]
    fn all_parse_and_validate() {
        for k in triton_kernels() {
            let kernel =
                cucc_ir::parse_kernel(&k.source).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            cucc_ir::validate(&kernel).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }
}
