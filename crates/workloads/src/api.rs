//! Device abstraction so one benchmark instance runs everywhere.

use crate::perf::Benchmark;
use cucc_exec::{Arg, BufferId};
use cucc_ir::{Kernel, Param};

/// The minimal CUDA-like surface shared by [`cucc_gpu_model::GpuDevice`],
/// [`cucc_core::CuccCluster`] and [`cucc_pgas::PgasCluster`].
pub trait DeviceApi {
    /// Allocate zeroed device memory.
    fn alloc_dev(&mut self, bytes: usize) -> BufferId;
    /// Host→device copy.
    fn h2d_dev(&mut self, buf: BufferId, data: &[u8]);
    /// Device→host copy.
    fn d2h_dev(&mut self, buf: BufferId) -> Vec<u8>;
}

impl DeviceApi for cucc_gpu_model::GpuDevice {
    fn alloc_dev(&mut self, bytes: usize) -> BufferId {
        self.alloc(bytes)
    }
    fn h2d_dev(&mut self, buf: BufferId, data: &[u8]) {
        self.h2d(buf, data);
    }
    fn d2h_dev(&mut self, buf: BufferId) -> Vec<u8> {
        self.d2h(buf)
    }
}

impl DeviceApi for cucc_core::CuccCluster {
    fn alloc_dev(&mut self, bytes: usize) -> BufferId {
        self.alloc(bytes)
    }
    fn h2d_dev(&mut self, buf: BufferId, data: &[u8]) {
        self.upload(buf, data).expect("device upload");
    }
    fn d2h_dev(&mut self, buf: BufferId) -> Vec<u8> {
        self.download::<u8>(buf).expect("device download")
    }
}

impl DeviceApi for cucc_pgas::PgasCluster {
    fn alloc_dev(&mut self, bytes: usize) -> BufferId {
        self.alloc(bytes)
    }
    fn h2d_dev(&mut self, buf: BufferId, data: &[u8]) {
        self.h2d(buf, data);
    }
    fn d2h_dev(&mut self, buf: BufferId) -> Vec<u8> {
        self.d2h(buf)
    }
}

/// Allocate and upload a benchmark's buffers on a device and assemble the
/// full argument list in kernel-parameter order. Returns `(args, buffer
/// handles in buffer-param order)`.
pub fn setup_args<A: DeviceApi>(
    bench: &dyn Benchmark,
    kernel: &Kernel,
    api: &mut A,
) -> (Vec<Arg>, Vec<BufferId>) {
    let host = bench.buffers();
    let scalars = bench.scalars();
    let mut args = Vec::with_capacity(kernel.params.len());
    let mut handles = Vec::new();
    let (mut bi, mut si) = (0usize, 0usize);
    for p in &kernel.params {
        match p {
            Param::Buffer { .. } => {
                let data = &host[bi];
                bi += 1;
                let id = api.alloc_dev(data.len());
                api.h2d_dev(id, data);
                handles.push(id);
                args.push(Arg::Buffer(id));
            }
            Param::Scalar { .. } => {
                args.push(Arg::Scalar(scalars[si]));
                si += 1;
            }
        }
    }
    assert_eq!(bi, host.len(), "unused host buffers");
    assert_eq!(si, scalars.len(), "unused scalar args");
    (args, handles)
}

/// [`cucc_core::ProgramBackend`] adapters so whole [`cucc_core::GpuProgram`]s
/// run on the GPU reference device and the PGAS baseline (newtype wrappers
/// keep trait coherence).
pub struct GpuBackend(pub cucc_gpu_model::GpuDevice);

impl cucc_core::ProgramBackend for GpuBackend {
    fn prog_alloc(&mut self, bytes: usize) -> BufferId {
        self.0.alloc(bytes)
    }
    fn prog_h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.0.h2d(buf, data);
    }
    fn prog_d2h(&mut self, buf: BufferId) -> Vec<u8> {
        self.0.d2h(buf)
    }
    fn prog_launch(
        &mut self,
        kernel: &cucc_core::CompiledKernel,
        launch: cucc_ir::LaunchConfig,
        args: &[Arg],
    ) -> Result<f64, cucc_core::MigrateError> {
        Ok(self.0.launch(&kernel.kernel, launch, args)?.time)
    }
}

/// PGAS-baseline program backend.
pub struct PgasBackend(pub cucc_pgas::PgasCluster);

impl cucc_core::ProgramBackend for PgasBackend {
    fn prog_alloc(&mut self, bytes: usize) -> BufferId {
        self.0.alloc(bytes)
    }
    fn prog_h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.0.h2d(buf, data);
    }
    fn prog_d2h(&mut self, buf: BufferId) -> Vec<u8> {
        self.0.d2h(buf)
    }
    fn prog_launch(
        &mut self,
        kernel: &cucc_core::CompiledKernel,
        launch: cucc_ir::LaunchConfig,
        args: &[Arg],
    ) -> Result<f64, cucc_core::MigrateError> {
        Ok(self.0.launch(kernel, launch, args)?.time())
    }
}

/// After execution, compare every buffer against the benchmark's reference.
pub fn run_reference_check<A: DeviceApi>(
    bench: &dyn Benchmark,
    api: &mut A,
    handles: &[BufferId],
) -> Result<(), String> {
    let reference = bench.reference();
    assert_eq!(reference.len(), handles.len());
    for (i, (id, want)) in handles.iter().zip(&reference).enumerate() {
        let got = api.d2h_dev(*id);
        crate::buffers_close(&got, want, bench.compare_elem(), bench.tolerance())
            .map_err(|e| format!("{}: buffer {i}: {e}", bench.name()))?;
    }
    Ok(())
}
