//! Coverage suite 2: Hetero-Mark-style hand-written CUDA kernels (§7.1).
//!
//! Figure 7: of the 13 kernels, **8 are Allgather distributable**, **4 have
//! overlapping write intervals** (atomic histograms/scatters or halo
//! writes), and **1 uses indirect memory access** that defeats static
//! analysis.

use crate::triton::{CoverageKernel, Expected};
use cucc_ir::{LaunchConfig, Value};

fn k(
    name: &'static str,
    source: &str,
    launch: LaunchConfig,
    buffer_bytes: Vec<usize>,
    scalars: Vec<Value>,
    expected: Expected,
) -> CoverageKernel {
    CoverageKernel {
        name,
        suite: "Hetero-Mark",
        source: source.to_string(),
        launch,
        buffer_bytes,
        scalars,
        expected,
    }
}

/// The 13 Hetero-Mark-style kernels.
pub fn heteromark_kernels() -> Vec<CoverageKernel> {
    let d = Expected::Distributable;
    let n = 16384usize;
    let f4 = 4usize;
    let flat = LaunchConfig::cover1(n as u64, 256);

    vec![
        // ------- 8 distributable -------
        k(
            "hm_aes_round",
            // One 16-byte state per thread: sub-bytes-style mixing written
            // to a dense per-thread range.
            "__global__ void aes_round(uchar* in, uchar* key, uchar* out, int nstates) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < nstates) {
                    for (int b = 0; b < 16; b++) {
                        int v = in[id * 16 + b];
                        v = ((v << 1) ^ (v >> 7) ^ key[b]) & 255;
                        out[id * 16 + b] = v;
                    }
                }
            }",
            LaunchConfig::cover1(1024, 128),
            vec![1024 * 16, 16, 1024 * 16],
            vec![Value::I64(1024)],
            d,
        ),
        k(
            "hm_fir",
            "__global__ void fir(float* in, float* coef, float* out, int n, int taps) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0f;
                for (int t = 0; t < taps; t++)
                    acc += in[id + t] * coef[t];
                if (id < n)
                    out[id] = acc;
            }",
            flat,
            vec![(n + 256 + 32) * f4, 32 * f4, n * f4],
            vec![Value::I64(n as i64), Value::I64(32)],
            d,
        ),
        k(
            "hm_kmeans",
            "__global__ void kmeans(float* pts, float* ctr, int* mem, int n, int kc, int f) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) {
                    int best = 0;
                    float bestd = 1.0e30f;
                    for (int c = 0; c < kc; c++) {
                        float dd = 0.0f;
                        for (int j = 0; j < f; j++) {
                            float t = pts[id * f + j] - ctr[c * f + j];
                            dd += t * t;
                        }
                        if (dd < bestd) {
                            bestd = dd;
                            best = c;
                        }
                    }
                    mem[id] = best;
                }
            }",
            flat,
            vec![n * 4 * f4, 8 * 4 * f4, n * 4],
            vec![Value::I64(n as i64), Value::I64(8), Value::I64(4)],
            d,
        ),
        k(
            "hm_ep",
            "__global__ void ep(float* sums, int iters, int seed) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                int s = seed + id;
                float acc = 0.0f;
                for (int i = 0; i < iters; i++) {
                    s = (s * 1103515245 + 12345) & 2147483647;
                    float x = (float)(s) / 2147483648.0f;
                    acc += x * x;
                }
                sums[id] = acc;
            }",
            LaunchConfig::new(64u32, 128u32),
            vec![64 * 128 * f4],
            vec![Value::I64(64), Value::I64(7)],
            d,
        ),
        k(
            "hm_ga",
            "__global__ void ga(uchar* target, uchar* query, int* matches, int seg, int qlen) {
                __shared__ int partial[256];
                int tid = threadIdx.x;
                int base = (blockIdx.x * blockDim.x + tid) * seg;
                int count = 0;
                for (int i = 0; i < seg; i++) {
                    int m = 1;
                    for (int j = 0; j < qlen; j++) {
                        if (target[base + i + j] != query[j])
                            m = 0;
                    }
                    count += m;
                }
                partial[tid] = count;
                __syncthreads();
                if (tid == 0) {
                    int total = 0;
                    for (int t = 0; t < blockDim.x; t++)
                        total += partial[t];
                    matches[blockIdx.x] = total;
                }
            }",
            LaunchConfig::new(16u32, 64u32),
            vec![16 * 64 * 16 + 4, 4, 16 * 4],
            vec![Value::I64(16), Value::I64(4)],
            d,
        ),
        k(
            "hm_blackscholes",
            "__global__ void bs(float* spot, float* strike, float* call, int n, float r) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) {
                    float d = logf(spot[id] / strike[id]) + r;
                    call[id] = spot[id] * 0.5f * (1.0f + erff(d));
                }
            }",
            flat,
            vec![n * f4, n * f4, n * f4],
            vec![Value::I64(n as i64), Value::F64(0.05)],
            d,
        ),
        k(
            "hm_background_extract",
            // BE: per-pixel foreground mask, branch-free select.
            "__global__ void be(uchar* frame, uchar* bg, uchar* mask, int n, int thr) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) {
                    int diff = frame[id] - bg[id];
                    mask[id] = (diff > thr || 0 - diff > thr) ? 255 : 0;
                }
            }",
            flat,
            vec![n, n, n],
            vec![Value::I64(n as i64), Value::I64(16)],
            d,
        ),
        k(
            "hm_transpose",
            "__global__ void transpose(float* in, float* out, int n) {
                __shared__ float tile[1024];
                tile[threadIdx.y * 32 + threadIdx.x]
                    = in[(blockIdx.x * 32 + threadIdx.y) * n + blockIdx.y * 32 + threadIdx.x];
                __syncthreads();
                out[(blockIdx.y * 32 + threadIdx.y) * n + blockIdx.x * 32 + threadIdx.x]
                    = tile[threadIdx.x * 32 + threadIdx.y];
            }",
            LaunchConfig::new((4u32, 4u32), (32u32, 32u32)),
            vec![128 * 128 * f4, 128 * 128 * f4],
            vec![Value::I64(128)],
            d,
        ),
        // ------- 4 overlapping-write -------
        k(
            "hm_histogram",
            "__global__ void hist(uint* bins, uchar* data, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n)
                    atomicAdd(&bins[data[id]], 1);
            }",
            flat,
            vec![256 * 4, n],
            vec![Value::I64(n as i64)],
            Expected::Overlap,
        ),
        k(
            "hm_pagerank_push",
            "__global__ void pr(float* rank, int* dst, float* next, int nedges) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < nedges)
                    atomicAdd(&next[dst[id]], rank[id]);
            }",
            flat,
            vec![n * f4, n * 4, 1024 * f4],
            vec![Value::I64(n as i64)],
            Expected::Overlap,
        ),
        k(
            "hm_knn_min",
            "__global__ void knn(int* best, float* dist, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n)
                    atomicMin(&best[0], (int)(dist[id] * 1000.0f));
            }",
            flat,
            vec![4, n * f4],
            vec![Value::I64(n as i64)],
            Expected::Overlap,
        ),
        k(
            "hm_sliding_window",
            // Halo write: consecutive blocks overlap by one element. The
            // distributable analysis accepts the affine form, but the kernel
            // verifier proves a MUST-level inter-block write-write race
            // (adjacent blocks share `out[b*(blockDim.x-1)+blockDim.x-1]`),
            // so the planner vetoes distribution before the launch-time
            // probe even runs (classified Overlap).
            "__global__ void sw(float* out) {
                int id = blockIdx.x * (blockDim.x - 1) + threadIdx.x;
                out[id] = 1.0f;
            }",
            LaunchConfig::new(32u32, 64u32),
            vec![(32 * 63 + 64) * f4],
            vec![],
            Expected::Overlap,
        ),
        // ------- 1 indirect -------
        k(
            "hm_scatter_bst",
            "__global__ void scatter(int* keys, int* vals, int* table, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n)
                    table[keys[id]] = vals[id];
            }",
            flat,
            vec![n * 4, n * 4, n * 4],
            vec![Value::I64(n as i64)],
            Expected::Indirect,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_kernels_with_figure7_split() {
        let ks = heteromark_kernels();
        assert_eq!(ks.len(), 13);
        let count = |e: Expected| ks.iter().filter(|k| k.expected == e).count();
        assert_eq!(count(Expected::Distributable), 8);
        assert_eq!(count(Expected::Overlap), 4);
        assert_eq!(count(Expected::Indirect), 1);
    }

    #[test]
    fn all_parse_and_validate() {
        for k in heteromark_kernels() {
            let kernel =
                cucc_ir::parse_kernel(&k.source).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            cucc_ir::validate(&kernel).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }
}
