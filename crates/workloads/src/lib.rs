//! # cucc-workloads — the paper's benchmark programs
//!
//! Three suites:
//!
//! * [`perf`] — the eight performance benchmarks of §7.2–§7.4 (Transpose,
//!   FIR, Kmeans, BinomialOption, EP, GA, plus BlackScholes and Conv2D as
//!   the two unnamed "previously used in other GPU migration projects"
//!   programs — see DESIGN.md), each with a pure-Rust reference
//!   implementation that the distributed executions are verified against;
//! * [`triton`] — 21 Triton-style AI kernels from BERT and ViT (§7.1,
//!   Figure 7: all Allgather distributable);
//! * [`heteromark`] — 13 Hetero-Mark-style hand-written CUDA kernels (§7.1,
//!   Figure 7: 8 distributable, 4 with overlapping writes, 1 with indirect
//!   access).
//!
//! The [`Benchmark`] trait describes a runnable instance (kernel source,
//! launch geometry, input data, expected outputs); [`api::DeviceApi`] lets
//! the same instance run on the GPU reference device, the CuCC cluster or
//! the PGAS baseline.

pub mod api;
pub mod heteromark;
pub mod perf;
pub mod triton;

pub use api::{run_reference_check, setup_args, DeviceApi, GpuBackend, PgasBackend};
pub use heteromark::heteromark_kernels;
pub use perf::{perf_suite, Benchmark, Scale};
pub use triton::{triton_kernels, CoverageKernel, Expected};

/// Classify a coverage kernel the way Figure 7 does: run the static
/// Allgather-distributable analysis, then (for statically distributable
/// kernels) the launch-time probe on the kernel's sample launch. Kernels
/// whose footprints overlap only dynamically (halo writes) are caught by
/// the probe.
pub fn classify_coverage(k: &CoverageKernel) -> Result<Expected, String> {
    use cucc_analysis::{plan_launch, Plan, Reason};
    use cucc_exec::{Arg, MemPool};
    use cucc_ir::Param;

    let kernel = cucc_ir::parse_kernel(&k.source).map_err(|e| format!("{}: {e}", k.name))?;
    cucc_ir::validate(&kernel).map_err(|e| format!("{}: {e}", k.name))?;
    let verdict = cucc_analysis::analyze_kernel(&kernel);
    if let Some(reasons) = match &verdict {
        cucc_analysis::Verdict::Trivial(r) => Some(r),
        cucc_analysis::Verdict::Distributable(_) => None,
    } {
        return Ok(if reasons.contains(&Reason::IndirectIndex) {
            Expected::Indirect
        } else {
            Expected::Overlap
        });
    }
    // Statically distributable: confirm with the launch-time probe.
    let mut pool = MemPool::new();
    let mut args = Vec::new();
    let (mut bi, mut si) = (0usize, 0usize);
    for p in &kernel.params {
        match p {
            Param::Buffer { .. } => {
                let id = pool.alloc(k.buffer_bytes[bi]);
                bi += 1;
                args.push(Arg::Buffer(id));
            }
            Param::Scalar { .. } => {
                args.push(Arg::Scalar(k.scalars[si]));
                si += 1;
            }
        }
    }
    match plan_launch(&kernel, &verdict, k.launch, &args, &pool) {
        Plan::ThreePhase(_) => Ok(Expected::Distributable),
        Plan::Replicated(_) => Ok(Expected::Overlap),
    }
}

/// Compare two buffers elementwise with a relative tolerance for floats.
///
/// `elem = None` means exact byte comparison.
pub fn buffers_close(
    got: &[u8],
    want: &[u8],
    elem: Option<cucc_ir::Scalar>,
    rel_tol: f64,
) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    match elem {
        None => {
            if got == want {
                Ok(())
            } else {
                let idx = got.iter().zip(want).position(|(a, b)| a != b).unwrap();
                Err(format!("byte mismatch at offset {idx}"))
            }
        }
        Some(s) => {
            let sz = s.size();
            for (i, (g, w)) in got.chunks_exact(sz).zip(want.chunks_exact(sz)).enumerate() {
                let (gv, wv) = (
                    cucc_exec::memory::decode(s, g).as_f64(),
                    cucc_exec::memory::decode(s, w).as_f64(),
                );
                let denom = wv.abs().max(1.0);
                if (gv - wv).abs() / denom > rel_tol {
                    return Err(format!("element {i}: got {gv}, want {wv}"));
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cucc_ir::Scalar;

    /// Figure 7, end to end: every coverage kernel classifies as expected.
    #[test]
    fn figure7_classification_matches() {
        for k in triton_kernels().iter().chain(heteromark_kernels().iter()) {
            let got = classify_coverage(k).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(got, k.expected, "{} misclassified", k.name);
        }
    }

    #[test]
    fn exact_compare() {
        assert!(buffers_close(&[1, 2], &[1, 2], None, 0.0).is_ok());
        assert!(buffers_close(&[1, 2], &[1, 3], None, 0.0).is_err());
        assert!(buffers_close(&[1], &[1, 2], None, 0.0).is_err());
    }

    #[test]
    fn tolerant_compare() {
        let a = 1.0f32.to_le_bytes();
        let b = 1.0000001f32.to_le_bytes();
        assert!(buffers_close(&a, &b, Some(Scalar::F32), 1e-6).is_ok());
        let c = 1.1f32.to_le_bytes();
        assert!(buffers_close(&a, &c, Some(Scalar::F32), 1e-6).is_err());
    }
}
