//! # CuCC — CUDA on CPU Clusters
//!
//! A from-scratch Rust reproduction of *"Scaling GPU-to-CPU Migration for
//! Efficient Distributed Execution on CPU Clusters"* (Han & Kim, PPoPP '26).
//!
//! CuCC executes GPU programs on **distributed CPU clusters**: a compiler
//! analysis (the *Allgather distributable analysis*) proves that a kernel's
//! blocks can be partitioned across nodes so that a single **balanced
//! in-place Allgather** restores memory consistency, and a three-phase
//! runtime (partial blocks → Allgather → callback blocks) executes the
//! migrated program with one coarse collective instead of millions of
//! fine-grained remote accesses.
//!
//! This façade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`ir`] | CUDA-like kernel IR, builder, mini-CUDA parser |
//! | [`analysis`] | Allgather-distributable, affine, variance & SIMD analyses |
//! | [`exec`] | instrumented interpreter (block-as-function semantics) |
//! | [`net`] | LogGP interconnect, Allgather algorithms, p2p tracking |
//! | [`cluster`] | simulated CPU cluster, Table-1 machine specs, time model |
//! | [`core`] | the CuCC runtime: compile + three-phase distributed launch |
//! | [`pgas`] | the UPC++-style fine-grained baseline (§3.1/§7.3) |
//! | [`gpu_model`] | A100/V100 roofline model + functional reference device |
//! | [`slurm`] | partition queueing (Fig. 1) and throughput (Fig. 12) models |
//! | [`trace`] | simulated-clock span/event timeline + Perfetto export |
//! | [`workloads`] | the 8 evaluation benchmarks + 34 coverage kernels |
//!
//! ## Quickstart
//!
//! ```
//! use cucc::core::{compile_source, CuccCluster, RuntimeConfig};
//! use cucc::cluster::ClusterSpec;
//! use cucc::exec::Arg;
//! use cucc::ir::LaunchConfig;
//!
//! let kernel = compile_source(r#"
//!     __global__ void scale(float* data, int n, float a) {
//!         int id = blockIdx.x * blockDim.x + threadIdx.x;
//!         if (id < n) data[id] = data[id] * a;
//!     }
//! "#).unwrap();
//! assert!(kernel.is_distributable());
//!
//! let mut cluster = CuccCluster::with_options(
//!     ClusterSpec::thread_focused(), RuntimeConfig::default());
//! let buf = cluster.alloc(4096 * 4);
//! cluster.upload(buf, &vec![2.0f32; 4096]).unwrap();
//! let report = cluster
//!     .launch(&kernel, LaunchConfig::cover1(4096, 256),
//!             &[Arg::Buffer(buf), Arg::int(4096), Arg::float(3.0)])
//!     .unwrap();
//! assert!(report.mode.is_three_phase());
//! assert_eq!(cluster.download::<f32>(buf).unwrap(), vec![6.0f32; 4096]);
//! ```

pub use cucc_analysis as analysis;
pub use cucc_cluster as cluster;
pub use cucc_core as core;
pub use cucc_exec as exec;
pub use cucc_gpu_model as gpu_model;
pub use cucc_ir as ir;
pub use cucc_net as net;
pub use cucc_pgas as pgas;
pub use cucc_slurm as slurm;
pub use cucc_trace as trace;
pub use cucc_workloads as workloads;
