//! `cucc` — command-line front-end to the CuCC migration framework.
//!
//! ```text
//! cucc analyze  <kernel.cu>                     # compiler analysis report
//! cucc codegen  <kernel.cu>                     # Figure-6 CPU modules
//! cucc run      <kernel.cu> [options]           # migrate & execute
//! cucc serve    [options]                       # multi-tenant serving front-end
//! cucc check    <kernel.cu|file.rs>             # static race/bounds/barrier verifier
//! cucc check    --builtin                       # verify every built-in suite kernel
//! cucc lint     <kernel.cu|file.rs>             # range-analysis lints (dead stores, …)
//! cucc lint     --builtin                       # lint every built-in suite kernel
//! cucc coverage                                 # Figure-7 suites
//!
//! run options:
//!   --cluster simd|thread    target cluster class   (default simd)
//!   --nodes N                cluster size           (default 4)
//!   --grid X[,Y[,Z]]         grid dimensions        (default 64)
//!   --block X[,Y[,Z]]        block dimensions       (default 256)
//!   --arg buf:<elems>f32     buffer argument, random f32 data
//!   --arg buf:<elems>i32     buffer argument, random i32 data
//!   --arg buf:<bytes>        buffer argument, random bytes
//!   --arg int:<v>            integer scalar
//!   --arg float:<v>          float scalar
//!   --seed S                 RNG seed for buffer data (default 42)
//!   --engine tree|bytecode|simd
//!                            functional executor       (default bytecode)
//!   -v, --verbose            per-phase batch/vector report: why each phase
//!                            ran dense/pred/scalar and how many
//!                            superinstructions were fused
//!   --node-threads N         intra-node worker threads (default 0 = auto)
//!   --modeled                timing-only (skip functional execution)
//!   --streams N              after the verified run, replay the kernel as
//!                            an N-stream pipeline (async h2d + launch per
//!                            replica) and report overlap vs serial
//!   --graph N                after the verified run, capture the upload +
//!                            launch sequence into a launch graph and replay
//!                            it N times; report schedule-cache hit rate,
//!                            elided/narrowed Allgathers and wire bytes saved
//!   --trace out.json         export the simulated-clock timeline as
//!                            Chrome trace-event JSON (open in Perfetto)
//!   --sanitize               run the dynamic write-race / OOB sanitizer
//!                            before execution and cross-check it against
//!                            the static verifier verdicts
//!   --fault SPEC             inject a scripted fault; repeatable. SPECs:
//!                            kill:node=N@t=T, delay:node=N@t=T[,factor=F],
//!                            drop:step@t=T, join:node=N@t=T (revive a dead
//!                            slot, or grow the cluster when N == size)
//!   --checkpoint PATH        after the verified run, serialize the full
//!                            cluster state (buffers, membership epoch,
//!                            fault cursor, clock) to PATH
//!   --restore PATH           resume from a checkpoint instead of fresh
//!                            uploads; buffer args bind to the restored
//!                            allocations in order (GPU byte-comparison is
//!                            skipped — the state is mid-job)
//!
//! serve options:
//!   --synthetic jobs=N,tenants=M
//!                            synthetic arrival stream shape (default 200, 8)
//!   --policy fifo|fair       queue discipline          (default fair)
//!   --queue-depth N          per-tenant admission limit (default 0 = unbounded)
//!   --nodes N                cluster size              (default 8)
//!   --cluster simd|thread    target cluster class      (default simd)
//!   --gap-us USEC            mean interarrival gap     (default 200)
//!   --seed S                 stream RNG seed           (default 42)
//!   --modeled / --engine / --node-threads / --fault / --trace
//!                            as for `run`
//! ```
//!
//! `run` executes the kernel on the simulated GPU (reference) and on the
//! CuCC cluster, compares the results byte-for-byte, and prints the
//! distribution decision and simulated-time breakdown.

use cucc::analysis::Verdict;
use cucc::cluster::ClusterSpec;
use cucc::core::codegen::{generate_host_module, generate_kernel_module};
use cucc::core::{
    compile_source, synthetic_stream, CuccCluster, EngineKind, ExecMode, JobServer, RunOptions,
    ServeConfig, ServePolicy,
};
use cucc::exec::Arg;
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::ir::{Dim3, LaunchConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cucc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let path = args.get(1).ok_or("usage: cucc analyze <kernel.cu>")?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            cmd_analyze(&src)
        }
        Some("codegen") => {
            let path = args.get(1).ok_or("usage: cucc codegen <kernel.cu>")?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            cmd_codegen(&src)
        }
        Some("run") => {
            let path = args.get(1).ok_or("usage: cucc run <kernel.cu> [options]")?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let opts = RunOpts::parse(&args[2..])?;
            cmd_run(&src, &opts)
        }
        Some("serve") => {
            let opts = ServeOpts::parse(&args[1..])?;
            cmd_serve(&opts)
        }
        Some("check") => cmd_check(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("coverage") => Ok(cmd_coverage()),
        Some("--help") | Some("-h") | None => Ok(usage()),
        Some(other) => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: cucc <analyze|codegen|run|serve|check|lint|coverage> [args]\n\
     \n\
     analyze  <kernel.cu>         run the Allgather-distributable & SIMD analyses\n\
     codegen  <kernel.cu>         print the generated CPU host/kernel modules\n\
     run      <kernel.cu> [opts]  migrate and execute on a simulated cluster\n\
     serve    [opts]              drive a multi-tenant synthetic job stream through\n\
                                  the admission-controlled serving front-end\n\
     check    <kernel.cu|.rs>     static race / bounds / barrier-divergence verifier\n\
     check    --builtin           verify all built-in suite kernels at real launches\n\
     lint     <kernel.cu|.rs>     range-analysis lints: dead stores, redundant\n\
                                  barriers, constant conditions, unreachable code\n\
     lint     --builtin           lint all built-in suite kernels at real launches\n\
     coverage                     classify the built-in Figure-7 kernel suites"
        .to_string()
}

// -------------------------------------------------------------- analyze --

fn cmd_analyze(src: &str) -> Result<String, String> {
    let ck = compile_source(src).map_err(|e| e.to_string())?;
    let mut out = format!("kernel `{}`\n", ck.name());
    match &ck.analysis.verdict {
        Verdict::Distributable(meta) => {
            out += "  verdict       : Allgather distributable (three-phase workflow)\n";
            out += &format!("  tail_divergent: {}\n", meta.tail_divergent());
            for b in &meta.buffers {
                out += &format!(
                    "  mem_ptr       : `{}` ({} B/elem)\n",
                    ck.kernel.params[b.param.index()].name(),
                    b.elem_size
                );
            }
            out += &format!("  write sites   : {}\n", meta.sites.len());
        }
        Verdict::Trivial(reasons) => {
            out += "  verdict       : trivially distributable (replicated execution)\n";
            for d in cucc::analysis::reason_diagnostics(reasons) {
                out += &format!("    {d}\n");
            }
        }
    }
    out += &format!(
        "  SIMD class    : {:?} (efficiency {:.2})\n",
        ck.analysis.simd.class, ck.analysis.simd.efficiency
    );
    for r in &ck.analysis.simd.reasons {
        out += &format!("    simd: {r}\n");
    }
    // Kernel verifier at the canonical launch (`cucc check` runs the same
    // rules; real geometry and extents come from `cucc check --builtin`).
    let map = cucc::ir::parse_kernel_with_map(src).ok().map(|(_, m)| m);
    let (vlaunch, vargs, vextents) = cucc::analysis::canonical_check_input(&ck.kernel);
    let vr =
        cucc::analysis::verify_launch(&ck.kernel, vlaunch, &vargs, &vextents, true, map.as_ref());
    out += &format!("  verifier      : {vlaunch}\n");
    out += &vr.render();
    Ok(out)
}

// ---------------------------------------------------------------- check --

/// Pull every `__global__ … { … }` kernel out of a text file (balanced
/// braces). Lets `cucc check` run over the mini-CUDA sources embedded in
/// the Rust examples as well as plain `.cu` files.
fn extract_cuda_kernels(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some(pos) = text[at..].find("__global__") {
        let start = at + pos;
        let Some(open) = text[start..].find('{') else {
            break;
        };
        let mut depth = 0usize;
        let mut end = None;
        for (i, c) in text[start + open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(start + open + i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        out.push(text[start..end].to_string());
        at = end;
    }
    out
}

/// Parse + verify one kernel source. With `real = Some((launch, bytes,
/// scalars))` the rules run at that geometry with exact allocation-derived
/// extents; otherwise at the canonical launch with assumed extents.
/// Build the `(args, extents)` a real launch binds: buffers in declaration
/// order with allocation-derived element extents, scalars from `scalars`.
fn real_args(
    kernel: &cucc::ir::Kernel,
    buffer_bytes: &[usize],
    scalars: &[cucc::ir::Value],
) -> (Vec<Arg>, Vec<Option<u64>>) {
    use cucc::ir::Param;
    let mut args = Vec::new();
    let mut extents = Vec::new();
    let (mut bi, mut si) = (0usize, 0usize);
    for (i, p) in kernel.params.iter().enumerate() {
        match p {
            Param::Buffer { elem, .. } => {
                args.push(Arg::Buffer(cucc::exec::BufferId(i as u32)));
                extents.push(Some((buffer_bytes[bi] / elem.size()) as u64));
                bi += 1;
            }
            Param::Scalar { .. } => {
                args.push(Arg::Scalar(scalars[si]));
                extents.push(None);
                si += 1;
            }
        }
    }
    (args, extents)
}

fn verify_source(
    src: &str,
    real: Option<(LaunchConfig, &[usize], &[cucc::ir::Value])>,
) -> Result<(String, cucc::analysis::VerifyReport), String> {
    let (kernel, map) = cucc::ir::parse_kernel_with_map(src).map_err(|e| e.to_string())?;
    cucc::ir::validate(&kernel).map_err(|e| format!("{}: {e}", kernel.name))?;
    let report = match real {
        Some((launch, buffer_bytes, scalars)) => {
            let (args, extents) = real_args(&kernel, buffer_bytes, scalars);
            cucc::analysis::verify_launch(&kernel, launch, &args, &extents, false, Some(&map))
        }
        None => {
            let (launch, args, extents) = cucc::analysis::canonical_check_input(&kernel);
            cucc::analysis::verify_launch(&kernel, launch, &args, &extents, true, Some(&map))
        }
    };
    Ok((kernel.name.clone(), report))
}

/// Parse + lint one kernel source, at the real launch when given, otherwise
/// at the canonical check launch.
fn lint_source(
    src: &str,
    real: Option<(LaunchConfig, &[usize], &[cucc::ir::Value])>,
) -> Result<(String, cucc::analysis::LintReport), String> {
    let (kernel, map) = cucc::ir::parse_kernel_with_map(src).map_err(|e| e.to_string())?;
    cucc::ir::validate(&kernel).map_err(|e| format!("{}: {e}", kernel.name))?;
    let (launch, args, extents) = match real {
        Some((launch, buffer_bytes, scalars)) => {
            let (args, extents) = real_args(&kernel, buffer_bytes, scalars);
            (launch, args, extents)
        }
        None => cucc::analysis::canonical_check_input(&kernel),
    };
    let report = cucc::analysis::lint_kernel(&kernel, launch, &args, &extents, Some(&map))
        .map_err(|e| format!("{}: {e}", kernel.name))?;
    Ok((kernel.name.clone(), report))
}

fn cmd_check(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        None => Err("usage: cucc check <kernel.cu|file.rs> | cucc check --builtin".into()),
        Some("--builtin") => cmd_check_builtin(),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let sources = if path.ends_with(".rs") {
                extract_cuda_kernels(&text)
            } else {
                vec![text]
            };
            if sources.is_empty() {
                return Err(format!("{path}: no `__global__` kernels found"));
            }
            let mut out = String::new();
            let mut musts = 0usize;
            for src in &sources {
                let (name, report) = verify_source(src, None)?;
                out += &format!("kernel `{name}` at canonical grid 64 × block 256:\n");
                out += &report.render();
                if report.has_must() {
                    musts += 1;
                }
            }
            if musts > 0 {
                Err(format!(
                    "{out}{musts} kernel(s) with MUST-level diagnostics"
                ))
            } else {
                Ok(out)
            }
        }
    }
}

// ----------------------------------------------------------------- lint --

fn cmd_lint(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        None => Err("usage: cucc lint <kernel.cu|file.rs> | cucc lint --builtin".into()),
        Some("--builtin") => cmd_lint_builtin(),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let sources = if path.ends_with(".rs") {
                extract_cuda_kernels(&text)
            } else {
                vec![text]
            };
            if sources.is_empty() {
                return Err(format!("{path}: no `__global__` kernels found"));
            }
            let mut out = String::new();
            for src in &sources {
                let (name, report) = lint_source(src, None)?;
                out += &format!("kernel `{name}` at canonical grid 64 × block 256:\n");
                out += &report.render();
            }
            Ok(out)
        }
    }
}

/// Lint every built-in suite kernel at its real launch. Lints are advisory
/// (all `Info`), so this never fails — findings are printed for review.
fn cmd_lint_builtin() -> Result<String, String> {
    use cucc::workloads::{heteromark_kernels, perf_suite, triton_kernels, Scale};
    let mut out = String::from("range-analysis lints over the built-in suites (real launches):\n");
    let mut findings = 0usize;
    let mut checked = 0usize;
    let mut emit =
        |out: &mut String, suite: &str, name: &str, report: &cucc::analysis::LintReport| {
            *out += &format!("  {suite:18} {name:22} {}\n", report.summary());
            for d in &report.diagnostics {
                *out += &format!("    {d}\n");
            }
            findings += report.diagnostics.len();
            checked += 1;
        };
    for (suite, kernels) in [
        ("Triton (BERT+ViT)", triton_kernels()),
        ("Hetero-Mark", heteromark_kernels()),
    ] {
        for k in &kernels {
            let (_, report) =
                lint_source(&k.source, Some((k.launch, &k.buffer_bytes, &k.scalars)))?;
            emit(&mut out, suite, k.name, &report);
        }
    }
    for b in perf_suite(Scale::Test) {
        let bufs = b.buffers();
        let bytes: Vec<usize> = bufs.iter().map(Vec::len).collect();
        let scalars = b.scalars();
        let (_, report) = lint_source(&b.source(), Some((b.launch(), &bytes, &scalars)))?;
        emit(&mut out, "perf (Fig. 9)", b.name(), &report);
    }
    out += &format!("{checked} kernels linted, {findings} finding(s)\n");
    Ok(out)
}

/// Compact range/lint column for the `check --builtin` table.
fn range_summary(r: &cucc::analysis::LintReport) -> String {
    format!(
        "certs {}/{} lint {}",
        r.cert_stats.0,
        r.cert_stats.1,
        r.diagnostics.len()
    )
}

/// Verify every coverage kernel and perf benchmark at its real launch
/// geometry and allocation sizes. MUST-level findings are only tolerated on
/// kernels already annotated as overlapping (`Expected::Overlap/Indirect`) —
/// anywhere else they fail the command, which is what CI runs.
fn cmd_check_builtin() -> Result<String, String> {
    use cucc::workloads::{heteromark_kernels, perf_suite, triton_kernels, Expected, Scale};
    let mut out = String::from("kernel verifier over the built-in suites (real launches):\n");
    let mut unexpected: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for (suite, kernels) in [
        ("Triton (BERT+ViT)", triton_kernels()),
        ("Hetero-Mark", heteromark_kernels()),
    ] {
        for k in &kernels {
            let real = Some((k.launch, &k.buffer_bytes[..], &k.scalars[..]));
            let (_, report) = verify_source(&k.source, real)?;
            let (_, lint) = lint_source(&k.source, real)?;
            let annotated = k.expected != Expected::Distributable;
            out += &format!(
                "  {suite:18} {:22} race {:<12} bounds {:<12} barrier {:<12} {}{}\n",
                k.name,
                report.race.to_string(),
                report.bounds.to_string(),
                report.barrier.to_string(),
                range_summary(&lint),
                if annotated && report.has_must() {
                    "  (expected: overlapping writes)"
                } else {
                    ""
                }
            );
            if report.has_must() && !annotated {
                unexpected.push(format!("{suite}/{}", k.name));
            }
            checked += 1;
        }
    }
    for b in perf_suite(Scale::Test) {
        let bufs = b.buffers();
        let bytes: Vec<usize> = bufs.iter().map(Vec::len).collect();
        let scalars = b.scalars();
        let (_, report) = verify_source(&b.source(), Some((b.launch(), &bytes, &scalars)))?;
        let (_, lint) = lint_source(&b.source(), Some((b.launch(), &bytes, &scalars)))?;
        out += &format!(
            "  {:18} {:22} race {:<12} bounds {:<12} barrier {:<12} {}\n",
            "perf (Fig. 9)",
            b.name(),
            report.race.to_string(),
            report.bounds.to_string(),
            report.barrier.to_string(),
            range_summary(&lint),
        );
        if report.has_must() {
            unexpected.push(format!("perf/{}", b.name()));
        }
        checked += 1;
    }
    if unexpected.is_empty() {
        out += &format!(
            "{checked} kernels checked; MUST findings confined to annotated overlapping kernels\n"
        );
        Ok(out)
    } else {
        Err(format!(
            "{out}unexpected MUST-level diagnostics on: {}",
            unexpected.join(", ")
        ))
    }
}

fn cmd_codegen(src: &str) -> Result<String, String> {
    let ck = compile_source(src).map_err(|e| e.to_string())?;
    Ok(format!(
        "{}\n{}",
        generate_host_module(&ck),
        generate_kernel_module(&ck)
    ))
}

// ------------------------------------------------------------------ run --

#[derive(Debug, Clone)]
enum CliArg {
    BufBytes(usize),
    BufF32(usize),
    BufI32(usize),
    Int(i64),
    Float(f64),
}

#[derive(Debug)]
struct RunOpts {
    cluster: String,
    nodes: u32,
    grid: Dim3,
    block: Dim3,
    args: Vec<CliArg>,
    seed: u64,
    modeled: bool,
    streams: usize,
    graph: usize,
    trace: Option<String>,
    engine: EngineKind,
    node_threads: usize,
    sanitize: bool,
    faults: Vec<String>,
    checkpoint: Option<String>,
    restore: Option<String>,
    verbose: bool,
}

fn parse_dim(s: &str) -> Result<Dim3, String> {
    let parts: Vec<u32> = s
        .split(',')
        .map(|p| p.parse().map_err(|_| format!("bad dimension `{s}`")))
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [x] => Ok(Dim3::new1(*x)),
        [x, y] => Ok(Dim3::new2(*x, *y)),
        [x, y, z] => Ok(Dim3::new3(*x, *y, *z)),
        _ => Err(format!("bad dimension `{s}` (use X[,Y[,Z]])")),
    }
}

impl RunOpts {
    fn parse(args: &[String]) -> Result<RunOpts, String> {
        let mut o = RunOpts {
            cluster: "simd".into(),
            nodes: 4,
            grid: Dim3::new1(64),
            block: Dim3::new1(256),
            args: Vec::new(),
            seed: 42,
            modeled: false,
            streams: 0,
            graph: 0,
            trace: None,
            engine: EngineKind::default(),
            node_threads: 0,
            sanitize: false,
            faults: Vec::new(),
            checkpoint: None,
            restore: None,
            verbose: false,
        };
        let mut i = 0;
        let need = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("missing value after `{}`", args[*i - 1]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--cluster" => o.cluster = need(&mut i)?.clone(),
                "--nodes" => {
                    o.nodes = need(&mut i)?.parse().map_err(|e| format!("--nodes: {e}"))?
                }
                "--grid" => o.grid = parse_dim(need(&mut i)?)?,
                "--block" => o.block = parse_dim(need(&mut i)?)?,
                "--seed" => o.seed = need(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--modeled" => o.modeled = true,
                "--streams" => {
                    o.streams = need(&mut i)?
                        .parse()
                        .map_err(|e| format!("--streams: {e}"))?;
                }
                "--graph" => {
                    o.graph = need(&mut i)?.parse().map_err(|e| format!("--graph: {e}"))?;
                }
                "--trace" => o.trace = Some(need(&mut i)?.clone()),
                "--sanitize" => o.sanitize = true,
                "--engine" => {
                    let v = need(&mut i)?;
                    o.engine = EngineKind::parse(v).ok_or_else(|| {
                        format!("--engine: unknown engine `{v}` (tree|bytecode|simd)")
                    })?;
                }
                "--node-threads" => {
                    o.node_threads = need(&mut i)?
                        .parse()
                        .map_err(|e| format!("--node-threads: {e}"))?;
                }
                "--arg" => {
                    let spec = need(&mut i)?;
                    o.args.push(parse_arg(spec)?);
                }
                "--fault" => o.faults.push(need(&mut i)?.clone()),
                "--checkpoint" => o.checkpoint = Some(need(&mut i)?.clone()),
                "--restore" => o.restore = Some(need(&mut i)?.clone()),
                "-v" | "--verbose" => o.verbose = true,
                other => return Err(format!("unknown option `{other}`")),
            }
            i += 1;
        }
        Ok(o)
    }

    /// Fold every runtime and session flag into the one typed value the
    /// cluster consumes.
    fn to_run_options(&self) -> Result<RunOptions, String> {
        let mut b = RunOptions::builder()
            .engine(self.engine)
            .node_threads(self.node_threads)
            .sanitize(self.sanitize)
            .streams(self.streams)
            .graph_iters(self.graph);
        for spec in &self.faults {
            b = b.fault(spec)?;
        }
        if self.modeled {
            b = b.modeled();
        }
        if let Some(path) = &self.checkpoint {
            b = b.checkpoint_to(path);
        }
        if let Some(path) = &self.restore {
            b = b.restore_from(path);
        }
        Ok(b.build())
    }
}

fn parse_arg(spec: &str) -> Result<CliArg, String> {
    if let Some(rest) = spec.strip_prefix("buf:") {
        if let Some(n) = rest.strip_suffix("f32") {
            return Ok(CliArg::BufF32(
                n.parse().map_err(|_| format!("bad buffer size `{spec}`"))?,
            ));
        }
        if let Some(n) = rest.strip_suffix("i32") {
            return Ok(CliArg::BufI32(
                n.parse().map_err(|_| format!("bad buffer size `{spec}`"))?,
            ));
        }
        return Ok(CliArg::BufBytes(
            rest.parse()
                .map_err(|_| format!("bad buffer size `{spec}`"))?,
        ));
    }
    if let Some(v) = spec.strip_prefix("int:") {
        return Ok(CliArg::Int(
            v.parse().map_err(|_| format!("bad int `{spec}`"))?,
        ));
    }
    if let Some(v) = spec.strip_prefix("float:") {
        return Ok(CliArg::Float(
            v.parse().map_err(|_| format!("bad float `{spec}`"))?,
        ));
    }
    Err(format!(
        "bad --arg `{spec}` (use buf:<n>[f32|i32], int:<v>, float:<v>)"
    ))
}

fn cli_buffer_bytes(a: &CliArg, rng: &mut StdRng) -> Option<Vec<u8>> {
    match a {
        CliArg::BufBytes(n) => Some((0..*n).map(|_| rng.gen()).collect()),
        CliArg::BufF32(n) => {
            let mut v = Vec::with_capacity(n * 4);
            for _ in 0..*n {
                v.extend_from_slice(&rng.gen_range(-1.0f32..1.0).to_le_bytes());
            }
            Some(v)
        }
        CliArg::BufI32(n) => {
            let mut v = Vec::with_capacity(n * 4);
            for _ in 0..*n {
                v.extend_from_slice(&rng.gen_range(-100i32..100).to_le_bytes());
            }
            Some(v)
        }
        _ => None,
    }
}

// ------------------------------------------------------------------ serve --

struct ServeOpts {
    cluster: String,
    nodes: u32,
    jobs: usize,
    tenants: u32,
    policy: ServePolicy,
    queue_depth: usize,
    seed: u64,
    gap_us: f64,
    modeled: bool,
    engine: EngineKind,
    node_threads: usize,
    faults: Vec<String>,
    trace: Option<String>,
}

impl ServeOpts {
    fn parse(args: &[String]) -> Result<ServeOpts, String> {
        let mut o = ServeOpts {
            cluster: "simd".into(),
            nodes: 8,
            jobs: 200,
            tenants: 8,
            policy: ServePolicy::Fair,
            queue_depth: 0,
            seed: 42,
            gap_us: 200.0,
            modeled: false,
            engine: EngineKind::default(),
            node_threads: 0,
            faults: Vec::new(),
            trace: None,
        };
        let mut i = 0;
        let need = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("missing value after `{}`", args[*i - 1]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--synthetic" => {
                    for part in need(&mut i)?.split(',') {
                        if let Some(v) = part.strip_prefix("jobs=") {
                            o.jobs = v.parse().map_err(|e| format!("--synthetic jobs: {e}"))?;
                        } else if let Some(v) = part.strip_prefix("tenants=") {
                            o.tenants =
                                v.parse().map_err(|e| format!("--synthetic tenants: {e}"))?;
                        } else {
                            return Err(format!(
                                "bad --synthetic part `{part}` (use jobs=N,tenants=M)"
                            ));
                        }
                    }
                }
                "--policy" => {
                    let v = need(&mut i)?;
                    o.policy = ServePolicy::parse(v)
                        .ok_or_else(|| format!("--policy: unknown policy `{v}` (fifo|fair)"))?;
                }
                "--queue-depth" => {
                    o.queue_depth = need(&mut i)?
                        .parse()
                        .map_err(|e| format!("--queue-depth: {e}"))?;
                }
                "--cluster" => o.cluster = need(&mut i)?.clone(),
                "--nodes" => {
                    o.nodes = need(&mut i)?.parse().map_err(|e| format!("--nodes: {e}"))?
                }
                "--seed" => o.seed = need(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--gap-us" => {
                    o.gap_us = need(&mut i)?
                        .parse()
                        .map_err(|e| format!("--gap-us: {e}"))?;
                }
                "--modeled" => o.modeled = true,
                "--engine" => {
                    let v = need(&mut i)?;
                    o.engine = EngineKind::parse(v).ok_or_else(|| {
                        format!("--engine: unknown engine `{v}` (tree|bytecode|simd)")
                    })?;
                }
                "--node-threads" => {
                    o.node_threads = need(&mut i)?
                        .parse()
                        .map_err(|e| format!("--node-threads: {e}"))?;
                }
                "--fault" => o.faults.push(need(&mut i)?.clone()),
                "--trace" => o.trace = Some(need(&mut i)?.clone()),
                other => return Err(format!("unknown option `{other}`")),
            }
            i += 1;
        }
        if o.jobs == 0 || o.tenants == 0 {
            return Err("--synthetic needs jobs >= 1 and tenants >= 1".into());
        }
        Ok(o)
    }

    fn to_run_options(&self) -> Result<RunOptions, String> {
        let mut b = RunOptions::builder()
            .engine(self.engine)
            .node_threads(self.node_threads);
        for spec in &self.faults {
            b = b.fault(spec)?;
        }
        if self.modeled {
            b = b.modeled();
        }
        Ok(b.build())
    }
}

fn cmd_serve(opts: &ServeOpts) -> Result<String, String> {
    let spec = match opts.cluster.as_str() {
        "simd" => ClusterSpec::simd_focused().with_nodes(opts.nodes),
        "thread" => ClusterSpec::thread_focused().with_nodes(opts.nodes),
        other => return Err(format!("unknown cluster `{other}` (simd|thread)")),
    };
    let config = ServeConfig {
        policy: opts.policy,
        queue_depth: opts.queue_depth,
        options: opts.to_run_options()?,
    };
    let mut srv = JobServer::new(spec.clone(), config).map_err(|e| e.to_string())?;
    let stream = synthetic_stream(opts.jobs, opts.tenants, opts.seed, opts.gap_us * 1e-6);
    let report = srv.run(&stream).map_err(|e| e.to_string())?;

    let mut out = format!(
        "serving {} job(s) from {} tenant(s) on {} × {} (policy {}, queue depth {})\n",
        opts.jobs,
        opts.tenants,
        opts.nodes,
        spec.cpu.name,
        opts.policy.label(),
        if opts.queue_depth == 0 {
            "unbounded".to_string()
        } else {
            opts.queue_depth.to_string()
        },
    );
    out += &format!("  {}\n", report.summary_line());
    for c in &report.per_class {
        out += &format!(
            "  class {:<11}: {:4} job(s)  queue p50 {:.3} ms p99 {:.3} ms  total p50 {:.3} ms p99 {:.3} ms\n",
            c.class.label(),
            c.jobs,
            c.p50_queue * 1e3,
            c.p99_queue * 1e3,
            c.p50_total * 1e3,
            c.p99_total * 1e3,
        );
    }
    for t in &report.per_tenant {
        out += &format!(
            "  tenant {:2}: {:4} admitted, {:3} rejected, {:4} completed, \
             cache hit rate {:.1}% ({} hit / {} miss)\n",
            t.tenant,
            t.admitted,
            t.rejected,
            t.completed,
            t.cache_hit_rate() * 100.0,
            t.cache_hits,
            t.cache_misses,
        );
    }
    if report.node_failures > 0 {
        out += &format!(
            "  faults: {} node failure(s) absorbed mid-stream\n",
            report.node_failures
        );
    }
    if let Some(path) = &opts.trace {
        std::fs::write(path, srv.timeline().to_chrome_json())
            .map_err(|e| format!("{path}: {e}"))?;
        out += &format!(
            "  trace: {} span(s) written to {path} (load in https://ui.perfetto.dev)\n",
            srv.timeline().spans().len()
        );
    }
    Ok(out)
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn cmd_run(src: &str, opts: &RunOpts) -> Result<String, String> {
    let ck = compile_source(src).map_err(|e| e.to_string())?;
    let launch = LaunchConfig {
        grid: opts.grid,
        block: opts.block,
    };
    let spec = match opts.cluster.as_str() {
        "simd" => ClusterSpec::simd_focused().with_nodes(opts.nodes),
        "thread" => ClusterSpec::thread_focused().with_nodes(opts.nodes),
        other => return Err(format!("unknown cluster `{other}` (simd|thread)")),
    };
    let n_buffers = ck.kernel.buffer_params().count();
    let n_buf_args = opts
        .args
        .iter()
        .filter(|a| {
            matches!(
                a,
                CliArg::BufBytes(_) | CliArg::BufF32(_) | CliArg::BufI32(_)
            )
        })
        .count();
    if opts.args.len() != ck.kernel.params.len() || n_buf_args != n_buffers {
        return Err(format!(
            "kernel `{}` takes {} parameter(s) ({} buffer(s)); got {} --arg ({} buffer(s))",
            ck.name(),
            ck.kernel.params.len(),
            n_buffers,
            opts.args.len(),
            n_buf_args
        ));
    }

    // Materialize data once so the GPU and cluster see identical inputs.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let host_data: Vec<Option<Vec<u8>>> = opts
        .args
        .iter()
        .map(|a| cli_buffer_bytes(a, &mut rng))
        .collect();

    let bind = |dev_alloc: &mut dyn FnMut(&[u8]) -> Arg| -> Vec<Arg> {
        opts.args
            .iter()
            .zip(&host_data)
            .map(|(a, data)| match (a, data) {
                (CliArg::Int(v), _) => Arg::int(*v),
                (CliArg::Float(v), _) => Arg::float(*v),
                (_, Some(bytes)) => dev_alloc(bytes),
                _ => unreachable!(),
            })
            .collect()
    };

    let mut out = format!(
        "kernel `{}` {}  on {} × {}\n",
        ck.name(),
        launch,
        opts.nodes,
        spec.cpu.name
    );

    // GPU reference (functional mode only).
    let mut gpu = GpuDevice::new(GpuSpec::a100());
    let mut gpu_handles = Vec::new();
    let gargs = bind(&mut |bytes| {
        let id = gpu.alloc(bytes.len());
        gpu.h2d(id, bytes);
        gpu_handles.push(id);
        Arg::Buffer(id)
    });
    let gpu_time = if opts.modeled {
        gpu.time_only(&ck.kernel, launch, &gargs)
            .map_err(|e| e.to_string())?
    } else {
        gpu.launch(&ck.kernel, launch, &gargs)
            .map_err(|e| e.to_string())?
            .time
    };
    out += &format!("  A100 (roofline reference): {:.3} ms\n", gpu_time * 1e3);

    // CuCC cluster: every flag lands in one typed RunOptions.
    let options = opts.to_run_options()?;
    let mut cl_handles = Vec::new();
    let (mut cl, cargs) = if let Some(path) = &opts.restore {
        // Resume mid-job: buffers already live in the image, in the same
        // allocation order the fresh run would have created them.
        let cl = CuccCluster::restore_from(spec.clone(), options.clone(), path)
            .map_err(|e| e.to_string())?;
        out += &format!(
            "  restore: resumed from {path} (epoch {}, {}/{} node(s) alive, clock {:.3} ms)\n",
            cl.epoch(),
            cl.active_nodes(),
            cl.num_nodes(),
            cl.clock() * 1e3,
        );
        let mut next = 0u32;
        let cargs: Vec<Arg> = opts
            .args
            .iter()
            .zip(&host_data)
            .map(|(a, data)| match (a, data) {
                (CliArg::Int(v), _) => Arg::int(*v),
                (CliArg::Float(v), _) => Arg::float(*v),
                (_, Some(_)) => {
                    let id = cucc::exec::BufferId(next);
                    next += 1;
                    cl_handles.push(id);
                    Arg::Buffer(id)
                }
                _ => unreachable!(),
            })
            .collect();
        (cl, cargs)
    } else {
        let mut cl = CuccCluster::with_options(spec.clone(), options.clone());
        let cargs = bind(&mut |bytes| {
            let id = cl.alloc(bytes.len());
            cl.upload(id, bytes).unwrap();
            cl_handles.push(id);
            Arg::Buffer(id)
        });
        (cl, cargs)
    };
    let wall0 = std::time::Instant::now();
    let report = cl.launch(&ck, launch, &cargs).map_err(|e| e.to_string())?;
    let wall = wall0.elapsed().as_secs_f64();
    match &report.mode {
        ExecMode::ThreePhase {
            partial_blocks_per_node,
            callback_blocks,
            ..
        } => {
            out += &format!(
                "  mode: three-phase ({partial_blocks_per_node} partial blocks/node, {callback_blocks} callbacks)\n"
            );
        }
        ExecMode::Replicated { cause } => {
            out += &format!(
                "  mode: replicated ({})\n",
                cucc::analysis::cause_diagnostic(cause)
            );
        }
    }
    if let Some(r) = cl.sanitize_report() {
        out += &format!("  {}\n", r.summary());
    }
    if !report.faults.is_clean() {
        out += &format!(
            "  faults: {} node failure(s), {} collective retry(s), {} block(s) re-executed{}\n",
            report.faults.failures,
            report.faults.retries,
            report.faults.reexecuted_blocks,
            if report.faults.degraded {
                " (degraded to replicated)"
            } else {
                ""
            }
        );
    }
    out += &format!(
        "  cluster time: {:.3} ms (partial {:.3} + allgather {:.3} + callback {:.3}), {} B on the wire\n",
        report.time() * 1e3,
        report.times.partial * 1e3,
        report.times.allgather * 1e3,
        report.times.callback * 1e3,
        report.wire_bytes
    );
    out += &format!(
        "  vs A100: {:.2}x {}\n",
        if report.time() > gpu_time {
            report.time() / gpu_time
        } else {
            gpu_time / report.time()
        },
        if report.time() > gpu_time {
            "slower"
        } else {
            "faster"
        }
    );

    if let Some(path) = &opts.checkpoint {
        let size = cl.checkpoint_to(path).map_err(|e| e.to_string())?;
        out += &format!(
            "  checkpoint: wrote {path} ({size} B, epoch {}, {}/{} node(s) alive)\n",
            cl.epoch(),
            cl.active_nodes(),
            cl.num_nodes(),
        );
    }

    if !opts.modeled && opts.restore.is_none() {
        // Verify buffers byte-for-byte against the GPU reference. A
        // restored run starts from mid-job state, so the single-launch GPU
        // reference does not apply there.
        for (i, (g, c)) in gpu_handles.iter().zip(&cl_handles).enumerate() {
            let gb = gpu.d2h(*g);
            let cb = cl.download::<u8>(*c).unwrap();
            if gb != cb {
                return Err(format!("buffer {i} diverges from the GPU reference"));
            }
            out += &format!(
                "  buffer {i}: {} B, checksum {:016x} ✓ matches GPU\n",
                cb.len(),
                fnv1a(&cb)
            );
        }
    }

    if opts.modeled {
        out += &format!(
            "  engine: {} (modeled run, blocks not executed)\n",
            opts.engine
        );
    } else {
        // Blocks node 0 really executed (partial slice + callbacks).
        let blocks = report.node_stats.blocks;
        out += &format!(
            "  engine: {} ({}): {} blocks/node in {:.3} ms wall, {:.0} blocks/s\n",
            opts.engine,
            if opts.node_threads == 0 {
                "auto node-threads".to_string()
            } else {
                format!("{} node-threads", opts.node_threads)
            },
            blocks,
            wall * 1e3,
            blocks as f64 / wall.max(1e-9)
        );
    }

    if opts.verbose {
        // Per-phase batch/vector report: shows why each phase ran dense,
        // predicated, or scalar, and how many superinstructions were fused.
        match cucc::exec::Program::compile(&ck.kernel, launch, &cargs) {
            Ok(prog) => {
                out += "  vectorization (per phase):\n";
                for line in prog.phase_summary().lines() {
                    out += &format!("    {line}\n");
                }
                // Range-analysis certification at the real allocation sizes:
                // certified accesses run bounds-check-free in the engines.
                let extents: Vec<Option<u64>> = ck
                    .kernel
                    .params
                    .iter()
                    .zip(&host_data)
                    .map(|(p, data)| match (p, data) {
                        (cucc::ir::Param::Buffer { elem, .. }, Some(bytes)) => {
                            Some((bytes.len() / elem.size()) as u64)
                        }
                        _ => None,
                    })
                    .collect();
                let slot_exts = cucc::analysis::param_slot_extents(&prog, &cargs, &extents);
                let (c, t) = cucc::analysis::analyze_ranges(&prog, &slot_exts).stats();
                out += &format!(
                    "  range certs: {c}/{t} accesses certified in-bounds (unchecked fast path)\n"
                );
            }
            Err(e) => out += &format!("  vectorization: unavailable ({e})\n"),
        }
        out += &format!(
            "  simd analysis: {}\n",
            cucc::analysis::analyze_simd(&ck.kernel).summary()
        );
    }

    if options.streams > 0 {
        // Replay the kernel as a pipeline of independent replicas — fresh
        // buffers, async h2d + launch per replica, round-robin over the
        // streams — and compare the simulated elapsed time against the
        // same pipeline on the default stream.
        let replicas = options.streams * 3;
        let run_pipe = |nstreams: usize| -> Result<f64, String> {
            let mut cl = CuccCluster::with_options(spec.clone(), options.clone());
            let streams: Vec<_> = (0..nstreams).map(|_| cl.stream_create()).collect();
            for r in 0..replicas {
                let cargs: Vec<Arg> = opts
                    .args
                    .iter()
                    .zip(&host_data)
                    .map(|(a, data)| match (a, data) {
                        (CliArg::Int(v), _) => Arg::int(*v),
                        (CliArg::Float(v), _) => Arg::float(*v),
                        (_, Some(bytes)) => {
                            let id = cl.alloc(bytes.len());
                            if let Some(s) = streams.get(r % nstreams.max(1)) {
                                cl.upload_on(id, bytes, *s).unwrap();
                            } else {
                                cl.upload(id, bytes).unwrap();
                            }
                            Arg::Buffer(id)
                        }
                        _ => unreachable!(),
                    })
                    .collect();
                if let Some(s) = streams.get(r % nstreams.max(1)) {
                    cl.launch_on(&ck, launch, &cargs, *s)
                        .map_err(|e| e.to_string())?;
                } else {
                    cl.launch(&ck, launch, &cargs).map_err(|e| e.to_string())?;
                }
            }
            cl.synchronize().map_err(|e| e.to_string())
        };
        let serial = run_pipe(0)?;
        let overlapped = run_pipe(options.streams)?;
        out += &format!(
            "  streams: {}-way pipeline, {} replicas: serial {:.3} ms → overlapped {:.3} ms ({:.2}x)\n",
            options.streams,
            replicas,
            serial * 1e3,
            overlapped * 1e3,
            serial / overlapped.max(1e-12)
        );
    }

    if options.graph_iters > 0 {
        // Capture the workload's sequence (buffer uploads + the launch)
        // into a launch graph, replay it N times, and report what the
        // schedule cache and the communication optimizer saved.
        use cucc::core::{GraphCapture, ReplayStats};
        let mut gcl = CuccCluster::with_options(spec.clone(), options.clone());
        let mut graph_handles = Vec::new();
        let mut cap = GraphCapture::new();
        let gr_args = bind(&mut |bytes| {
            let id = gcl.alloc(bytes.len());
            cap.upload(id, bytes.to_vec());
            graph_handles.push(id);
            Arg::Buffer(id)
        });
        cap.launch(&ck, launch, &gr_args);
        let graph = cap.finish();
        let mut total = ReplayStats::default();
        for _ in 0..options.graph_iters {
            let s = gcl.graph_replay(&graph).map_err(|e| e.to_string())?;
            total.accumulate(&s);
        }
        out += &format!(
            "  graph: {} op(s) captured, replayed {}x: cache hit rate {:.1}% ({} hit / {} miss)\n",
            graph.len(),
            options.graph_iters,
            total.cache_hit_rate() * 100.0,
            total.cache_hits,
            total.cache_misses,
        );
        out += &format!(
            "  graph: allgathers: {} elided, {} narrowed, {} full, {} materialized\n",
            total.gathers_elided,
            total.gathers_narrowed,
            total.gathers_full,
            total.materializations,
        );
        out += &format!(
            "  graph: wire bytes saved: {} B ({} B moved vs {} B planned)\n",
            total.wire_bytes_saved,
            total.wire_bytes,
            total.wire_bytes + total.wire_bytes_saved,
        );
        if !opts.modeled {
            // Each iteration re-uploads, so the replayed end state must
            // match the verified single launch bit-for-bit.
            for (i, (g, c)) in graph_handles.iter().zip(&cl_handles).enumerate() {
                if gcl.download::<u8>(*g).unwrap() != cl.download::<u8>(*c).unwrap() {
                    return Err(format!("buffer {i} diverges after graph replay"));
                }
            }
            out += "  graph: replayed memory matches the uncaptured run ✓\n";
        }
    }

    out += "\n";
    out += &cl.timeline().summary();
    if let Some(path) = &opts.trace {
        std::fs::write(path, cl.timeline().to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        out += &format!(
            "\ntrace: {} span(s) written to {path} (load in https://ui.perfetto.dev)\n",
            cl.timeline().spans().len()
        );
    }
    Ok(out)
}

// ------------------------------------------------------------- coverage --

fn cmd_coverage() -> String {
    use cucc::workloads::{classify_coverage, heteromark_kernels, triton_kernels, Expected};
    let mut out = String::from("Figure-7 coverage classification:\n");
    for (suite, kernels) in [
        ("Triton (BERT+ViT)", triton_kernels()),
        ("Hetero-Mark", heteromark_kernels()),
    ] {
        let mut d = 0;
        for k in &kernels {
            if classify_coverage(k) == Ok(Expected::Distributable) {
                d += 1;
            }
        }
        out += &format!(
            "  {suite:20}: {d}/{} Allgather distributable\n",
            kernels.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = "__global__ void saxpy(float* x, float* y, float a, int n) {
        int id = blockIdx.x * blockDim.x + threadIdx.x;
        if (id < n) y[id] = a * x[id] + y[id];
    }";

    #[test]
    fn analyze_reports_verdict() {
        let out = cmd_analyze(SAXPY).unwrap();
        assert!(out.contains("Allgather distributable"));
        assert!(out.contains("tail_divergent: true"));
        assert!(out.contains("SIMD class"));
    }

    #[test]
    fn codegen_emits_modules() {
        let out = cmd_codegen(SAXPY).unwrap();
        assert!(out.contains("MPI_Allgather"));
        assert!(out.contains("#pragma omp simd"));
    }

    #[test]
    fn run_executes_and_verifies() {
        let opts = RunOpts::parse(
            &[
                "--nodes",
                "3",
                "--grid",
                "8",
                "--block",
                "128",
                "--arg",
                "buf:1024f32",
                "--arg",
                "buf:1024f32",
                "--arg",
                "float:2.0",
                "--arg",
                "int:1024",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let out = cmd_run(SAXPY, &opts).unwrap();
        assert!(out.contains("three-phase"), "{out}");
        assert!(out.contains("matches GPU"), "{out}");
    }

    #[test]
    fn run_writes_chrome_trace() {
        let path = std::env::temp_dir().join("cucc_cli_trace_test.json");
        let path_str = path.to_str().unwrap().to_string();
        let opts = RunOpts::parse(
            &[
                "--nodes",
                "3",
                "--grid",
                "8",
                "--block",
                "128",
                "--arg",
                "buf:1024f32",
                "--arg",
                "buf:1024f32",
                "--arg",
                "float:2.0",
                "--arg",
                "int:1024",
                "--trace",
                &path_str,
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let out = cmd_run(SAXPY, &opts).unwrap();
        assert!(out.contains("timeline"), "{out}");
        assert!(out.contains("written to"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let v = cucc::trace::json::parse(&json).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // One partial + one callback span per node, at least one allgather
        // span on the network track, and wire-byte counter samples.
        for (name, want) in [("partial", 3), ("callback", 3), ("allgather", 1)] {
            let got = events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("name")
                            .and_then(|n| n.as_str())
                            .is_some_and(|n| n.contains(name))
                })
                .count();
            assert!(got >= want, "{name}: {got} < {want}");
        }
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C")
                && e.get("name").and_then(|n| n.as_str()) == Some("wire_bytes")));
    }

    #[test]
    fn run_with_engine_flags() {
        for engine in ["tree", "bytecode", "simd"] {
            let opts = RunOpts::parse(
                &[
                    "--nodes",
                    "2",
                    "--grid",
                    "8",
                    "--block",
                    "128",
                    "--engine",
                    engine,
                    "--node-threads",
                    "2",
                    "--arg",
                    "buf:1024f32",
                    "--arg",
                    "buf:1024f32",
                    "--arg",
                    "float:2.0",
                    "--arg",
                    "int:1024",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            )
            .unwrap();
            let out = cmd_run(SAXPY, &opts).unwrap();
            assert!(out.contains(&format!("engine: {engine}")), "{out}");
            assert!(out.contains("blocks/s"), "{out}");
            assert!(out.contains("matches GPU"), "{out}");
        }
        assert!(RunOpts::parse(&["--engine".into(), "jit".into()]).is_err());
    }

    #[test]
    fn run_with_join_checkpoint_restore_round_trip() {
        let path = std::env::temp_dir().join("cucc_cli_ckpt_test.bin");
        let path_str = path.to_str().unwrap().to_string();
        let common = [
            "--nodes",
            "4",
            "--grid",
            "13",
            "--block",
            "128",
            "--arg",
            "buf:1664f32",
            "--arg",
            "buf:1664f32",
            "--arg",
            "float:2.0",
            "--arg",
            "int:1664",
        ];
        // Kill node 3 mid-launch, grow by a fresh node at the checkpoint's
        // quiesce barrier, and write the image.
        let mut first: Vec<String> = common.iter().map(|s| s.to_string()).collect();
        for extra in [
            "--fault",
            "kill:node=3@t=0",
            "--fault",
            "join:node=4@t=0",
            "--checkpoint",
            &path_str,
        ] {
            first.push(extra.to_string());
        }
        let opts = RunOpts::parse(&first).unwrap();
        let out = cmd_run(SAXPY, &opts).unwrap();
        assert!(out.contains("faults: 1 node failure"), "{out}");
        assert!(out.contains("checkpoint: wrote"), "{out}");
        assert!(out.contains("4/5 node(s) alive"), "{out}");

        // Restore into a new process at the grown shape and resume. The
        // same fault plan rides along; the image's cursor marks both
        // events consumed, so neither refires.
        let mut second: Vec<String> = common.iter().map(|s| s.to_string()).collect();
        second[1] = "5".to_string(); // --nodes 5: the image's grown shape
        for extra in [
            "--fault",
            "kill:node=3@t=0",
            "--fault",
            "join:node=4@t=0",
            "--restore",
            &path_str,
        ] {
            second.push(extra.to_string());
        }
        let opts = RunOpts::parse(&second).unwrap();
        let out = cmd_run(SAXPY, &opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("restore: resumed from"), "{out}");
        assert!(out.contains("4/5 node(s) alive"), "{out}");
        assert!(out.contains("cluster time"), "{out}");
    }

    #[test]
    fn run_verbose_reports_vector_mode() {
        // Three-address saxpy: the output buffer is distinct from both
        // inputs, so the guarded body batches under a per-lane mask.
        let src = "__global__ void saxpy3(float* x, float* y, float* out, float a, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) out[id] = a * x[id] + y[id];
        }";
        let opts = RunOpts::parse(
            &[
                "--nodes",
                "2",
                "--grid",
                "8",
                "--block",
                "128",
                "--engine",
                "simd",
                "-v",
                "--arg",
                "buf:1024f32",
                "--arg",
                "buf:1024f32",
                "--arg",
                "buf:1024f32",
                "--arg",
                "float:2.0",
                "--arg",
                "int:1024",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(opts.verbose);
        let out = cmd_run(src, &opts).unwrap();
        // The guarded body vectorizes under a mask (pred) with fused
        // superinstructions; the report should say so and include the simd
        // analysis verdict. The in-place SAXPY kernel, by contrast, must
        // report scalar (load/store hazard on `y`).
        assert!(out.contains("vectorization (per phase):"), "{out}");
        let seg = out
            .lines()
            .find(|l| l.contains("pred[") || l.contains("dense["))
            .unwrap_or_else(|| panic!("no vectorized segment in {out}"));
        assert!(seg.contains('f'), "no fused-count marker in `{seg}`");
        assert!(out.contains("simd analysis:"), "{out}");
        assert!(out.contains("lane efficiency"), "{out}");

        let scalar_out = cmd_run(SAXPY, &opts_for_saxpy()).unwrap();
        assert!(scalar_out.contains("scalar["), "{scalar_out}");
    }

    fn opts_for_saxpy() -> RunOpts {
        RunOpts::parse(
            &[
                "--grid",
                "8",
                "--block",
                "128",
                "--engine",
                "simd",
                "-v",
                "--arg",
                "buf:1024f32",
                "--arg",
                "buf:1024f32",
                "--arg",
                "float:2.0",
                "--arg",
                "int:1024",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn run_with_streams_reports_overlap() {
        let opts = RunOpts::parse(
            &[
                "--nodes",
                "4",
                "--grid",
                "64",
                "--block",
                "256",
                "--streams",
                "2",
                "--arg",
                "buf:16384f32",
                "--arg",
                "buf:16384f32",
                "--arg",
                "float:2.0",
                "--arg",
                "int:16384",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(opts.streams, 2);
        let out = cmd_run(SAXPY, &opts).unwrap();
        assert!(out.contains("2-way pipeline"), "{out}");
        // Overlapped elapsed must not exceed the serial replay.
        let line = out
            .lines()
            .find(|l| l.contains("streams:"))
            .unwrap()
            .to_string();
        let ratio: f64 = line
            .split('(')
            .nth(1)
            .and_then(|s| s.strip_suffix("x)"))
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio >= 1.0, "{line}");
    }

    #[test]
    fn run_with_graph_reports_cache_and_elision() {
        let opts = RunOpts::parse(
            &[
                "--nodes",
                "4",
                "--grid",
                "64",
                "--block",
                "256",
                "--graph",
                "3",
                "--arg",
                "buf:16384f32",
                "--arg",
                "buf:16384f32",
                "--arg",
                "float:2.0",
                "--arg",
                "int:16384",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(opts.graph, 3);
        let out = cmd_run(SAXPY, &opts).unwrap();
        // Iteration 1 plans (1 miss), iterations 2–3 hit.
        assert!(
            out.contains("cache hit rate 66.7% (2 hit / 1 miss)"),
            "{out}"
        );
        // SAXPY's only gathered region (y) elides on every iteration: its
        // callback reads lie beyond the distributed span.
        assert!(out.contains("allgathers: 3 elided"), "{out}");
        let saved = out
            .lines()
            .find(|l| l.contains("wire bytes saved"))
            .unwrap()
            .to_string();
        let n: u64 = saved
            .split("saved: ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(n > 0, "{saved}");
        assert!(out.contains("matches the uncaptured run"), "{out}");
    }

    #[test]
    fn run_rejects_bad_arg_count() {
        let opts = RunOpts::parse(
            &["--arg", "buf:64f32"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let err = cmd_run(SAXPY, &opts).unwrap_err();
        assert!(err.contains("takes 4 parameter"), "{err}");
    }

    #[test]
    fn option_parsing() {
        let o = RunOpts::parse(
            &[
                "--cluster",
                "thread",
                "--grid",
                "4,4",
                "--block",
                "16,16",
                "--modeled",
                "--seed",
                "7",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(o.cluster, "thread");
        assert_eq!(o.grid, Dim3::new2(4, 4));
        assert_eq!(o.block, Dim3::new2(16, 16));
        assert!(o.modeled);
        assert_eq!(o.seed, 7);
        assert!(RunOpts::parse(&["--bogus".to_string()]).is_err());
        assert!(parse_arg("buf:xyz").is_err());
        assert!(parse_arg("frob:1").is_err());
    }

    #[test]
    fn dispatch_help_and_errors() {
        assert!(dispatch(&[]).unwrap().contains("usage"));
        assert!(dispatch(&["bogus".to_string()]).is_err());
        assert!(dispatch(&["analyze".to_string()]).is_err());
        let cov = dispatch(&["coverage".to_string()]).unwrap();
        assert!(cov.contains("21/21") || cov.contains("8/13"), "{cov}");
    }

    #[test]
    fn analyze_includes_verifier_section() {
        let out = cmd_analyze(SAXPY).unwrap();
        assert!(out.contains("verifier"), "{out}");
        assert!(out.contains("race    : safe"), "{out}");
        assert!(out.contains("all checks pass"), "{out}");
    }

    #[test]
    fn check_passes_clean_kernel_and_fails_racy_one() {
        let dir = std::env::temp_dir();
        let clean = dir.join("cucc_check_clean.cu");
        std::fs::write(&clean, SAXPY).unwrap();
        let out = cmd_check(&[clean.to_str().unwrap().to_string()]).unwrap();
        std::fs::remove_file(&clean).ok();
        assert!(out.contains("all checks pass"), "{out}");

        let racy = dir.join("cucc_check_racy.cu");
        std::fs::write(
            &racy,
            "__global__ void k(int* out) { out[threadIdx.x] = 1; }",
        )
        .unwrap();
        let err = cmd_check(&[racy.to_str().unwrap().to_string()]).unwrap_err();
        std::fs::remove_file(&racy).ok();
        assert!(err.contains("MUST"), "{err}");
        assert!(err.contains("race"), "{err}");
    }

    #[test]
    fn check_extracts_kernels_from_rust_sources() {
        let text = r#"
            fn main() {
                let a = "__global__ void one(int* x) { x[threadIdx.x + blockIdx.x * blockDim.x] = 0; }";
                let b = "__global__ void two(float* y, int n) {
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    if (id < n) { y[id] = 1.0f; }
                }";
            }
        "#;
        let kernels = extract_cuda_kernels(text);
        assert_eq!(kernels.len(), 2);
        assert!(kernels[0].contains("void one"));
        assert!(kernels[1].trim_end().ends_with('}'));
        for k in &kernels {
            let (_, report) = verify_source(k, None).unwrap();
            assert!(!report.has_must(), "{report:?}");
        }
    }

    #[test]
    fn check_builtin_suites_have_no_unexpected_musts() {
        let out = cmd_check_builtin().unwrap();
        assert!(out.contains("kernels checked"), "{out}");
    }

    #[test]
    fn run_with_sanitizer_reports_clean() {
        let opts = RunOpts::parse(
            &[
                "--nodes",
                "2",
                "--grid",
                "8",
                "--block",
                "128",
                "--sanitize",
                "--arg",
                "buf:1024f32",
                "--arg",
                "buf:1024f32",
                "--arg",
                "float:2.0",
                "--arg",
                "int:1024",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(opts.sanitize);
        let out = cmd_run(SAXPY, &opts).unwrap();
        assert!(out.contains("sanitizer: clean"), "{out}");
        assert!(out.contains("matches GPU"), "{out}");
    }

    #[test]
    fn serve_opts_parse_synthetic_and_policy() {
        let opts = ServeOpts::parse(
            &[
                "--synthetic",
                "jobs=50,tenants=5",
                "--policy",
                "fifo",
                "--queue-depth",
                "8",
                "--nodes",
                "6",
                "--gap-us",
                "50",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(opts.jobs, 50);
        assert_eq!(opts.tenants, 5);
        assert_eq!(opts.policy, ServePolicy::Fifo);
        assert_eq!(opts.queue_depth, 8);
        assert_eq!(opts.nodes, 6);
        assert!((opts.gap_us - 50.0).abs() < 1e-12);
        assert!(ServeOpts::parse(&["--policy".into(), "lifo".into()]).is_err());
        assert!(ServeOpts::parse(&["--synthetic".into(), "depth=2".into()]).is_err());
    }

    #[test]
    fn serve_reports_latency_summary_per_tenant() {
        let opts = ServeOpts::parse(
            &[
                "--synthetic",
                "jobs=80",
                "--queue-depth",
                "32",
                "--nodes",
                "4",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let out = cmd_serve(&opts).unwrap();
        assert!(out.contains("launches/sec"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("class interactive"), "{out}");
        assert!(out.contains("tenant  0"), "{out}");
        assert!(out.contains("cache hit rate"), "{out}");
    }

    #[test]
    fn run_opts_fold_into_run_options() {
        let opts = RunOpts::parse(
            &[
                "--modeled",
                "--streams",
                "3",
                "--graph",
                "5",
                "--node-threads",
                "2",
                "--fault",
                "kill:node=1@t=0.5",
                "--checkpoint",
                "/tmp/cucc_opts.ckpt",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let ro = opts.to_run_options().unwrap();
        assert_eq!(ro.streams, 3);
        assert_eq!(ro.graph_iters, 5);
        assert_eq!(ro.runtime.node_threads, 2);
        assert!(!ro.runtime.faults.is_empty());
        assert!(ro.checkpoint_to.is_some());
        assert!(ro.restore_from.is_none());
    }
}
