//! Domain example: full k-means clustering with the membership kernel
//! migrated to a CPU cluster and centroid updates on the host — the
//! iterative-application pattern, where memory consistency must survive
//! *repeated* distributed launches.
//!
//! Also prints the §7.2 partition arithmetic for the paper's 313-block
//! geometry (19 partial + 9 callback blocks on 16 nodes; 9 + 25 on 32).
//!
//! ```bash
//! cargo run --release --example kmeans_clustering
//! ```

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, ExecMode, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MEMBERSHIP: &str = r#"
__global__ void kmeans_membership(float* points, float* centers, int* membership,
                                  int n, int k, int f) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) {
        int best = 0;
        float bestd = 1.0e30f;
        for (int c = 0; c < k; c++) {
            float d = 0.0f;
            for (int j = 0; j < f; j++) {
                float diff = points[id * f + j] - centers[c * f + j];
                d += diff * diff;
            }
            if (d < bestd) {
                bestd = d;
                best = c;
            }
        }
        membership[id] = best;
    }
}
"#;

fn main() {
    let (n, k, f) = (20_000usize, 5usize, 2usize);
    let ck = compile_source(MEMBERSHIP).expect("compile");
    let launch = LaunchConfig::cover1(n as u64, 256);

    // Paper geometry check (§7.2): 80 000 points → 313 blocks.
    let paper_launch = LaunchConfig::cover1(80_000, 256);
    println!(
        "§7.2 geometry: 80 000 points / 256 = {} blocks",
        paper_launch.num_blocks()
    );

    // Three separated Gaussian-ish blobs plus noise.
    let mut rng = StdRng::seed_from_u64(99);
    let blob_centers = [
        (2.0f32, 2.0f32),
        (8.0, 8.0),
        (2.0, 8.0),
        (8.0, 2.0),
        (5.0, 5.0),
    ];
    let mut points = Vec::with_capacity(n * f);
    for i in 0..n {
        let (cx, cy) = blob_centers[i % k];
        points.push(cx + rng.gen_range(-0.8..0.8));
        points.push(cy + rng.gen_range(-0.8..0.8));
    }
    let mut centers: Vec<f32> = (0..k * f).map(|_| rng.gen_range(0.0..10.0)).collect();

    let mut cluster = CuccCluster::with_options(
        ClusterSpec::thread_focused().with_nodes(4),
        RuntimeConfig::default(),
    );
    let pbuf = cluster.alloc(points.len() * 4);
    let cbuf = cluster.alloc(centers.len() * 4);
    let mbuf = cluster.alloc(n * 4);
    cluster.upload(pbuf, &points).unwrap();

    println!("\nrunning Lloyd iterations on a 4-node Thread-Focused cluster:");
    for iter in 0..8 {
        cluster.upload(cbuf, &centers).unwrap();
        let report = cluster
            .launch(
                &ck,
                launch,
                &[
                    Arg::Buffer(pbuf),
                    Arg::Buffer(cbuf),
                    Arg::Buffer(mbuf),
                    Arg::int(n as i64),
                    Arg::int(k as i64),
                    Arg::int(f as i64),
                ],
            )
            .expect("launch");
        if iter == 0 {
            if let ExecMode::ThreePhase {
                partial_blocks_per_node,
                callback_blocks,
                ..
            } = &report.mode
            {
                println!(
                    "  distribution: {partial_blocks_per_node} partial blocks/node + {callback_blocks} callbacks"
                );
            }
        }
        assert!(cluster.sim().fully_consistent(), "nodes diverged");
        // Host-side centroid update from the gathered memberships.
        let membership: Vec<i32> = cluster
            .download::<u8>(mbuf)
            .unwrap()
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut sums = vec![0f64; k * f];
        let mut counts = vec![0u64; k];
        for (i, &m) in membership.iter().enumerate() {
            counts[m as usize] += 1;
            for j in 0..f {
                sums[m as usize * f + j] += points[i * f + j] as f64;
            }
        }
        let mut moved = 0f64;
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            for j in 0..f {
                let new = (sums[c * f + j] / counts[c] as f64) as f32;
                moved += (new - centers[c * f + j]).abs() as f64;
                centers[c * f + j] = new;
            }
        }
        println!(
            "  iter {iter}: centroid movement {moved:8.4}, kernel time {:.2} ms",
            report.time() * 1e3
        );
        if moved < 1e-3 {
            println!("  converged.");
            break;
        }
    }

    println!("\nfinal centroids:");
    for c in 0..k {
        println!("  ({:5.2}, {:5.2})", centers[c * f], centers[c * f + 1]);
    }
    // Every learned centroid should be near one of the true blob centers.
    for c in 0..k {
        let (x, y) = (centers[c * f], centers[c * f + 1]);
        let close = blob_centers
            .iter()
            .any(|&(bx, by)| ((x - bx).powi(2) + (y - by).powi(2)).sqrt() < 0.5);
        assert!(close, "centroid ({x},{y}) far from every blob");
    }
    println!("\nclustering recovered all blob centers ✓");
}
