//! Datacenter planning example (the paper's §7.4.2): given a
//! Lonestar6-shaped machine — 560 CPU nodes, 16 GPU nodes with 3× A100 —
//! how much batch throughput does GPU-to-CPU migration unlock?
//!
//! Uses modeled (timing-only) execution at reduced sizes so the example
//! runs in seconds; the full paper-scale sweep lives in
//! `cargo bench -p cucc-bench --bench fig12_throughput`.
//!
//! ```bash
//! cargo run --release --example datacenter_throughput
//! ```

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, RuntimeConfig};
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::slurm::Datacenter;
use cucc::workloads::{perf_suite, setup_args, Scale};

fn main() {
    let dc = Datacenter::lonestar6();
    println!(
        "datacenter: {} CPU nodes, {} GPU nodes × {} A100 = {} GPUs\n",
        dc.cpu_nodes,
        dc.gpu_nodes,
        dc.gpus_per_node,
        dc.total_gpus()
    );
    println!(
        "{:16} {:>12} {:>12} {:>14} {:>14} {:>9}",
        "benchmark", "gpu t (ms)", "cpu t (ms)", "gpu-only /s", "gpu+cpu /s", "ratio"
    );

    let mut ratios = Vec::new();
    for bench in perf_suite(Scale::Test) {
        let ck = compile_source(&bench.source()).unwrap();

        // GPU kernel time (A100, roofline).
        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let (gargs, _) = setup_args(bench.as_ref(), &ck.kernel, &mut gpu);
        let gpu_t = gpu.time_only(&ck.kernel, bench.launch(), &gargs).unwrap();

        // Best CPU cluster size (Thread-Focused class, like Lonestar6).
        let mut best: Option<(u32, f64)> = None;
        for nodes in [1u32, 2, 4, 8] {
            let mut cl = CuccCluster::with_options(
                ClusterSpec::thread_focused().with_nodes(nodes),
                RuntimeConfig::modeled(),
            );
            let (cargs, _) = setup_args(bench.as_ref(), &ck.kernel, &mut cl);
            let t = cl.launch(&ck, bench.launch(), &cargs).unwrap().time();
            if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                best = Some((nodes, t));
            }
        }
        let (best_nodes, cpu_t) = best.unwrap();

        let gpu_only = dc.gpu_throughput(gpu_t);
        let combined = dc.combined_throughput(gpu_t, best_nodes, cpu_t);
        let ratio = combined / gpu_only;
        ratios.push(ratio);
        println!(
            "{:16} {:>12.3} {:>12.3} {:>14.1} {:>14.1} {:>8.2}x",
            bench.name(),
            gpu_t * 1e3,
            cpu_t * 1e3,
            gpu_only,
            combined,
            ratio
        );
    }
    let geo = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!(
        "\ngeomean improvement from adding the idle CPU fleet: {:.2}x",
        geo.exp()
    );
    println!("(paper, at full scale: 3.59x average; CPUs alone contribute 2.59x)");
}
