//! Quickstart: migrate the paper's Listing 1 (`vec_copy`) to a 2-node CPU
//! cluster and walk through exactly the Figure 5 workflow.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use cucc::analysis::Verdict;
use cucc::cluster::ClusterSpec;
use cucc::core::codegen::{generate_host_module, generate_kernel_module};
use cucc::core::{compile_source, CuccCluster, ExecMode, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;

const LISTING1: &str = r#"
__global__ void vec_copy(char* src, char* dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}
"#;

fn main() {
    println!("=== CuCC quickstart: Listing 1 on a 2-node CPU cluster ===\n");

    // 1. Compile: parse → validate → Allgather-distributable analysis.
    let ck = compile_source(LISTING1).expect("compilation failed");
    println!("kernel `{}` compiled", ck.name());
    match &ck.analysis.verdict {
        Verdict::Distributable(meta) => {
            println!("  verdict      : Allgather distributable");
            println!("  tail_divergent: {}", meta.tail_divergent());
            for b in &meta.buffers {
                println!(
                    "  mem_ptr      : buffer parameter {} ({} B/elem)",
                    b.param, b.elem_size
                );
            }
        }
        Verdict::Trivial(reasons) => {
            println!("  verdict      : trivial (replicated): {reasons:?}");
        }
    }
    println!(
        "  SIMD class   : {:?} (efficiency {:.2})\n",
        ck.analysis.simd.class, ck.analysis.simd.efficiency
    );

    // 2. The generated CPU modules (the paper's Figure 6 artifacts).
    println!(
        "--- generated CPU host module ---\n{}",
        generate_host_module(&ck)
    );
    println!("--- generated CPU kernel module (header) ---");
    for line in generate_kernel_module(&ck).lines().take(8) {
        println!("{line}");
    }
    println!("...\n");

    // 3. Execute on a simulated 2-node cluster (Figure 5: N = 1200, five
    //    256-thread blocks).
    let n = 1200usize;
    let mut cluster = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(2),
        RuntimeConfig::default(),
    );
    let src = cluster.alloc(n);
    let dest = cluster.alloc(n);
    let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
    cluster.upload(src, &data).unwrap();

    let report = cluster
        .launch(
            &ck,
            LaunchConfig::cover1(n as u64, 256),
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(n as i64)],
        )
        .expect("launch failed");

    match &report.mode {
        ExecMode::ThreePhase {
            partial_blocks_per_node,
            callback_blocks,
            nodes,
            ..
        } => {
            println!("three-phase execution on {nodes} nodes:");
            println!("  phase 1: {partial_blocks_per_node} blocks per node (node 0: blocks 0-1, node 1: blocks 2-3)");
            println!(
                "  phase 2: balanced in-place Allgather ({} B on the wire)",
                report.wire_bytes
            );
            println!("  phase 3: {callback_blocks} callback block(s) — block 4, the tail block");
        }
        ExecMode::Replicated { cause } => println!("replicated: {cause}"),
    }
    println!(
        "  simulated time: {:.2} µs (partial {:.2} + allgather {:.2} + callback {:.2})",
        report.times.total() * 1e6,
        report.times.partial * 1e6,
        report.times.allgather * 1e6,
        report.times.callback * 1e6
    );

    // 4. Verify.
    assert_eq!(
        cluster.download::<u8>(dest).unwrap(),
        data,
        "copy must be exact"
    );
    assert!(cluster.sim().fully_consistent());
    println!("\nresult verified: dest == src on every node ✓");

    // 5. The same numbers, read off the unified trace timeline (export the
    //    full span record with `cucc run --trace out.json` → Perfetto).
    println!("\n{}", cluster.timeline().summary());
}
