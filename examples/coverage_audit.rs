//! Coverage audit (the paper's §7.1 study): classify all 34 coverage
//! kernels — 21 Triton-generated BERT/ViT kernels and 13 Hetero-Mark-style
//! CUDA kernels — with the Allgather-distributable analysis, printing the
//! per-kernel verdicts behind Figure 7.
//!
//! ```bash
//! cargo run --example coverage_audit
//! ```

use cucc::workloads::{classify_coverage, heteromark_kernels, triton_kernels, Expected};

fn label(e: Expected) -> &'static str {
    match e {
        Expected::Distributable => "distributable",
        Expected::Overlap => "overlap",
        Expected::Indirect => "indirect",
    }
}

fn main() {
    println!("=== Allgather-distributable coverage audit (Figure 7) ===\n");
    let mut per_suite: Vec<(&str, usize, usize)> = Vec::new();
    for (suite, kernels) in [
        ("Triton (BERT + ViT)", triton_kernels()),
        ("Hetero-Mark", heteromark_kernels()),
    ] {
        println!("{suite}:");
        let mut distributable = 0;
        for k in &kernels {
            let got = classify_coverage(k).expect("classification failed");
            let mark = if got == k.expected { ' ' } else { '!' };
            println!("  {mark} {:24} [{:11}] → {}", k.name, k.suite, label(got));
            assert_eq!(got, k.expected, "{} misclassified", k.name);
            if got == Expected::Distributable {
                distributable += 1;
            }
        }
        per_suite.push((suite, distributable, kernels.len()));
        println!();
    }
    println!("summary (Figure 7):");
    for (suite, d, total) in per_suite {
        println!("  {suite:22}: {d}/{total} Allgather distributable");
    }
    println!("\npaper: ViT+BERT 21/21, Hetero-Mark 8/13 ✓");
}
