//! Workload redistribution (§8.3): rescue a few-block kernel on a big
//! cluster with the `split_blocks` compiler transformation.
//!
//! A Monte-Carlo-style kernel with only 64 fat blocks cannot feed a 32-node
//! cluster (64 blocks / 32 nodes = 2 blocks per 24-core node). Splitting
//! each block ×8 gives 512 schedulable units with identical semantics.
//!
//! ```bash
//! cargo run --release --example block_resize
//! ```

use cucc::cluster::ClusterSpec;
use cucc::core::{compile, split_blocks, CuccCluster, RuntimeConfig};
use cucc::exec::Arg;
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::ir::{parse_kernel, LaunchConfig};

const KERNEL: &str = r#"
__global__ void mc_pi(float* hits, int iters, int seed) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    int s = seed + id * 7919;
    float inside = 0.0f;
    for (int i = 0; i < iters; i++) {
        s = (s * 1103515245 + 12345) & 2147483647;
        float x = (float)(s) / 2147483648.0f;
        s = (s * 1103515245 + 12345) & 2147483647;
        float y = (float)(s) / 2147483648.0f;
        if (x * x + y * y < 1.0f)
            inside += 1.0f;
    }
    hits[id] = inside;
}
"#;

fn main() {
    let blocks = 64u32;
    let threads = 256u32;
    let iters = 4000i64;
    let total = (blocks * threads) as usize;
    let base_launch = LaunchConfig::new(blocks, threads);
    let kernel = parse_kernel(KERNEL).expect("parse");

    // GPU reference result (estimate of π) — the transform must not change it.
    let ck0 = compile(kernel.clone()).unwrap();
    let mut gpu = GpuDevice::new(GpuSpec::a100());
    let gh = gpu.alloc(total * 4);
    gpu.launch(
        &ck0.kernel,
        base_launch,
        &[Arg::Buffer(gh), Arg::int(iters), Arg::int(1)],
    )
    .unwrap();
    let reference = gpu.d2h(gh);
    let hits: f64 = gpu.pool().read_f32(gh).iter().map(|&h| h as f64).sum();
    let pi = 4.0 * hits / (total as f64 * iters as f64);
    println!("Monte-Carlo π estimate: {pi:.5} (64 blocks × 256 threads × {iters} samples)\n");

    println!("32-node SIMD-Focused cluster, split factors:");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>9}",
        "factor", "blocks", "thr/blk", "time", "speedup"
    );
    let mut base_time = 0.0;
    for factor in [1u32, 2, 4, 8] {
        let (k, launch) = split_blocks(&kernel, base_launch, factor).expect("split");
        let ck = compile(k).expect("compile");
        assert!(ck.is_distributable());
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(32),
            RuntimeConfig::default(),
        );
        let h = cl.alloc(total * 4);
        let report = cl
            .launch(&ck, launch, &[Arg::Buffer(h), Arg::int(iters), Arg::int(1)])
            .expect("launch");
        assert_eq!(
            cl.download::<u8>(h).unwrap(),
            reference,
            "split execution must be bit-identical"
        );
        let t = report.time();
        if factor == 1 {
            base_time = t;
        }
        println!(
            "{:>8} {:>8} {:>10} {:>9.3} ms {:>8.2}x",
            factor,
            launch.num_blocks(),
            launch.threads_per_block(),
            t * 1e3,
            base_time / t
        );
    }
    println!("\nall variants verified bit-identical to the GPU reference ✓");
    println!("(§8.3: \"adjustable block sizes … redistribute workloads to align");
    println!(" with hardware capabilities\")");
}
