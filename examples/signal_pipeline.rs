//! Domain example: a DSP pipeline — FIR band-pass filtering of a long
//! signal, migrated from GPU to CPU clusters of increasing size.
//!
//! Demonstrates the strong-scaling behaviour of §7.2: FIR is
//! compute-intensive with scalar outputs, so communication stays negligible
//! and the kernel scales nearly linearly.
//!
//! ```bash
//! cargo run --release --example signal_pipeline
//! ```

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, RuntimeConfig};
use cucc::exec::Arg;
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::ir::LaunchConfig;

const FIR: &str = r#"
__global__ void fir(float* in, float* coef, float* out, int n, int taps) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    float acc = 0.0f;
    for (int t = 0; t < taps; t++)
        acc += in[id + t] * coef[t];
    if (id < n)
        out[id] = acc;
}
"#;

fn main() {
    let n: usize = 1 << 16;
    let taps: usize = 128;
    let ck = compile_source(FIR).expect("compile");
    let launch = LaunchConfig::cover1(n as u64, 256);

    // A synthetic noisy two-tone signal and a low-pass boxcar filter.
    let signal: Vec<f32> = (0..n + taps + 256)
        .map(|i| {
            let t = i as f32 * 0.01;
            (t * 2.0).sin() + 0.5 * (t * 40.0).sin()
        })
        .collect();
    let coef: Vec<f32> = vec![1.0 / taps as f32; taps];

    // GPU reference for both correctness and the Figure-11-style contrast.
    let mut gpu = GpuDevice::new(GpuSpec::a100());
    let gin = gpu.alloc(signal.len() * 4);
    let gco = gpu.alloc(coef.len() * 4);
    let gout = gpu.alloc(n * 4);
    gpu.pool_mut().write_f32(gin, &signal);
    gpu.pool_mut().write_f32(gco, &coef);
    let gres = gpu
        .launch(
            &ck.kernel,
            launch,
            &[
                Arg::Buffer(gin),
                Arg::Buffer(gco),
                Arg::Buffer(gout),
                Arg::int(n as i64),
                Arg::int(taps as i64),
            ],
        )
        .expect("gpu launch");
    let reference = gpu.d2h(gout);
    println!("GPU (A100, roofline): {:8.3} ms", gres.time * 1e3);

    println!("\nCPU cluster (SIMD-Focused), strong scaling:");
    println!(
        "{:>6} {:>12} {:>10} {:>10}",
        "nodes", "time (ms)", "speedup", "comm %"
    );
    let mut t1 = 0.0;
    for nodes in [1u32, 2, 4, 8, 16, 32] {
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(nodes),
            RuntimeConfig::default(),
        );
        let cin = cl.alloc(signal.len() * 4);
        let cco = cl.alloc(coef.len() * 4);
        let cout = cl.alloc(n * 4);
        cl.upload(cin, &signal).unwrap();
        cl.upload(cco, &coef).unwrap();
        let report = cl
            .launch(
                &ck,
                launch,
                &[
                    Arg::Buffer(cin),
                    Arg::Buffer(cco),
                    Arg::Buffer(cout),
                    Arg::int(n as i64),
                    Arg::int(taps as i64),
                ],
            )
            .expect("cluster launch");
        assert_eq!(
            cl.download::<u8>(cout).unwrap(),
            reference,
            "distributed FIR must match the GPU"
        );
        let t = report.time();
        if nodes == 1 {
            t1 = t;
        }
        println!(
            "{:>6} {:>12.3} {:>9.2}x {:>9.1}%",
            nodes,
            t * 1e3,
            t1 / t,
            report.times.comm_fraction() * 100.0
        );
    }
    println!("\nall cluster sizes verified against the GPU reference ✓");

    // Streaming variant: the signal arrives in chunks (e.g. from an ADC),
    // so each chunk's upload can prefetch on a second stream while the
    // previous chunk is still filtering. Same kernel, same results — only
    // the command-queue layout changes.
    let chunks = 8usize;
    let chunk_n = n / chunks;
    let chunk_launch = LaunchConfig::cover1(chunk_n as u64, 256);
    let pipeline = |nstreams: usize| -> (f64, Vec<Vec<u8>>) {
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(8),
            RuntimeConfig::default(),
        );
        let streams: Vec<_> = (0..nstreams).map(|_| cl.stream_create()).collect();
        let cco = cl.alloc(coef.len() * 4);
        cl.upload(cco, &coef).unwrap();
        let mut outs = Vec::new();
        for c in 0..chunks {
            // Overlapping windows so every chunk has its `taps` lookahead.
            let window = &signal[c * chunk_n..c * chunk_n + chunk_n + taps];
            let cin = cl.alloc(window.len() * 4);
            let cout = cl.alloc(chunk_n * 4);
            let bytes: Vec<u8> = window.iter().flat_map(|v| v.to_le_bytes()).collect();
            let args = [
                Arg::Buffer(cin),
                Arg::Buffer(cco),
                Arg::Buffer(cout),
                Arg::int(chunk_n as i64),
                Arg::int(taps as i64),
            ];
            match streams.get(c % nstreams.max(1)) {
                Some(&s) => {
                    cl.upload_on(cin, &bytes, s).unwrap();
                    cl.launch_on(&ck, chunk_launch, &args, s).expect("launch");
                    outs.push(cl.download_on::<u8>(cout, s).unwrap());
                }
                None => {
                    cl.upload(cin, &bytes).unwrap();
                    cl.launch(&ck, chunk_launch, &args).expect("launch");
                    outs.push(cl.download::<u8>(cout).unwrap());
                }
            }
        }
        (cl.synchronize().expect("synchronize"), outs)
    };
    let (serial, serial_outs) = pipeline(0);
    let (overlapped, stream_outs) = pipeline(2);
    assert_eq!(serial_outs, stream_outs, "streams must not change results");
    println!("\nchunked streaming ({chunks} chunks, 8 nodes):");
    println!(
        "  serial {:.3} ms → two streams {:.3} ms ({:.2}x from h2d/compute overlap)",
        serial * 1e3,
        overlapped * 1e3,
        serial / overlapped
    );
}
