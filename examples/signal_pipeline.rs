//! Domain example: a DSP pipeline — FIR band-pass filtering of a long
//! signal, migrated from GPU to CPU clusters of increasing size.
//!
//! Demonstrates the strong-scaling behaviour of §7.2: FIR is
//! compute-intensive with scalar outputs, so communication stays negligible
//! and the kernel scales nearly linearly.
//!
//! ```bash
//! cargo run --release --example signal_pipeline
//! ```

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, RuntimeConfig};
use cucc::exec::Arg;
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::ir::LaunchConfig;

const FIR: &str = r#"
__global__ void fir(float* in, float* coef, float* out, int n, int taps) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    float acc = 0.0f;
    for (int t = 0; t < taps; t++)
        acc += in[id + t] * coef[t];
    if (id < n)
        out[id] = acc;
}
"#;

fn main() {
    let n: usize = 1 << 16;
    let taps: usize = 128;
    let ck = compile_source(FIR).expect("compile");
    let launch = LaunchConfig::cover1(n as u64, 256);

    // A synthetic noisy two-tone signal and a low-pass boxcar filter.
    let signal: Vec<f32> = (0..n + taps + 256)
        .map(|i| {
            let t = i as f32 * 0.01;
            (t * 2.0).sin() + 0.5 * (t * 40.0).sin()
        })
        .collect();
    let coef: Vec<f32> = vec![1.0 / taps as f32; taps];

    // GPU reference for both correctness and the Figure-11-style contrast.
    let mut gpu = GpuDevice::new(GpuSpec::a100());
    let gin = gpu.alloc(signal.len() * 4);
    let gco = gpu.alloc(coef.len() * 4);
    let gout = gpu.alloc(n * 4);
    gpu.pool_mut().write_f32(gin, &signal);
    gpu.pool_mut().write_f32(gco, &coef);
    let gres = gpu
        .launch(
            &ck.kernel,
            launch,
            &[
                Arg::Buffer(gin),
                Arg::Buffer(gco),
                Arg::Buffer(gout),
                Arg::int(n as i64),
                Arg::int(taps as i64),
            ],
        )
        .expect("gpu launch");
    let reference = gpu.d2h(gout);
    println!("GPU (A100, roofline): {:8.3} ms", gres.time * 1e3);

    println!("\nCPU cluster (SIMD-Focused), strong scaling:");
    println!(
        "{:>6} {:>12} {:>10} {:>10}",
        "nodes", "time (ms)", "speedup", "comm %"
    );
    let mut t1 = 0.0;
    for nodes in [1u32, 2, 4, 8, 16, 32] {
        let mut cl = CuccCluster::new(
            ClusterSpec::simd_focused().with_nodes(nodes),
            RuntimeConfig::default(),
        );
        let cin = cl.alloc(signal.len() * 4);
        let cco = cl.alloc(coef.len() * 4);
        let cout = cl.alloc(n * 4);
        cl.h2d_f32(cin, &signal);
        cl.h2d_f32(cco, &coef);
        let report = cl
            .launch(
                &ck,
                launch,
                &[
                    Arg::Buffer(cin),
                    Arg::Buffer(cco),
                    Arg::Buffer(cout),
                    Arg::int(n as i64),
                    Arg::int(taps as i64),
                ],
            )
            .expect("cluster launch");
        assert_eq!(
            cl.d2h(cout),
            reference,
            "distributed FIR must match the GPU"
        );
        let t = report.time();
        if nodes == 1 {
            t1 = t;
        }
        println!(
            "{:>6} {:>12.3} {:>9.2}x {:>9.1}%",
            nodes,
            t * 1e3,
            t1 / t,
            report.times.comm_fraction() * 100.0
        );
    }
    println!("\nall cluster sizes verified against the GPU reference ✓");
}
